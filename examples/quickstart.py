#!/usr/bin/env python
"""Quickstart: solve one Class Constrained Scheduling instance every way.

Builds a small instance, runs the three constant-factor algorithms
(Theorems 4-6), one PTAS, the exact solver, and prints a comparison —
about a minute of reading to see the whole public API, ending with the
typed :class:`repro.api.Session` facade every other surface (CLI,
benchmarks, HTTP service) dispatches through.

Run:  python examples/quickstart.py
"""

from repro import (Instance, solve_nonpreemptive, solve_preemptive,
                   solve_splittable, validate)
from repro.analysis.figures import render_rows
from repro.api import Session, SolverQuery
from repro.exact import opt_nonpreemptive, opt_preemptive, opt_splittable
from repro.ptas.nonpreemptive import ptas_nonpreemptive


def main() -> None:
    # 10 jobs across 4 classes; 3 machines, each able to host 2 classes.
    inst = Instance.create(
        processing_times=[9, 7, 6, 6, 5, 5, 4, 3, 2, 2],
        classes=["red", "red", "blue", "blue", "green", "green",
                 "yellow", "yellow", "green", "blue"],
        machines=3,
        class_slots=2,
    )
    print(inst)
    print()

    print("== constant-factor approximations (Section 3) ==")
    rs = solve_splittable(inst)
    print(f"splittable  2-approx: makespan {float(rs.makespan):6.2f}  "
          f"(guess T = {float(rs.guess):.2f}, certified <= 2T)")
    rp = solve_preemptive(inst)
    print(f"preemptive  2-approx: makespan {float(rp.makespan):6.2f}  "
          f"(guess T = {float(rp.guess):.2f})")
    rn = solve_nonpreemptive(inst)
    print(f"non-preempt 7/3-approx: makespan {rn.makespan:6d}  "
          f"(guess T = {rn.guess})")
    print()

    print("== PTAS (Section 4) ==")
    pt = ptas_nonpreemptive(inst, delta=2)  # delta = 1/2
    print(f"non-preemptive PTAS(delta=1/2): makespan {int(pt.makespan)}  "
          f"after {pt.guesses_tried} guesses")
    print()

    print("== exact optima (ground truth for small instances) ==")
    print(f"splittable OPT     = {opt_splittable(inst):.3f}")
    print(f"preemptive OPT     = {opt_preemptive(inst):.3f}")
    print(f"non-preemptive OPT = {opt_nonpreemptive(inst)}")
    print()

    # every schedule is independently validated
    for name, res in (("splittable", rs), ("preemptive", rp),
                      ("non-preemptive", rn)):
        mk = validate(inst, res.schedule)
        print(f"validated {name}: makespan {float(mk):.2f}")
    print()

    print("splittable schedule (load bars):")
    print(render_rows(rs.schedule, inst))
    print()

    # the typed facade: same solves, one front door. Capability
    # selection asks for a guarantee instead of naming an algorithm;
    # swap Session() for Session("http://host:8080") and nothing else
    # changes.
    print("== the repro.api facade ==")
    session = Session()
    best = session.solve(inst, query=SolverQuery(
        variant="nonpreemptive", max_ratio="7/3", allow_milp=False,
        time_budget=1.0))
    print(f"query(nonpreemptive, ratio<=7/3, no MILP, <=1s) -> "
          f"{best.algorithm}: makespan {best.makespan}")
    for rep in session.solve_batch([("quickstart", inst)],
                                   algorithms=["splittable", "lpt", "ffd"]):
        print(f"  {rep.algorithm:<12} {rep.status:<4} "
              f"makespan {float(rep.makespan):6.2f}")


if __name__ == "__main__":
    main()
