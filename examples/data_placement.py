#!/usr/bin/env python
"""Data placement: the paper's motivating scenario (Section 1).

Operations need a database resident on the machine that runs them; each
machine's disk holds at most ``c`` databases. Classes = databases, class
slots = disk capacity. We generate a skewed catalogue (hot databases get
most operations), schedule with the 7/3-approximation, and show how the
achievable makespan degrades as disks shrink — the trade-off an operator
actually tunes.

Run:  python examples/data_placement.py
"""

import numpy as np

from repro import solve_nonpreemptive, validate
from repro.analysis.reporting import format_table
from repro.baselines import ffd_binary_search_schedule
from repro.core.bounds import nonpreemptive_lower_bound
from repro.workloads import data_placement_instance


def main() -> None:
    rng = np.random.default_rng(2026)
    base = data_placement_instance(rng, n_ops=300, n_databases=24, m=10,
                                   disk_slots=4)
    print(f"workload: {base.num_jobs} operations over "
          f"{base.num_classes} databases, {base.machines} machines")
    print()

    rows = []
    # slots below ceil(C/m) = 3 are infeasible outright (24
    # databases cannot fit in fewer than 24 slots overall)
    for slots in (6, 5, 4, 3):
        inst = type(base)(base.processing_times, base.classes,
                          base.machines, slots)
        res = solve_nonpreemptive(inst)
        mk = validate(inst, res.schedule)
        lb = nonpreemptive_lower_bound(inst)
        try:
            ffd = ffd_binary_search_schedule(inst).makespan(inst)
        except Exception:
            ffd = None
        rows.append([slots, mk, lb, f"{mk / lb:.3f}",
                     ffd if ffd is not None else "FAIL"])
    print(format_table(
        ["disk slots", "7/3-approx makespan", "lower bound",
         "ratio vs LB", "FFD baseline"], rows,
        title="makespan vs disk capacity (fewer slots -> tighter coupling)"))
    print()

    # per-machine placement report for the scarcest configuration
    inst = type(base)(base.processing_times, base.classes, base.machines, 3)
    res = solve_nonpreemptive(inst)
    print("placement with 3 disk slots per machine:")
    for i in range(inst.machines):
        dbs = sorted(res.schedule.classes_on(i, inst))
        load = res.schedule.load(i, inst)
        print(f"  machine {i}: databases {dbs}, load {load}")


if __name__ == "__main__":
    main()
