#!/usr/bin/env python
"""Data placement: the paper's motivating scenario (Section 1).

Operations need a database resident on the machine that runs them; each
machine's disk holds at most ``c`` databases. Classes = databases, class
slots = disk capacity. We generate a skewed catalogue (hot databases get
most operations), sweep disk capacities through one
:class:`repro.api.Session` batch (the 7/3-approximation against the FFD
baseline), and show how the achievable makespan degrades as disks
shrink — the trade-off an operator actually tunes.

Run:  python examples/data_placement.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.api import Session
from repro.core.bounds import nonpreemptive_lower_bound
from repro.io import schedule_from_dict
from repro.workloads import data_placement_instance


def main() -> None:
    rng = np.random.default_rng(2026)
    base = data_placement_instance(rng, n_ops=300, n_databases=24, m=10,
                                   disk_slots=4)
    print(f"workload: {base.num_jobs} operations over "
          f"{base.num_classes} databases, {base.machines} machines")
    print()

    session = Session()
    # slots below ceil(C/m) = 3 are infeasible outright (24
    # databases cannot fit in fewer than 24 slots overall)
    sweep = [(f"slots={s}",
              type(base)(base.processing_times, base.classes,
                         base.machines, s))
             for s in (6, 5, 4, 3)]
    reports = session.solve_batch(sweep, algorithms=["nonpreemptive",
                                                     "ffd"])

    rows = []
    for (label, inst), (approx, ffd) in zip(sweep,
                                            zip(reports[::2],
                                                reports[1::2])):
        lb = nonpreemptive_lower_bound(inst)
        mk = approx.makespan
        rows.append([label.split("=")[1], mk, lb, f"{mk / lb:.3f}",
                     ffd.makespan if ffd.ok else "FAIL"])
    print(format_table(
        ["disk slots", "7/3-approx makespan", "lower bound",
         "ratio vs LB", "FFD baseline"], rows,
        title="makespan vs disk capacity (fewer slots -> tighter coupling)"))
    print()

    # per-machine placement report for the scarcest configuration;
    # want_schedule=True carries the schedule back through the report
    inst = type(base)(base.processing_times, base.classes, base.machines, 3)
    report = session.solve(inst, algorithm="nonpreemptive",
                           want_schedule=True)
    sched = schedule_from_dict(report.extra["schedule"])
    print("placement with 3 disk slots per machine:")
    for i in range(inst.machines):
        dbs = sorted(sched.classes_on(i, inst))
        load = sched.load(i, inst)
        print(f"  machine {i}: databases {dbs}, load {load}")


if __name__ == "__main__":
    main()
