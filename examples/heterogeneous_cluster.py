#!/usr/bin/env python
"""Heterogeneous cluster: machines with different cache/disk capacities.

The paper's closing open problem (Section 5): per-machine class-slot
counts ``c_i``. Real clusters are exactly like this — a few big-memory
nodes next to many small ones. This example schedules a data-placement
workload on such a cluster with the generalised 7/3 framework from
``repro.extensions`` and compares against the exact optimum.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.extensions import (HeterogeneousInstance,
                              opt_nonpreemptive_hetero,
                              solve_nonpreemptive_hetero,
                              validate_hetero_nonpreemptive)
from repro.workloads import uniform_instance


def main() -> None:
    # 2 big nodes (4 slots), 2 medium (2), 2 small (1)
    slot_vector = (4, 4, 2, 2, 1, 1)
    rng = np.random.default_rng(11)
    base = uniform_instance(rng, n=24, C=8, m=len(slot_vector),
                            c=max(slot_vector), p_hi=30)
    hinst = HeterogeneousInstance.create(base.processing_times,
                                         base.classes, slot_vector)
    print(f"{hinst.base.num_jobs} jobs over {hinst.base.num_classes} "
          f"classes; cluster slots {slot_vector} "
          f"(total {hinst.total_slots})")
    print()

    sched, T = solve_nonpreemptive_hetero(hinst)
    mk = validate_hetero_nonpreemptive(hinst, sched)
    opt = opt_nonpreemptive_hetero(hinst)
    print(format_table(
        ["", "value"],
        [["guess T (certified LB of the framework)", T],
         ["makespan (generalised 7/3 framework)", mk],
         ["exact optimum (MILP)", opt],
         ["empirical ratio", f"{mk / opt:.3f}"]]))
    print()

    print("placement (class count never exceeds the machine's slots):")
    for i, slots in enumerate(slot_vector):
        classes = sorted(sched.classes_on(i, hinst.base))
        load = sched.load(i, hinst.base)
        print(f"  node {i} ({slots} slots): classes {classes}, load {load}")


if __name__ == "__main__":
    main()
