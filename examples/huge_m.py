#!/usr/bin/env python
"""Exponentially many machines: the compact splittable schedule.

The paper's Theorem 4 (huge-m case) promises output and runtime polynomial
in n even when m is exponential. This example schedules 16 jobs on 2^60
machines, prints the compact layout summary, and materialises a few
machines on demand.

Run:  python examples/huge_m.py
"""

import time

from repro import Instance, validate
from repro.approx.compact import CompactSplittableSchedule
from repro.approx.splittable import solve_splittable


def main() -> None:
    inst = Instance(
        processing_times=tuple([10**9] * 16),
        classes=tuple([i % 4 for i in range(16)]),
        machines=2**60,
        class_slots=2,
    )
    print(f"n={inst.num_jobs} jobs, C={inst.num_classes} classes, "
          f"m=2^60 machines")

    t0 = time.perf_counter()
    res = solve_splittable(inst)
    dt = time.perf_counter() - t0
    print(f"solved in {dt * 1e3:.1f}ms; guess T = {float(res.guess):.3g}, "
          f"makespan = {float(res.makespan):.3g} (<= 2T)")
    mk = validate(inst, res.schedule)
    print(f"validated: {float(mk):.3g}")
    print()

    sched = res.schedule
    if isinstance(sched, CompactSplittableSchedule):
        print("compact layout:")
        print(f"  full pieces of size T: {sched.full_pieces:,}")
        print(f"  remainder sub-classes: {sched.small_pieces}")
        print(f"  machines used:         "
              f"{min(sched.total_items, sched.num_machines):,} of 2^60")
        print()
        print("materialising three machines on demand:")
        probes = [0, sched.full_pieces,
                  min(sched.num_machines, sched.total_items) - 1]
        for i in probes:
            if not 0 <= i < sched.num_machines:
                continue
            pieces = sched.pieces_on(i)
            desc = ", ".join(f"job{p.job}:{float(p.amount):.3g}"
                             for p in pieces[:4])
            more = "..." if len(pieces) > 4 else ""
            print(f"  machine {i:>12,}: load {float(sched.load(i)):.3g} "
                  f"[{desc}{more}]")
    else:
        print("explicit schedule (m was small enough after splitting):")
        print(f"  pieces: {sched.num_pieces()}")


if __name__ == "__main__":
    main()
