#!/usr/bin/env python
"""Video-on-demand: preemptive streaming against cached movies.

Servers stream only the movies in their cache (class slots); streams may
be migrated (preempted) between servers but a stream cannot run on two
servers at once — exactly the paper's preemptive regime. Compares the
preemptive 2-approximation against the splittable relaxation (an ideal
where streams could be mirrored) and reports cache contents.

Run:  python examples/video_on_demand.py
"""

import numpy as np

from repro import solve_preemptive, solve_splittable, validate
from repro.analysis.reporting import format_table
from repro.workloads import video_on_demand_instance


def main() -> None:
    rng = np.random.default_rng(7)
    inst = video_on_demand_instance(rng, n_requests=240, n_movies=30,
                                    m=12, cache_slots=3)
    print(f"{inst.num_jobs} stream requests over {inst.num_classes} movies; "
          f"{inst.machines} servers, {inst.class_slots} cache slots each")
    print()

    pre = solve_preemptive(inst)
    mk_pre = validate(inst, pre.schedule)
    spl = solve_splittable(inst)
    mk_spl = validate(inst, spl.schedule)

    print(format_table(
        ["regime", "makespan", "guess T", "certified ratio"],
        [["preemptive (migratable streams)", f"{float(mk_pre):.1f}",
          f"{float(pre.guess):.1f}", f"{float(pre.ratio_certificate):.3f}"],
         ["splittable (mirrored streams)", f"{float(mk_spl):.1f}",
          f"{float(spl.guess):.1f}", f"{float(spl.ratio_certificate):.3f}"]]))
    print()
    print("the splittable relaxation lower-bounds the preemptive optimum;")
    print(f"migration overhead in this run: "
          f"{float(mk_pre) / float(mk_spl):.3f}x")
    print()

    print("cache contents (movies per server, preemptive schedule):")
    for i in pre.schedule.used_machines[:6]:
        movies = sorted(pre.schedule.classes_on(i, inst))
        print(f"  server {i}: movies {movies}")
    print("  ...")

    # count migrations: pieces beyond one per job
    pieces = sum(len(pre.schedule.pieces_on(i))
                 for i in pre.schedule.used_machines)
    print(f"\ntotal stream segments: {pieces} "
          f"({pieces - inst.num_jobs} migrations/preemptions)")


if __name__ == "__main__":
    main()
