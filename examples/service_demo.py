#!/usr/bin/env python
"""Scheduling-as-a-service demo: submit a workload suite over HTTP.

Boots a :class:`repro.service.SchedulingService` on an ephemeral port
(exactly what `repro serve` runs), pushes the `small_ratio_suite`
workload through the HTTP API via :class:`repro.service.ServiceClient`,
polls the jobs to completion, and prints the per-instance reports plus
the server's health stats. The suite repeats digests across submissions,
so the second half of the demo shows the persistent result cache doing
its job: repeated instances cost zero solver time.

Run:  python examples/service_demo.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import render_reports
from repro.service import SchedulingService, ServiceClient
from repro.workloads import small_ratio_suite

ALGORITHMS = ["splittable", "nonpreemptive", "lpt"]


def main() -> None:
    db = Path(tempfile.mkdtemp(prefix="repro-service-")) / "jobs.db"
    service = SchedulingService(db, port=0, drainers=2).start()
    client = ServiceClient(service.url)
    print(f"service up at {service.url}  (db: {db})\n")

    workload = list(small_ratio_suite(seeds=3))
    print(f"submitting {len(workload)} instances x {ALGORITHMS} ...")
    jobs = [client.submit(inst, ALGORITHMS, label=label)
            for label, inst in workload]

    reports = []
    for job in jobs:
        reports.extend(client.wait(job["id"], timeout=120))
    print(render_reports(reports, title="suite via the HTTP API"))

    print("\nresubmitting the same suite — served from the result cache:")
    again = [client.submit(inst, ALGORITHMS, label=f"{label}-again")
             for label, inst in workload]
    cached = []
    for job in again:
        cached.extend(client.wait(job["id"], timeout=120))
    hits = sum(r.cached for r in cached)
    print(f"  {hits}/{len(cached)} reports came straight from the cache")

    health = client.health()
    print(f"\nhealthz: {health['jobs']['done']} jobs done, "
          f"cache hit rate {health['cache']['hit_rate']:.0%} "
          f"({health['cache']['entries']} entries)")
    service.shutdown()


if __name__ == "__main__":
    main()
