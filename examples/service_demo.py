#!/usr/bin/env python
"""Scheduling-as-a-service demo: one facade, local or remote.

Boots a :class:`repro.service.SchedulingService` on an ephemeral port
(exactly what `repro serve` runs), then drives it through the same
:class:`repro.api.Session` facade the CLI and benchmarks use — only the
backend changes from in-process to the service's ``/v1`` HTTP API. The
suite repeats digests across submissions, so the second half of the
demo shows the persistent result cache doing its job: repeated
instances cost zero solver time. A synchronous ``POST /v1/solve`` round
trip closes the loop: the canonical request bytes come back unchanged.

Run:  python examples/service_demo.py
"""

import tempfile
from pathlib import Path

from repro.analysis.reporting import render_reports
from repro.api import Session, SolveRequest, SolverQuery
from repro.service import SchedulingService, ServiceClient
from repro.workloads import small_ratio_suite

ALGORITHMS = ["splittable", "nonpreemptive", "lpt"]


def main() -> None:
    db = Path(tempfile.mkdtemp(prefix="repro-service-")) / "jobs.db"
    service = SchedulingService(db, port=0, drainers=2).start()
    print(f"service up at {service.url}/v1  (db: {db})\n")

    # the same Session API would run this in-process: Session()
    session = Session(service.url)

    workload = list(small_ratio_suite(seeds=3))
    print(f"submitting {len(workload)} instances x {ALGORITHMS} ...")
    reports = session.solve_batch(workload, algorithms=ALGORITHMS)
    print(render_reports(reports, title="suite via the /v1 HTTP API"))

    print("\nresubmitting the same suite — served from the result cache:")
    again = [(f"{label}-again", inst) for label, inst in workload]
    cached = session.solve_batch(again, algorithms=ALGORITHMS)
    hits = sum(r.cached for r in cached)
    print(f"  {hits}/{len(cached)} reports came straight from the cache")

    # synchronous solve with capability selection: ask for a guarantee,
    # not an implementation, and get the canonical request echoed back
    client = ServiceClient(service.url)
    label, inst = workload[0]
    request = SolveRequest(inst, query=SolverQuery(
        variant="nonpreemptive", max_ratio="7/3", allow_milp=False,
        time_budget=1.0), label=f"{label}-sync")
    payload = client.solve_raw(request)
    echoed = SolveRequest.from_dict(payload["request"])
    print(f"\nPOST /v1/solve picked {payload['report']['algorithm']!r}; "
          f"request round-tripped byte-identically: "
          f"{echoed.canonical_json() == request.canonical_json()}")

    health = client.health()
    print(f"\nhealthz: {health['jobs']['done']} jobs done, "
          f"cache hit rate {health['cache']['hit_rate']:.0%} "
          f"({health['cache']['entries']} entries)")
    service.shutdown()


if __name__ == "__main__":
    main()
