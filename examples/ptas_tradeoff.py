#!/usr/bin/env python
"""The accuracy/runtime trade-off of the PTAS (Section 4).

Sweeps the rounding accuracy ``delta = 1/q`` for the splittable and
non-preemptive PTASes on one instance, printing measured ratio (vs the
exact optimum), the worst-case envelope, and solve time — the concrete
shape of "PTAS: arbitrarily good, increasingly expensive".

Run:  python examples/ptas_tradeoff.py
"""

import time

import numpy as np

from repro import validate
from repro.analysis.reporting import format_table
from repro.exact import opt_nonpreemptive, opt_splittable
from repro.ptas.nonpreemptive import ptas_nonpreemptive
from repro.ptas.splittable import ptas_splittable
from repro.workloads import uniform_instance


def sweep(name, ptas, opt, qs, envelope):
    rows = []
    for q in qs:
        t0 = time.perf_counter()
        res = ptas(delta=q)
        dt = time.perf_counter() - t0
        mk = float(validate(res_inst, res.schedule))
        rows.append([f"1/{q}", f"{mk / opt:.4f}", f"{envelope(q):.2f}",
                     f"{dt * 1e3:.0f}ms", res.guesses_tried])
    print(format_table(
        ["delta", "measured ratio", "worst-case envelope", "time",
         "guesses"], rows, title=name))
    print()


if __name__ == "__main__":
    rng = np.random.default_rng(123)
    res_inst = uniform_instance(rng, n=14, C=4, m=3, c=2, p_hi=25)
    print(res_inst)
    print()

    sweep("splittable PTAS (Theorem 10)",
          lambda delta: ptas_splittable(res_inst, delta=delta),
          opt_splittable(res_inst), qs=(2, 3, 4, 5),
          envelope=lambda q: (1 + 5 / q) * (1 + 1 / q))

    sweep("non-preemptive PTAS (Theorem 14)",
          lambda delta: ptas_nonpreemptive(res_inst, delta=delta),
          opt_nonpreemptive(res_inst), qs=(2, 3),
          envelope=lambda q: (1 + 3 / q) * (1 + 2 / q) + 1 / q)

    print("for comparison, the constant-factor algorithms answer instantly "
          "with guarantees 2 and 7/3;")
    print("the PTAS buys the gap between those bounds and 1+epsilon with "
          "configuration-ILP time.")
