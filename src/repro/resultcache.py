"""The one result-cache module every consumer shares.

Three layers used to live in three places — the engine's in-memory/disk
:class:`ReportCache` (``engine/cache.py``), the service's persistent
``results`` table (bottom of ``service/store.py``), and ad-hoc key
helpers scattered between them. They are unified here:

* **Keys and policy** — :func:`cache_key`, :func:`is_cacheable`,
  :func:`relabel_hit` and :data:`CACHE_KEY_VERSION` define *what* may be
  cached and under which identity, for every cache in the package.
* **:class:`ReportCache`** — the bounded LRU (plus optional spill
  directory) the engine hands to ``run_batch(cache=...)``.
* **:class:`ShardedReportCache`** — the service's persistent cache,
  now split over N shards (one SQLite file or in-memory segment each)
  chosen by consistent hashing over the report key, so cache writes
  stop contending on the job table's lock and on each other.

Every cache speaks the same protocol ``run_batch`` expects — ``get`` /
``put`` / ``__len__`` / ``hits`` / ``misses`` / ``hit_rate`` — and every
hit/miss lands in the same labelled process-wide counters, so
``/v1/healthz`` and ``/v1/metrics`` read one set of numbers no matter
which layer answered.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Any, Iterable, Mapping

from .core.instance import Instance
from .engine.report import SolveReport
from .obs.metrics import REGISTRY
from .obs.trace import current_trace_id

__all__ = ["ReportCache", "ShardedReportCache", "HashRing",
           "MemoryCacheShard", "SqliteCacheShard",
           "cache_key", "is_cacheable", "relabel_hit",
           "CACHEABLE_STATUSES", "CACHE_KEY_VERSION",
           "DEFAULT_MAX_ENTRIES", "DEFAULT_CACHE_SHARDS",
           "CACHE_HITS", "CACHE_MISSES", "CACHE_SHARD_OPS"]

#: Default in-memory bound: large enough for any one experiment sweep,
#: small enough that a service holding ~1-2 KiB reports stays in the MBs.
DEFAULT_MAX_ENTRIES = 4096

#: Default shard fan-out of the service's persistent result cache.
DEFAULT_CACHE_SHARDS = 4


#: Bump whenever the *meaning* of a cached report changes for an
#: unchanged (instance, algorithm, kwargs) triple, so persistent caches
#: (the service's SQLite shards, on-disk ReportCache dirs) never serve
#: stale semantics across an upgrade. v2: the status taxonomy split
#: ``unsupported`` out of ``infeasible`` (mcnaughton / capacity caps).
CACHE_KEY_VERSION = "report-v2"


def cache_key(inst: Instance, algorithm: str,
              kwargs: Mapping[str, Any] | None = None) -> str:
    """Deterministic key for (instance, algorithm, kwargs)."""
    payload = json.dumps(
        {"v": CACHE_KEY_VERSION,
         "instance": inst.digest(), "algorithm": algorithm,
         "kwargs": {k: repr(v) for k, v in sorted((kwargs or {}).items())}},
        sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


#: Cache hit/miss counters, labelled by which cache answered: the
#: engine's in-memory/disk ReportCache or the service's sharded store.
CACHE_HITS = REGISTRY.counter(
    "repro_cache_hits_total", "Report-cache lookups served from cache.",
    labelnames=("cache",))
CACHE_MISSES = REGISTRY.counter(
    "repro_cache_misses_total", "Report-cache lookups that missed.",
    labelnames=("cache",))

#: Per-shard traffic of a ShardedReportCache, by operation (hit / miss /
#: put) — the readout that shows whether consistent hashing is actually
#: spreading load.
CACHE_SHARD_OPS = REGISTRY.counter(
    "repro_cache_shard_ops_total",
    "Sharded report-cache operations, by cache label, shard and op.",
    labelnames=("cache", "shard", "op"))

#: Outcomes worth remembering; timeouts and crashes are retried instead.
CACHEABLE_STATUSES = ("ok", "infeasible", "unsupported")


def is_cacheable(report: SolveReport) -> bool:
    """Whether a report may enter a result cache — one rule for every
    consumer (``run_batch``, the api backends, the service)."""
    return report.status in CACHEABLE_STATUSES


def relabel_hit(report: SolveReport, label: str) -> SolveReport:
    """A cached/duplicate report re-issued for a new batch cell: marked
    cached, relabelled to the requesting cell, zero solver time. When
    the caller runs under a trace context, the re-issued report is
    re-stamped with *that* trace — a cache hit belongs to the request
    that received it, not the one that originally solved it."""
    tid = current_trace_id()
    extra = report.extra
    if tid is not None and extra.get("trace_id") != tid:
        extra = {**extra, "trace_id": tid}
    return replace(report, cached=True, instance_label=label,
                   wall_time_s=0.0, extra=extra)


class ReportCache:
    """Bounded, thread-safe store of :class:`SolveReport`.

    ``max_entries`` caps the in-memory dict only (least-recently-*used*
    entry evicted first); ``None`` disables the bound for short-lived
    batch runs that want every report resident.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 max_entries: int | None = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._mem: OrderedDict[str, SolveReport] = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self._dir: Path | None = None
        if directory is not None:
            self._dir = Path(directory)
            self._dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def _path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.json"

    def get(self, key: str) -> SolveReport | None:
        with self._lock:
            rep = self._mem.get(key)
            if rep is not None:
                self._mem.move_to_end(key)
                self.hits += 1
        if rep is not None:
            CACHE_HITS.inc(cache="engine")
            return rep
        # Disk probe outside the lock: file IO must not serialise every
        # thread, and a racing double-read just loads the same JSON twice.
        if self._dir is not None:
            path = self._path(key)
            if path.exists():
                try:
                    rep = SolveReport.from_dict(json.loads(path.read_text()))
                except (ValueError, TypeError, json.JSONDecodeError):
                    rep = None      # corrupt entry: treat as a miss
        with self._lock:
            if rep is None:
                self.misses += 1
            else:
                self._store(key, rep)
                self.hits += 1
        if rep is None:
            CACHE_MISSES.inc(cache="engine")
        else:
            CACHE_HITS.inc(cache="engine")
        return rep

    def _store(self, key: str, report: SolveReport) -> None:
        # caller holds self._lock
        self._mem[key] = report
        self._mem.move_to_end(key)
        if self.max_entries is not None:
            while len(self._mem) > self.max_entries:
                self._mem.popitem(last=False)

    def put(self, key: str, report: SolveReport) -> None:
        with self._lock:
            self._store(key, report)
        if self._dir is not None:
            path = self._path(key)
            # per-writer tmp name: concurrent threads/processes storing the
            # same key must not interleave writes before the atomic rename
            tmp = path.with_suffix(
                f".{os.getpid()}.{threading.get_ident()}.tmp")
            tmp.write_text(json.dumps(report.to_dict(), indent=2))
            os.replace(tmp, path)


# --------------------------------------------------------------------- #
# sharding
# --------------------------------------------------------------------- #


class HashRing:
    """Consistent hashing over ``shard_count`` shards.

    Each shard owns ``replicas`` points on a 64-bit ring (sha256 of a
    stable ``shard-{i}:{r}`` label); a key lands on the first point at or
    after its own hash. Virtual nodes keep the key distribution even,
    and growing/shrinking the shard count moves only the keys whose arc
    changed owner — persistent shard files keep most of their entries
    across a resize instead of going cold all at once.
    """

    def __init__(self, shard_count: int, replicas: int = 64) -> None:
        if shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1, got {shard_count}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.shard_count = shard_count
        points: list[tuple[int, int]] = []
        for shard in range(shard_count):
            for r in range(replicas):
                points.append((self._hash(f"shard-{shard}:{r}"), shard))
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    @staticmethod
    def _hash(value: str) -> int:
        digest = hashlib.sha256(value.encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def shard_for(self, key: str) -> int:
        """The shard index owning ``key`` (deterministic)."""
        i = bisect.bisect_right(self._hashes, self._hash(key))
        return self._points[i % len(self._points)][1]


class MemoryCacheShard:
    """One in-memory segment of a :class:`ShardedReportCache`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: dict[str, tuple[str, SolveReport, float]] = {}
        self._stamp = 0.0

    def get(self, key: str) -> SolveReport | None:
        with self._lock:
            row = self._rows.get(key)
        return row[1] if row is not None else None

    def put(self, key: str, digest: str, report: SolveReport) -> None:
        with self._lock:
            # wall-clock stamps (monotonically bumped within a tick) keep
            # insertion order comparable ACROSS shards, so the merged
            # digest view lists reports in true arrival order
            self._stamp = max(self._stamp + 1e-6, time.time())
            self._rows[key] = (digest, report, self._stamp)

    def reports_for_digest(self, digest: str) -> list[tuple[float,
                                                            SolveReport]]:
        with self._lock:
            return [(stamp, rep) for d, rep, stamp in self._rows.values()
                    if d == digest]

    def size(self) -> int:
        with self._lock:
            return len(self._rows)

    def close(self) -> None:
        pass


_SHARD_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key             TEXT PRIMARY KEY,
    instance_digest TEXT NOT NULL,
    report          TEXT NOT NULL,
    stored_at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_digest ON results(instance_digest);
"""


class SqliteCacheShard:
    """One SQLite file holding a slice of the sharded result cache.

    The schema is the pre-shard ``results`` table verbatim, so migrating
    a monolithic store is a straight row copy. Each shard serialises its
    own writers behind a private lock — the point of sharding is that
    those locks are *independent*: writers on different shards (and on
    the job table) never contend.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._counter = 0.0
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=5000")
            self._conn.executescript(_SHARD_SCHEMA)
            self._conn.commit()

    def get(self, key: str) -> SolveReport | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT report FROM results WHERE key=?", (key,)).fetchone()
        if row is None:
            return None
        try:
            return SolveReport.from_dict(json.loads(row["report"]))
        except (ValueError, TypeError, json.JSONDecodeError):
            return None     # corrupt entry: treat as a miss

    def put(self, key: str, digest: str, report: SolveReport) -> None:
        with self._lock:
            # a monotonically-bumped stamp keeps insertion order stable
            # even when several puts land within one clock tick
            self._counter = max(self._counter + 1e-6, time.time())
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, instance_digest, report, stored_at) VALUES (?,?,?,?)",
                (key, digest, json.dumps(report.to_dict()), self._counter))
            self._conn.commit()

    def reports_for_digest(self, digest: str) -> list[tuple[float,
                                                            SolveReport]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT stored_at, report FROM results "
                "WHERE instance_digest=?", (digest,)).fetchall()
        out = []
        for row in rows:
            try:
                out.append((row["stored_at"],
                            SolveReport.from_dict(json.loads(row["report"]))))
            except (ValueError, TypeError, json.JSONDecodeError):
                continue
        return out

    def size(self) -> int:
        with self._lock:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()
        return n

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class ShardedReportCache:
    """Digest-indexed persistent report cache split over N shards.

    Speaks both dialects of the cache seam:

    * the counting engine protocol ``run_batch(cache=...)`` expects —
      :meth:`get` / :meth:`put` / ``len()`` / ``hits`` / ``misses`` /
      ``hit_rate`` (mirrored into the process-wide ``repro_cache_*``
      counters under this cache's ``label``);
    * the raw store seam — :meth:`peek` / :meth:`store` /
      :meth:`reports_for_digest` / :meth:`size` — used by
      ``JobStore.cache_get`` / ``cache_put`` and the ``/v1/results``
      endpoint, which must not inflate the hit/miss statistics.

    ``shards`` is a list of :class:`MemoryCacheShard` /
    :class:`SqliteCacheShard` (anything with the same five methods);
    keys are routed by a :class:`HashRing` over ``len(shards)``.
    """

    def __init__(self, shards: Iterable[MemoryCacheShard | SqliteCacheShard],
                 *, label: str = "service") -> None:
        self.shards = list(shards)
        if not self.shards:
            raise ValueError("a sharded cache needs at least one shard")
        self.label = label
        self._ring = HashRing(len(self.shards))
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # -- routing ------------------------------------------------------- #

    def shard_for(self, key: str) -> int:
        return self._ring.shard_for(key)

    def _shard(self, key: str):
        return self.shards[self._ring.shard_for(key)]

    # -- raw store seam (never counts hits/misses) --------------------- #

    def peek(self, key: str) -> SolveReport | None:
        return self._shard(key).get(key)

    def store(self, key: str, digest: str, report: SolveReport) -> None:
        shard = self._ring.shard_for(key)
        self.shards[shard].put(key, digest, report)
        CACHE_SHARD_OPS.inc(cache=self.label, shard=str(shard), op="put")

    def reports_for_digest(self, digest: str) -> list[SolveReport]:
        """Every cached report for one instance content hash, merged
        across shards in insertion order."""
        merged: list[tuple[float, SolveReport]] = []
        for shard in self.shards:
            merged.extend(shard.reports_for_digest(digest))
        merged.sort(key=lambda pair: pair[0])
        return [rep for _, rep in merged]

    def size(self) -> int:
        return sum(shard.size() for shard in self.shards)

    # -- counting engine protocol -------------------------------------- #

    def __len__(self) -> int:
        return self.size()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, key: str) -> SolveReport | None:
        shard = self._ring.shard_for(key)
        rep = self.shards[shard].get(key)
        with self._lock:
            if rep is None:
                self.misses += 1
            else:
                self.hits += 1
        if rep is None:
            CACHE_MISSES.inc(cache=self.label)
            CACHE_SHARD_OPS.inc(cache=self.label, shard=str(shard),
                                op="miss")
        else:
            CACHE_HITS.inc(cache=self.label)
            CACHE_SHARD_OPS.inc(cache=self.label, shard=str(shard), op="hit")
        return rep

    def put(self, key: str, report: SolveReport) -> None:
        self.store(key, report.instance_digest, report)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()
