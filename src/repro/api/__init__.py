"""``repro.api`` — the typed front door to the whole system.

One request model, three interchangeable backends, one report format:

* :class:`SolveRequest` / :class:`BatchRequest` — frozen, typed request
  objects with a canonical JSON wire form.
* :class:`SolverQuery` — capability-based solver selection: ask for a
  guarantee (variant, proven ratio bound, accuracy, dependency/time
  budget) instead of naming an implementation.
* :class:`Session` — ``solve()`` / ``solve_batch()`` / ``stream()``
  over the in-process engine, the process-pool batch engine, or a
  remote ``/v1`` scheduling service.

>>> from repro.api import Session, SolverQuery
>>> from repro import Instance
>>> inst = Instance.create([5, 3, 8, 6], classes=["a", "a", "b", "c"],
...                        machines=2, class_slots=2)
>>> rep = Session().solve(inst, query=SolverQuery(
...     variant="nonpreemptive", allow_milp=False))
>>> rep.algorithm, rep.status
('nonpreemptive', 'ok')
"""

from ..registry import NoMatchingSolverError, UnknownSolverError
from .backends import InProcessBackend, ProcessPoolBackend, RemoteBackend
from .query import SolverQuery
from .requests import BatchRequest, SolveRequest
from .session import Session

__all__ = [
    "Session",
    "SolveRequest",
    "BatchRequest",
    "SolverQuery",
    "InProcessBackend",
    "ProcessPoolBackend",
    "RemoteBackend",
    "UnknownSolverError",
    "NoMatchingSolverError",
]
