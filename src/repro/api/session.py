"""The ``Session`` facade — one front door for every consumer.

A session binds request objects to one of three interchangeable
backends and exposes the whole system as three verbs::

    from repro.api import Session, SolveRequest, SolverQuery

    s = Session()                       # in-process, inline
    s = Session(workers=4)              # process-pool batch engine
    s = Session("http://host:8080")     # remote /v1 service

    report = s.solve(inst, algorithm="nonpreemptive")
    report = s.solve(SolveRequest(inst, query=SolverQuery(
        variant="splittable", max_ratio=2)))
    reports = s.solve_batch(suite, algorithms=["splittable", "lpt"])
    for report in s.stream(suite, algorithms=["splittable"]):
        ...                             # reports as they complete

The CLI, the examples, the benchmarks and the service's own queue
drainers all dispatch through this class, so every surface shares one
request model, one report format and one error contract.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..core.instance import Instance
from ..engine.report import SolveReport
from .backends import InProcessBackend, ProcessPoolBackend, RemoteBackend
from .query import SolverQuery
from .requests import BatchRequest, SolveRequest

__all__ = ["Session"]

_AlgorithmsArg = Sequence["str | tuple[str, Mapping[str, Any]] | SolverQuery"]


def _make_backend(backend, workers, cache):
    if backend is None or backend == "local":
        if workers is not None and workers > 1:
            return ProcessPoolBackend(workers=workers, cache=cache)
        return InProcessBackend(workers=workers or 0, cache=cache)
    if backend == "pool":
        return ProcessPoolBackend(workers=workers, cache=cache)
    if isinstance(backend, str):
        if backend.startswith(("http://", "https://")):
            if cache is not None:
                raise ValueError(
                    "a remote session cannot take a local cache; the "
                    "service owns its own result cache")
            if workers is not None:
                raise ValueError(
                    "workers do not apply to a remote session; the "
                    "service's engine_workers controls its fan-out")
            return RemoteBackend(backend)
        raise ValueError(
            f"unknown backend {backend!r}; expected 'local', 'pool', "
            "an http(s):// service URL, or a backend object")
    if workers is not None or cache is not None:
        raise ValueError(
            "workers/cache are ignored when passing a backend object; "
            "configure the backend directly")
    return backend


class Session:
    """Typed facade over one execution backend.

    Parameters
    ----------
    backend:
        ``"local"`` (default) solves inline in this process, ``"pool"``
        fans out over the engine's process pool, an ``http(s)://`` URL
        targets a remote ``/v1`` service, and any object implementing
        ``solve``/``solve_batch``/``stream`` is used as-is.
    workers:
        Process fan-out for the local/pool backends. ``Session(workers=4)``
        is shorthand for the pool backend.
    cache:
        Optional engine report cache (local/pool backends only).
    """

    def __init__(self, backend=None, *, workers: int | None = None,
                 cache=None) -> None:
        self.backend = _make_backend(backend, workers, cache)

    def __repr__(self) -> str:    # pragma: no cover - cosmetic
        return f"Session(backend={self.backend.name!r})"

    # ------------------------------------------------------------------ #
    # the three verbs
    # ------------------------------------------------------------------ #

    def solve(self, request: SolveRequest | Instance, *,
              algorithm: str | None = None,
              query: SolverQuery | None = None,
              kwargs: Mapping[str, Any] | None = None,
              label: str = "", timeout: float | None = None,
              want_schedule: bool = False) -> SolveReport:
        """Run one solve; never raises for solver failures (the report's
        ``status`` carries the outcome, exactly like the engine)."""
        if isinstance(request, Instance):
            request = SolveRequest(
                request, algorithm=algorithm, query=query,
                kwargs=dict(kwargs or {}), label=label, timeout=timeout,
                want_schedule=want_schedule)
        elif isinstance(request, SolveRequest):
            if algorithm is not None or query is not None \
                    or kwargs is not None or label or timeout is not None \
                    or want_schedule:
                raise TypeError(
                    "solver options are part of the SolveRequest; pass "
                    "one or the other")
        else:
            raise TypeError(
                f"solve() takes a SolveRequest or an Instance, "
                f"got {type(request).__name__}")
        return self.backend.solve(request)

    def solve_batch(self,
                    batch: BatchRequest
                    | Iterable[Instance | tuple[str, Instance]],
                    *, algorithms: _AlgorithmsArg | None = None,
                    timeout: float | None = None) -> list[SolveReport]:
        """Run an instances x algorithms grid; one report per cell, in
        deterministic order (instances outermost)."""
        return self.backend.solve_batch(
            self._as_batch(batch, algorithms, timeout))

    def stream(self,
               batch: BatchRequest
               | Iterable[Instance | tuple[str, Instance]],
               *, algorithms: _AlgorithmsArg | None = None,
               timeout: float | None = None) -> Iterator[SolveReport]:
        """Like :meth:`solve_batch`, but yield reports as they finish."""
        return self.backend.stream(self._as_batch(batch, algorithms, timeout))

    @staticmethod
    def _as_batch(batch, algorithms, timeout) -> BatchRequest:
        if isinstance(batch, BatchRequest):
            if algorithms is not None or timeout is not None:
                raise TypeError("algorithms/timeout are part of the "
                                "BatchRequest; pass one or the other")
            return batch
        if algorithms is None:
            raise TypeError("algorithms are required when not passing "
                            "a BatchRequest")
        return BatchRequest.create(batch, algorithms, timeout=timeout)
