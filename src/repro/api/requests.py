"""Typed request objects — the one way work enters the system.

A :class:`SolveRequest` is a single (instance, solver) cell; a
:class:`BatchRequest` is an instances x algorithms grid. Both are frozen
and backend-agnostic: the same object runs in-process, over a process
pool, or against a remote ``/v1`` service. Requests serialise to a
canonical JSON form (:meth:`SolveRequest.canonical_json`) that
round-trips byte-identically through ``POST /v1/solve``, which is what
makes the local and remote backends interchangeable.

Solvers are named either explicitly (``algorithm="nonpreemptive"``) or
by capability (``query=SolverQuery(variant="nonpreemptive",
max_ratio="7/3")``) — exactly one of the two.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..core.instance import Instance
from ..engine.runner import _normalize_instances
from ..io import instance_from_dict, instance_to_dict
from ..registry import SolverSpec, get_solver
from .query import SolverQuery

__all__ = ["SolveRequest", "BatchRequest"]


def _check_timeout(timeout: float | None) -> float | None:
    """Timeouts are validated where requests are built, so every
    backend (and the HTTP surface) rejects them identically."""
    if timeout is None:
        return None
    timeout = float(timeout)
    if timeout <= 0:
        raise ValueError(f"'timeout' must be a positive number, "
                         f"got {timeout:g}")
    return timeout


def _resolve(algorithm: str | None, query: SolverQuery | None,
             kwargs: Mapping[str, Any],
             instance: Instance | None = None) -> tuple[SolverSpec, dict]:
    """Turn (algorithm | query, kwargs) into a concrete (spec, kwargs).

    Capability selection of a PTAS injects the query's epsilon into the
    kwargs so the selected solver actually delivers the requested
    accuracy. When the concrete ``instance`` is known, selection skips
    solvers whose ``supports`` predicate rejects it.
    """
    spec = (get_solver(algorithm) if algorithm is not None
            else query.select(for_instance=instance))
    resolved = dict(kwargs)
    if query is not None and query.epsilon is not None \
            and "epsilon" in spec.accepts:
        resolved.setdefault("epsilon", query.epsilon)
    unknown = sorted(set(resolved) - set(spec.accepts))
    if unknown:
        raise TypeError(
            f"solver {spec.name!r} does not accept kwargs {unknown}; "
            f"accepted: {sorted(spec.accepts) or 'none'}")
    return spec, resolved


@dataclass(frozen=True)
class SolveRequest:
    """One solve: an instance plus a solver named by name or capability.

    ``want_schedule=True`` asks the backend to attach the JSON-encoded
    schedule to the report (``report.extra["schedule"]``) instead of
    discarding it after validation.
    """

    instance: Instance
    algorithm: str | None = None
    query: SolverQuery | None = None
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    timeout: float | None = None
    want_schedule: bool = False

    def __post_init__(self) -> None:
        if (self.algorithm is None) == (self.query is None):
            raise ValueError(
                "exactly one of 'algorithm' and 'query' must be given")
        # normalise exactly like from_dict, so an echoed request's
        # canonical_json() matches the original byte for byte even when
        # the caller passed e.g. an int timeout
        object.__setattr__(self, "kwargs", dict(self.kwargs))
        object.__setattr__(self, "label", str(self.label))
        object.__setattr__(self, "want_schedule", bool(self.want_schedule))
        object.__setattr__(self, "timeout", _check_timeout(self.timeout))

    def resolve(self) -> tuple[SolverSpec, dict]:
        """The concrete (SolverSpec, kwargs) this request runs as.

        Capability selection sees the request's instance, so a query
        never resolves to a solver that does not support it."""
        return _resolve(self.algorithm, self.query, self.kwargs,
                        instance=self.instance)

    # ------------------------------------------------------------------ #
    # wire form
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "instance": instance_to_dict(self.instance),
            "algorithm": self.algorithm,
            "query": None if self.query is None else self.query.to_dict(),
            "kwargs": dict(self.kwargs),
            "label": self.label,
            "timeout": self.timeout,
            "want_schedule": self.want_schedule,
        }

    @staticmethod
    def from_dict(d: Mapping[str, Any]) -> "SolveRequest":
        if not isinstance(d, Mapping):
            raise ValueError("a solve request must be a JSON object")
        if "instance" not in d:
            raise ValueError("missing 'instance'")
        unknown = sorted(set(d) - {"instance", "algorithm", "query",
                                   "kwargs", "label", "timeout",
                                   "want_schedule"})
        if unknown:
            raise ValueError(f"unknown request fields {unknown}")
        kwargs = d.get("kwargs") or {}
        if not isinstance(kwargs, Mapping):
            raise ValueError("'kwargs' must be an object")
        timeout = d.get("timeout")
        return SolveRequest(
            instance=instance_from_dict(dict(d["instance"])),
            algorithm=d.get("algorithm"),
            query=(None if d.get("query") is None
                   else SolverQuery.from_dict(d["query"])),
            kwargs=dict(kwargs),
            label=str(d.get("label") or ""),
            timeout=None if timeout is None else float(timeout),
            want_schedule=bool(d.get("want_schedule", False)))

    def canonical_json(self) -> bytes:
        """The request's canonical wire bytes: sorted keys, no
        whitespace. Two requests are the same request iff these bytes
        are equal, and ``POST /v1/solve`` echoes them back verbatim."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode()


@dataclass(frozen=True)
class BatchRequest:
    """An instances x algorithms grid with one shared per-run timeout.

    Build with :meth:`create`, which accepts instances as ``Instance``
    or ``(label, Instance)`` and algorithms as a registry name,
    ``(name, kwargs)``, or a :class:`SolverQuery` (resolved to a
    concrete solver immediately, so the grid is explicit and
    transportable). Reports come back instance-outermost, algorithm
    innermost — the same deterministic order on every backend.
    """

    instances: tuple[tuple[str, Instance], ...]
    algorithms: tuple[tuple[str, Mapping[str, Any]], ...]
    timeout: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "timeout", _check_timeout(self.timeout))

    @staticmethod
    def create(instances: Iterable[Instance | tuple[str, Instance]],
               algorithms: Sequence[str | tuple[str, Mapping[str, Any]]
                                    | SolverQuery],
               *, timeout: float | None = None) -> "BatchRequest":
        # the engine's normalization is the one source of truth for
        # labels — local and raw run_batch labelling must never diverge
        insts = _normalize_instances(instances)

        algos: list[tuple[str, dict]] = []
        for item in algorithms:
            if isinstance(item, SolverQuery):
                spec, kwargs = _resolve(None, item, {})
            elif isinstance(item, str):
                spec, kwargs = _resolve(item, None, {})
            else:
                name, raw_kwargs = item
                spec, kwargs = _resolve(name, None, dict(raw_kwargs or {}))
            algos.append((spec.name, kwargs))
        if not algos:
            raise ValueError("a batch needs at least one algorithm")
        return BatchRequest(tuple(insts), tuple(algos), timeout=timeout)

    def requests(self) -> list[SolveRequest]:
        """The grid flattened into per-cell :class:`SolveRequest`\\ s."""
        return [SolveRequest(inst, algorithm=name, kwargs=dict(kwargs),
                             label=label, timeout=self.timeout)
                for label, inst in self.instances
                for name, kwargs in self.algorithms]
