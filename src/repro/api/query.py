"""Capability-based solver selection.

A :class:`SolverQuery` names the *guarantee* a caller needs — variant,
kind, a proven-ratio bound, an accuracy target, dependency and time
budgets — instead of a solver implementation. The registry's capability
methods (:func:`repro.registry.find_solvers` /
:func:`repro.registry.select_solver`) turn the query into a concrete
:class:`~repro.registry.SolverSpec`, ranked strongest-guarantee-first::

    from repro.api import SolverQuery

    q = SolverQuery(variant="nonpreemptive", max_ratio="7/3",
                    allow_milp=False)
    spec = q.select()               # -> the 7/3-approx, not the MILP

Queries serialise to plain JSON (``to_dict``/``from_dict``), so the
``POST /v1/solve`` endpoint accepts a ``"query"`` in place of an
``"algorithm"``, and they parse from the CLI's compact
``key=value,...`` form (:meth:`SolverQuery.parse`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Mapping

from ..io import _frac_str
from ..registry import (KINDS, VARIANTS, SolverSpec, find_solvers,
                        parse_ratio_bound, select_solver)

__all__ = ["SolverQuery"]


@dataclass(frozen=True)
class SolverQuery:
    """What a caller needs from a solver, as registry metadata bounds.

    ``max_ratio`` keeps solvers with a *proven* ratio ``<=`` the bound
    (accepts ``Fraction``, ``"7/3"``, or a number); ``epsilon`` asks for
    accuracy ``1 + epsilon`` (selecting a PTAS injects the epsilon into
    its kwargs at resolve time); ``allow_milp=False`` excludes the
    SciPy/HiGHS-backed solvers; ``allow_nfold=False`` excludes the
    n-fold-IP-backed solvers the same way; ``time_budget`` (seconds per
    run) rules out kinds whose
    :data:`~repro.registry.KIND_COST_TIERS` tier exceeds it.
    """

    variant: str | None = None
    kind: str | None = None
    max_ratio: Fraction | None = None
    epsilon: float | None = None
    allow_milp: bool = True
    allow_nfold: bool = True
    time_budget: float | None = None

    def __post_init__(self) -> None:
        # invalid queries must fail here, where they are built — not
        # deep inside a backend or an HTTP handler at select time
        if self.variant is not None and self.variant not in VARIANTS:
            raise ValueError(f"unknown variant {self.variant!r}; "
                             f"one of: {', '.join(VARIANTS)}")
        if self.kind is not None and self.kind not in KINDS:
            raise ValueError(f"unknown kind {self.kind!r}; "
                             f"one of: {', '.join(KINDS)}")
        if self.max_ratio is not None:
            object.__setattr__(self, "max_ratio",
                               parse_ratio_bound(self.max_ratio))
        if self.epsilon is not None and self.epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon}")
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(
                f"time_budget must be > 0, got {self.time_budget}")

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #

    def criteria(self) -> dict[str, Any]:
        """The query as keyword arguments for the registry methods."""
        return {"variant": self.variant, "kind": self.kind,
                "max_ratio": self.max_ratio, "epsilon": self.epsilon,
                "allow_milp": self.allow_milp,
                "allow_nfold": self.allow_nfold,
                "time_budget": self.time_budget}

    def candidates(self, for_instance=None) -> list[SolverSpec]:
        """Every matching solver, best guarantee first. Passing the
        concrete instance additionally drops solvers whose
        :meth:`~repro.registry.SolverSpec.supports` predicate rejects it
        (McNaughton on class-constrained inputs, MILPs past their
        machine cap)."""
        return find_solvers(**self.criteria(), instance=for_instance)

    def select(self, for_instance=None) -> SolverSpec:
        """The single best match (see :meth:`candidates`); raises
        :class:`~repro.registry.NoMatchingSolverError` when none fits."""
        return select_solver(**self.criteria(), instance=for_instance)

    # ------------------------------------------------------------------ #
    # wire + CLI forms
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "variant": self.variant,
            "kind": self.kind,
            "max_ratio": (None if self.max_ratio is None
                          else str(_frac_str(self.max_ratio))),
            "epsilon": self.epsilon,
            "allow_milp": self.allow_milp,
            "allow_nfold": self.allow_nfold,
            "time_budget": self.time_budget,
        }

    @staticmethod
    def from_dict(d: Mapping[str, Any]) -> "SolverQuery":
        unknown = sorted(set(d) - {"variant", "kind", "max_ratio",
                                   "epsilon", "allow_milp", "allow_nfold",
                                   "time_budget"})
        if unknown:
            raise ValueError(f"unknown query fields {unknown}")
        return SolverQuery(
            variant=d.get("variant"), kind=d.get("kind"),
            max_ratio=(None if d.get("max_ratio") is None
                       else parse_ratio_bound(d["max_ratio"])),
            epsilon=(None if d.get("epsilon") is None
                     else float(d["epsilon"])),
            allow_milp=bool(d.get("allow_milp", True)),
            allow_nfold=bool(d.get("allow_nfold", True)),
            time_budget=(None if d.get("time_budget") is None
                         else float(d["time_budget"])))

    @staticmethod
    def parse(text: str) -> "SolverQuery":
        """Parse the CLI form, e.g.
        ``"variant=nonpreemptive,max_ratio=7/3,no_milp,budget=5"``.

        Keys: ``variant``, ``kind``, ``max_ratio`` (alias ``ratio``),
        ``epsilon`` (alias ``eps``), ``budget`` (alias ``time_budget``),
        and the bare flags ``no_milp`` and ``no_nfold``.
        """
        fields: dict[str, Any] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "no_milp" and not value:
                fields["allow_milp"] = False
            elif key == "no_nfold" and not value:
                fields["allow_nfold"] = False
            elif key in ("variant", "kind"):
                fields[key] = value
            elif key in ("max_ratio", "ratio"):
                fields["max_ratio"] = parse_ratio_bound(value)
            elif key in ("epsilon", "eps"):
                fields["epsilon"] = float(value)
            elif key in ("budget", "time_budget"):
                fields["time_budget"] = float(value)
            else:
                raise ValueError(
                    f"cannot parse query part {part!r}; expected "
                    "variant=, kind=, max_ratio=, epsilon=, budget=, "
                    "no_milp or no_nfold")
        return SolverQuery(**fields)
