"""The three interchangeable execution backends behind ``Session``.

* :class:`InProcessBackend` — the engine, inline in this process
  (honest timings; what benchmarks use).
* :class:`ProcessPoolBackend` — the engine's process fan-out
  (batch throughput).
* :class:`RemoteBackend` — a ``/v1`` scheduling service over HTTP
  (shared queue, cross-client result cache).

All three consume the same :class:`~repro.api.requests.SolveRequest` /
:class:`~repro.api.requests.BatchRequest` objects and return the same
:class:`~repro.engine.report.SolveReport` records, with batch reports in
the same deterministic order (instances outermost) — swapping backends
never changes what a caller sees, only where the work runs.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from typing import TYPE_CHECKING, Iterator

from ..core.fastmath import fast_paths_enabled
from ..engine import DEFAULT_WORKERS, execute, run_batch
from ..resultcache import cache_key, is_cacheable, relabel_hit
from ..engine.pool import submit_task
from ..engine.report import SolveReport
from ..engine.runner import SOLVE_SECONDS, execute_in_worker
from ..obs.trace import current_trace_id
from .requests import BatchRequest, SolveRequest

if TYPE_CHECKING:    # pragma: no cover - typing only
    from ..service.client import ServiceClient

__all__ = ["InProcessBackend", "ProcessPoolBackend", "RemoteBackend"]


class InProcessBackend:
    """Runs requests inline through the execution engine.

    ``cache`` is any object with the engine's ``get``/``put`` report
    cache protocol (:class:`~repro.engine.cache.ReportCache` or the
    service's SQLite-backed adapter).
    """

    name = "in-process"

    def __init__(self, *, workers: int = 0, cache=None) -> None:
        self.workers = workers
        self.cache = cache

    def solve(self, request: SolveRequest) -> SolveReport:
        spec, kwargs = request.resolve()
        if self.cache is not None and not request.want_schedule:
            # single-cell batch so the configured cache is consulted and
            # filled; want_schedule bypasses it — cached reports carry
            # no schedule
            (rep,) = run_batch(
                [(request.label, request.instance)], [(spec.name, kwargs)],
                workers=0, timeout=request.timeout, cache=self.cache)
            return rep
        return execute(request.instance, spec.name, kwargs,
                       label=request.label, timeout=request.timeout,
                       keep_schedule=request.want_schedule)

    def solve_batch(self, batch: BatchRequest) -> list[SolveReport]:
        return run_batch(batch.instances, list(batch.algorithms),
                         workers=self.workers, timeout=batch.timeout,
                         cache=self.cache)

    def stream(self, batch: BatchRequest) -> Iterator[SolveReport]:
        """Yield each cell's report as soon as it is solved (grid
        order when inline, completion order under the pool). Cells that
        repeat an identical (instance, algorithm, kwargs) triple are
        solved once, exactly like ``run_batch``."""
        seen: dict[str, SolveReport] = {}
        for label, inst in batch.instances:
            for name, kwargs in batch.algorithms:
                key = cache_key(inst, name, kwargs)
                if key in seen:
                    yield relabel_hit(seen[key], label)
                    continue
                (rep,) = run_batch([(label, inst)], [(name, kwargs)],
                                   workers=0, timeout=batch.timeout,
                                   cache=self.cache)
                seen[key] = rep
                yield rep


class ProcessPoolBackend(InProcessBackend):
    """Fans batches out over the engine's process pool."""

    name = "process-pool"

    def __init__(self, *, workers: int | None = None, cache=None) -> None:
        super().__init__(workers=workers or DEFAULT_WORKERS, cache=cache)

    def stream(self, batch: BatchRequest) -> Iterator[SolveReport]:
        cells = [(label, inst, name, dict(kwargs))
                 for label, inst in batch.instances
                 for name, kwargs in batch.algorithms]
        if len(cells) == 1 or self.workers <= 1:
            yield from super().stream(batch)
            return
        # cache hits come first, misses in completion order; dedup and
        # cache rules are the engine's (cache_key / is_cacheable)
        pending: list[tuple[str, str, object, str, dict]] = []
        dup_labels: dict[str, list[str]] = {}
        for label, inst, name, kwargs in cells:
            key = cache_key(inst, name, kwargs)
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                yield relabel_hit(hit, label)
            elif key in dup_labels:     # solved once, replayed per cell
                dup_labels[key].append(label)
            else:
                dup_labels[key] = []
                pending.append((key, label, inst, name, kwargs))
        if not pending:
            return
        # the engine's persistent pool: warm workers across stream calls.
        # Submission is windowed to ``workers`` in-flight cells — the
        # caller's fan-out stays a hard cap even when the shared pool is
        # wider — and never asks for more workers than pending cells
        # (fork pre-spawns the pool's whole width on first use).
        width = min(self.workers, len(pending))
        fast = fast_paths_enabled()
        tid = current_trace_id()    # shipped to workers like fast_paths
        queue = iter(pending)
        live: dict = {}

        def submit_next() -> None:
            item = next(queue, None)
            if item is None:
                return
            key, label, inst, name, kwargs = item
            fut = submit_task(width, execute_in_worker, inst, name, kwargs,
                              label=label, timeout=batch.timeout,
                              fast_paths=fast, trace_id=tid)
            live[fut] = key
        for _ in range(width):
            submit_next()
        while live:
            done, _ = wait(live, return_when=FIRST_COMPLETED)
            for fut in done:
                key = live.pop(fut)
                rep = fut.result()
                # the worker observed into its own (lost) registry; record
                # the solve in the parent's
                SOLVE_SECONDS.observe(rep.wall_time_s,
                                      algorithm=rep.algorithm,
                                      status=rep.status)
                submit_next()
                if self.cache is not None and is_cacheable(rep):
                    self.cache.put(key, rep)
                yield rep
                for label in dup_labels[key]:
                    yield relabel_hit(rep, label)


class RemoteBackend:
    """Runs requests on a ``/v1`` scheduling service.

    ``solve`` uses the synchronous ``POST /v1/solve`` endpoint; batches
    are submitted as one job per instance and polled to completion, so
    they land in the service's persistent queue and result cache like
    any other client's work.
    """

    name = "remote"

    def __init__(self, target: "str | ServiceClient", *,
                 wait_timeout: float = 600.0, poll: float = 0.1) -> None:
        from ..service.client import ServiceClient
        self.client = (target if isinstance(target, ServiceClient)
                       else ServiceClient(target))
        self.wait_timeout = wait_timeout
        self.poll = poll

    def solve(self, request: SolveRequest) -> SolveReport:
        return self.client.solve(request)

    def _submit(self, batch: BatchRequest) -> list[dict]:
        return [self.client.submit(inst, list(batch.algorithms), label=label,
                                   timeout=batch.timeout)
                for label, inst in batch.instances]

    def solve_batch(self, batch: BatchRequest) -> list[SolveReport]:
        reports: list[SolveReport] = []
        for job in self._submit(batch):
            reports.extend(self.client.wait(job["id"],
                                            timeout=self.wait_timeout,
                                            poll=self.poll))
        return reports

    def stream(self, batch: BatchRequest) -> Iterator[SolveReport]:
        """Yield each instance's reports as its job finishes
        (completion order); a server-side job failure raises
        :class:`~repro.service.client.ServiceError` with
        ``code="job_failed"`` (``"job_quarantined"`` for jobs that
        exhausted their retries), exactly like ``ServiceClient.wait``."""
        pending = {job["id"] for job in self._submit(batch)}
        deadline = time.monotonic() + self.wait_timeout
        while pending:
            finished = []
            for job_id in pending:
                job = self.client.job(job_id)
                if job["status"] in ("failed", "quarantined"):
                    raise self.client.job_failure(job)
                if job["status"] == "done":
                    finished.append(job_id)
                    yield from self.client.reports(job_id)
            pending.difference_update(finished)
            if pending:
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"{len(pending)} job(s) still pending after "
                        f"{self.wait_timeout}s")
                # each cycle costs one GET per pending job — back off as
                # the pending set grows so a wide batch does not hammer
                # the threaded stdlib server
                time.sleep(min(2.0, self.poll * max(1.0,
                                                    len(pending) / 4)))
