"""Microbenchmark harness: stdlib ``timeit`` with a JSON trajectory.

Design goals, in order:

1. **Durable** — every run can be written to ``BENCH_results.json``
   (per-bench median/min seconds, instance shapes, git revision, python
   version), so the repository carries a perf trajectory instead of
   anecdotes.
2. **Comparable** — :mod:`repro.perf.compare` diffs two result files and
   flags regressions; the committed baseline gates CI.
3. **Honest** — benches that claim a speedup measure *both* sides in the
   same process back to back (fast path vs the pure-Fraction reference
   via :func:`repro.core.fastmath.use_fast_paths`, warm pool vs cold
   pool), and record the ratio alongside the raw timings.

Timings use ``timeit.Timer`` (GC disabled per rep, ``perf_counter``
underneath). Comparisons use the *minimum* over repeats — the statistic
least sensitive to scheduler noise on shared CI runners.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import timeit
from dataclasses import asdict, dataclass, field
from pathlib import Path
from statistics import median
from typing import Any, Callable, Mapping

__all__ = ["BenchResult", "BenchRun", "time_callable", "git_rev",
           "measure_calibration", "write_results", "load_results",
           "RESULTS_SCHEMA"]

RESULTS_SCHEMA = "repro-bench-v1"


@dataclass(frozen=True)
class BenchResult:
    """One bench's measurement.

    ``median_s``/``min_s`` are seconds per single execution of the bench
    body. ``speedup`` (when present) is reference-time / fast-time of the
    comparison the bench embeds — kernel benches compare against the
    pure-Fraction reference path, the batch bench against a cold process
    pool. ``shape`` describes the workload so baselines are only compared
    like for like.
    """

    name: str
    median_s: float
    min_s: float
    repeats: int
    number: int
    shape: Mapping[str, Any] = field(default_factory=dict)
    speedup: float | None = None
    reference_median_s: float | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = asdict(self)
        del d["name"]
        return {k: v for k, v in d.items() if v not in (None, {}, [])}


def time_callable(fn: Callable[[], Any], *, repeats: int = 5,
                  number: int = 1) -> tuple[float, float]:
    """``(median, min)`` seconds per call of ``fn`` over ``repeats`` reps
    of ``number`` inner calls each."""
    timer = timeit.Timer(fn)
    times = [t / number for t in timer.repeat(repeat=repeats, number=number)]
    return median(times), min(times)


def measure_calibration() -> float:
    """Seconds for a fixed unit of interpreter-bound work.

    Recorded into every results file as the machine-speed yardstick: the
    comparator scales cross-file ratios by the calibration ratio, so a
    baseline measured on a fast dev box does not hard-fail a slower CI
    runner (and a fast runner cannot mask a real regression). The body
    mirrors what the kernels actually spend time on — python bytecode,
    big-int arithmetic and hashing.
    """
    import hashlib
    buf = bytes(range(256)) * 1024

    def body() -> None:
        total = 0
        for i in range(20_000):
            total += i * i
        hashlib.sha256(buf).digest()
        pow(total, 3, 10 ** 18 + 9)

    _, mn = time_callable(body, repeats=5, number=3)
    return mn


def git_rev() -> str:
    """Short git revision of the working tree, ``"unknown"`` off-repo."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, timeout=10,
                             cwd=Path(__file__).resolve().parent)
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


@dataclass
class BenchRun:
    """A collection of results plus the environment stamp."""

    suite: str
    results: list[BenchResult] = field(default_factory=list)
    calibration_s: float | None = None

    def add(self, result: BenchResult) -> BenchResult:
        self.results.append(result)
        return result

    def to_dict(self) -> dict:
        d = {
            "schema": RESULTS_SCHEMA,
            "suite": self.suite,
            "git_rev": git_rev(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "argv": sys.argv[1:],
            "benches": {r.name: r.to_dict() for r in self.results},
        }
        if self.calibration_s is not None:
            d["calibration_s"] = self.calibration_s
        return d


def write_results(run: BenchRun, path: str | Path) -> Path:
    """Write ``BENCH_results.json`` (pretty, trailing newline, stable key
    order — the file is meant to live in version control)."""
    path = Path(path)
    path.write_text(json.dumps(run.to_dict(), indent=2, sort_keys=True)
                    + "\n")
    return path


def load_results(path: str | Path) -> dict:
    """Load a results file, validating the schema marker."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != RESULTS_SCHEMA:
        raise ValueError(
            f"{path}: not a {RESULTS_SCHEMA} results file "
            f"(schema={data.get('schema')!r})")
    return data
