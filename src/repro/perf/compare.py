"""Regression comparator over two ``BENCH_results.json`` files.

The committed baseline gates performance: a bench whose best-of-repeats
time grew beyond ``fail_ratio`` times the baseline fails the check,
growth beyond ``warn_ratio`` warns. Comparison uses ``min_s`` — the
repeat minimum is the statistic least sensitive to scheduler noise —
and only benches present in *both* files with an identical ``shape``
are compared (a reshaped bench is a new measurement, not a regression).
When both files carry a ``calibration_s`` machine-speed yardstick (see
:func:`repro.perf.harness.measure_calibration`), ratios are scaled by
the machines' relative speed before thresholding.

CI policy (see ``.github/workflows/ci.yml``): warn over 1.25x on the
noisy shared runners without failing the job, hard-fail over 2x. Local
``repro bench --baseline`` defaults to failing anything over 1.25x.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping

__all__ = ["Comparison", "compare_results", "DEFAULT_WARN_RATIO",
           "DEFAULT_FAIL_RATIO"]

#: >25% slower than baseline: a regression worth flagging.
DEFAULT_WARN_RATIO = 1.25
#: >2x slower: beyond any plausible runner noise — always a failure.
DEFAULT_FAIL_RATIO = 2.0


def _canon(shape) -> str:
    """Shape equality through a JSON round-trip, so an in-memory run
    (tuples) compares equal to its own written file (lists)."""
    return json.dumps(shape, sort_keys=True, default=list)


@dataclass(frozen=True)
class Comparison:
    """Outcome of diffing one bench against the baseline."""

    name: str
    ratio: float | None          # current.min_s / baseline.min_s
    status: str                  # "ok" | "warn" | "fail" | "skipped"
    detail: str = ""

    def line(self) -> str:
        if self.ratio is None:
            return f"~ {self.name}: {self.detail}"
        marker = {"ok": "=", "warn": "!", "fail": "X"}[self.status]
        return (f"{marker} {self.name}: {self.ratio:.2f}x baseline"
                f"{' — ' + self.detail if self.detail else ''}")


def compare_results(current: Mapping, baseline: Mapping, *,
                    warn_ratio: float = DEFAULT_WARN_RATIO,
                    fail_ratio: float = DEFAULT_FAIL_RATIO
                    ) -> list[Comparison]:
    """Diff two loaded results files; one :class:`Comparison` per bench
    of ``current`` (new benches and shape changes are ``skipped``)."""
    if not 1.0 <= warn_ratio <= fail_ratio:
        raise ValueError(
            f"need 1.0 <= warn_ratio <= fail_ratio, got "
            f"{warn_ratio}/{fail_ratio}")
    base = baseline.get("benches", {})
    # machine-speed normalisation: when both files carry a calibration
    # measurement (a fixed unit of interpreter work), ratios are scaled
    # by the machines' relative speed so a baseline from a fast dev box
    # does not hard-fail a slower CI runner — and a fast runner cannot
    # mask a real regression
    cal_cur = current.get("calibration_s")
    cal_base = baseline.get("calibration_s")
    scale = (cal_base / cal_cur) if cal_cur and cal_base else 1.0
    out: list[Comparison] = []
    for name, cur in sorted(current.get("benches", {}).items()):
        ref = base.get(name)
        if ref is None:
            out.append(Comparison(name, None, "skipped",
                                  "not in baseline (new bench)"))
            continue
        if _canon(cur.get("shape")) != _canon(ref.get("shape")):
            out.append(Comparison(name, None, "skipped",
                                  "shape changed vs baseline"))
            continue
        cur_t, ref_t = cur.get("min_s"), ref.get("min_s")
        if not cur_t or not ref_t:
            out.append(Comparison(name, None, "skipped",
                                  "missing min_s timing"))
            continue
        ratio = cur_t / ref_t * scale
        if ratio > fail_ratio:
            status, detail = "fail", f"exceeds hard limit {fail_ratio:g}x"
        elif ratio > warn_ratio:
            status, detail = "warn", f"exceeds warn limit {warn_ratio:g}x"
        else:
            status, detail = "ok", ""
        if scale != 1.0 and status != "ok":
            detail += f" (machine-normalised by {scale:.2f})"
        out.append(Comparison(name, round(ratio, 3), status, detail))
    return out
