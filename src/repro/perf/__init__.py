"""Performance measurement subsystem: benches, trajectory, regression gate.

* :mod:`repro.perf.harness` — ``timeit``-based microbench harness and the
  ``BENCH_results.json`` format (per-bench median/min, shapes, git rev).
* :mod:`repro.perf.suites` — named suites: the solver kernel benches
  (fast path vs pure-Fraction reference) and the batch engine benches
  (warm persistent pool vs cold pool).
* :mod:`repro.perf.compare` — the comparator that fails a run regressing
  beyond a threshold against the committed baseline.

CLI: ``repro bench --suite smoke|kernel|batch|full`` (see ``repro bench
--help``).
"""

from .compare import (DEFAULT_FAIL_RATIO, DEFAULT_WARN_RATIO, Comparison,
                      compare_results)
from .harness import (BenchResult, BenchRun, git_rev, load_results,
                      time_callable, write_results)
from .suites import SUITES, list_suites, run_suite

__all__ = [
    "BenchResult", "BenchRun", "Comparison", "SUITES",
    "DEFAULT_WARN_RATIO", "DEFAULT_FAIL_RATIO",
    "compare_results", "git_rev", "list_suites", "load_results",
    "run_suite", "time_callable", "write_results",
]
