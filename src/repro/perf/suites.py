"""Named benchmark suites: the kernels and the batch engine.

Two scales per bench family:

* ``smoke`` — seconds-fast shapes for CI and pre-commit sanity,
* ``full``  — the shapes the committed baseline is measured at.

``repro bench --suite full`` runs every family at both scales, so the
committed ``BENCH_results.json`` contains the smoke-scale entries CI's
``--suite smoke`` run is compared against. Bench names embed their shape
tag; the comparator only ever diffs identical names.

Every kernel bench measures the optimised path *and* its pure-Fraction
reference (via :func:`repro.core.fastmath.use_fast_paths`) back to back
and records ``speedup``; the batch bench does the same against a cold
process pool (:func:`repro.engine.pool.shutdown_pool` before each timed
call). A recorded speedup is therefore a same-process, same-moment
comparison — not a diff against a historical file.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from statistics import median
from time import perf_counter
from typing import Callable

import numpy as np

from ..approx.borders import smallest_feasible_border
from ..approx.splitting import split_classes
from ..approx.splittable import solve_splittable
from ..core.bounds import splittable_lower_bound
from ..core.fastmath import use_fast_paths
from ..core.instance import Instance, compute_digest
from ..core.validation import validate_nonpreemptive
from ..engine import run_batch
from ..engine.multicell import solve_many
from ..engine.pool import shutdown_pool
from ..engine.runner import execute
from ..engine.shm import set_shm_enabled, shm_enabled
from ..nfold import NFold, augment, solve_dp, solve_milp
from ..ptas.configurations import (_build_space_cached, _enumerate_cached,
                                   build_configuration_space,
                                   configuration_cache_stats,
                                   splittable_modules)
from ..ptas.nfold_builders import build_splittable_nfold
from ..registry import get_solver
from ..workloads import uniform_instance
from .harness import (BenchResult, BenchRun, measure_calibration,
                      time_callable)

__all__ = ["SUITES", "run_suite", "list_suites"]

#: (n, C, m, c, p_hi) of the kernel workload per scale.
_KERNEL_SHAPES = {
    "smoke": dict(n=400, C=40, m=10, c=3, p_hi=10_000),
    "full": dict(n=2000, C=100, m=50, c=3, p_hi=100_000),
}
#: Border-search shape: many classes, larger m (the search is O(C log m)).
_BORDER_SHAPES = {
    "smoke": dict(C=120, m=64),
    "full": dict(C=500, m=200),
}
#: Batch-throughput shape: instances x algorithms grid and pool fan-out.
_BATCH_SHAPES = {
    "smoke": dict(instances=4, n=40, algorithms=("splittable",
                                                 "nonpreemptive"),
                  workers=2),
    # light cells on purpose: pool spin-up and per-cell shipping are the
    # costs under test, and the service's dominant regime is many small
    # requests — heavy kernels are covered by the kernel benches
    "full": dict(instances=12, n=32, algorithms=("splittable",
                                                 "nonpreemptive"),
                 workers=4),
}


def _kernel_instance(scale: str) -> Instance:
    s = _KERNEL_SHAPES[scale]
    rng = np.random.default_rng(20260730)
    return uniform_instance(rng, n=s["n"], C=s["C"], m=s["m"], c=s["c"],
                            p_hi=s["p_hi"])


def _tag(scale: str) -> str:
    s = _KERNEL_SHAPES[scale]
    return f"n{s['n']}"


def _fast_vs_reference(name: str, fn: Callable[[], object], *,
                       shape: dict, repeats: int,
                       number: int = 1) -> BenchResult:
    """Time ``fn`` under the fast paths and under the reference paths."""
    with use_fast_paths(True):
        fn()                                    # warm caches / JIT imports
        med_fast, min_fast = time_callable(fn, repeats=repeats,
                                           number=number)
    with use_fast_paths(False):
        med_ref, min_ref = time_callable(fn, repeats=repeats,
                                         number=number)
    return BenchResult(name=name, median_s=med_fast, min_s=min_fast,
                       repeats=repeats, number=number, shape=shape,
                       speedup=round(min_ref / min_fast, 3),
                       reference_median_s=med_ref)


# --------------------------------------------------------------------- #
# kernel benches
# --------------------------------------------------------------------- #

def bench_split_classes(scale: str, repeats: int) -> BenchResult:
    inst = _kernel_instance(scale)
    T = Fraction(inst.total_load * 7, inst.machines * 5)
    return _fast_vs_reference(
        f"kernel/split_classes/{_tag(scale)}",
        lambda: split_classes(inst, T),
        shape=_KERNEL_SHAPES[scale], repeats=repeats,
        number=3 if scale == "smoke" else 1)


def bench_border_search(scale: str, repeats: int) -> BenchResult:
    b = _BORDER_SHAPES[scale]
    rng = np.random.default_rng(20260730)
    inst = uniform_instance(rng, n=2 * b["C"], C=b["C"], m=10, c=3,
                            p_hi=100_000)
    loads = inst.class_loads()
    budget = 3 * b["m"]
    return _fast_vs_reference(
        f"kernel/border_search/C{b['C']}",
        lambda: smallest_feasible_border(loads, b["m"], budget),
        shape=b, repeats=repeats)


def _digest_v1_reference(inst: Instance) -> str:
    """The seed's per-int str/encode digest, kept verbatim as the bench
    reference for the struct-packed v2 encoding."""
    h = hashlib.sha256()
    h.update(b"ccs-instance-v1")
    for part in (inst.processing_times, inst.classes,
                 (inst.machines, inst.class_slots)):
        h.update(b"|")
        for v in part:
            h.update(str(int(v)).encode())
            h.update(b",")
    return h.hexdigest()


def bench_digest(scale: str, repeats: int) -> BenchResult:
    inst = _kernel_instance(scale)
    number = 20
    med_fast, min_fast = time_callable(lambda: compute_digest(inst),
                                       repeats=repeats, number=number)
    med_ref, min_ref = time_callable(lambda: _digest_v1_reference(inst),
                                     repeats=repeats, number=number)
    return BenchResult(
        name=f"kernel/instance_digest/{_tag(scale)}",
        median_s=med_fast, min_s=min_fast, repeats=repeats, number=number,
        shape=_KERNEL_SHAPES[scale],
        speedup=round(min_ref / min_fast, 3), reference_median_s=med_ref)


def bench_validate_nonpreemptive(scale: str, repeats: int) -> BenchResult:
    inst = _kernel_instance(scale)
    # the 7/3-approximation always produces a feasible schedule (greedy
    # baselines may dead-end on tight class-slot shapes)
    sched = get_solver("nonpreemptive").solve(inst).schedule
    return _fast_vs_reference(
        f"kernel/validate_nonpreemptive/{_tag(scale)}",
        lambda: validate_nonpreemptive(inst, sched),
        shape=_KERNEL_SHAPES[scale], repeats=repeats, number=5)


def bench_schedule_accounting(scale: str, repeats: int) -> BenchResult:
    inst = _kernel_instance(scale)
    sched = solve_splittable(inst).schedule
    return _fast_vs_reference(
        f"kernel/splittable_accounting/{_tag(scale)}",
        lambda: (sched.makespan(), sched.job_amounts()),
        shape=_KERNEL_SHAPES[scale], repeats=repeats, number=3)


def bench_config_space(scale: str, repeats: int) -> BenchResult:
    q = 3 if scale == "smoke" else 4
    c = 3
    modules = splittable_modules(q, c)
    args = (modules, min(q + 4, c), q * c * (q + 4))

    def cold() -> None:
        _build_space_cached.cache_clear()
        _enumerate_cached.cache_clear()
        build_configuration_space(*args)

    def warm() -> None:
        build_configuration_space(*args)

    warm()                                      # prime the cache
    med_warm, min_warm = time_callable(warm, repeats=repeats, number=5)
    med_cold, min_cold = time_callable(cold, repeats=repeats)
    stats = configuration_cache_stats()
    return BenchResult(
        name=f"kernel/config_space_memo/q{q}",
        median_s=med_warm, min_s=min_warm, repeats=repeats, number=5,
        shape={"q": q, "c": c, "modules": len(modules)},
        speedup=round(min_cold / min_warm, 3), reference_median_s=med_cold,
        extra={"cache_" + layer + "_" + k: v
               for layer, s in stats.items()
               for k, v in s.items()
               if k in ("hits", "misses", "evictions", "weight")})


# --------------------------------------------------------------------- #
# n-fold substrate benches
# --------------------------------------------------------------------- #

#: The reference shape of the `repro list` Theorem-1 column, scaled up
#: three machine orders for the full run — the IP dimensions are
#: machine-count-free, so the two scales SHOULD cost about the same;
#: that flatness is the property under regression watch.
_NFOLD_MACHINES = {"smoke": 128, "full": 4096}


def _nfold_instance(scale: str) -> Instance:
    return Instance((7, 5, 4, 3, 3, 2), (0, 0, 1, 1, 2, 2),
                    _NFOLD_MACHINES[scale], 2)


def bench_nfold_build(scale: str, repeats: int) -> BenchResult:
    """Building the splittable n-fold program with the configuration
    space memoized (warm, the per-guess cost inside a search) against a
    cold build that re-enumerates configurations."""
    inst = _nfold_instance(scale)
    T = splittable_lower_bound(inst)

    def warm() -> None:
        build_splittable_nfold(inst, T, 2)

    def cold() -> None:
        _build_space_cached.cache_clear()
        _enumerate_cached.cache_clear()
        build_splittable_nfold(inst, T, 2)

    warm()                                      # prime the memo
    med_warm, min_warm = time_callable(warm, repeats=repeats, number=5)
    med_cold, min_cold = time_callable(cold, repeats=repeats)
    return BenchResult(
        name=f"kernel/nfold_build/m{inst.machines}",
        median_s=med_warm, min_s=min_warm, repeats=repeats, number=5,
        shape={"m": inst.machines, "n": inst.num_jobs,
               "C": inst.num_classes, "c": inst.class_slots, "q": 2},
        speedup=round(min_cold / min_warm, 3), reference_median_s=med_cold)


def bench_nfold_solve(scale: str, repeats: int) -> BenchResult:
    """End-to-end ``nfold-*`` registry solves (warm start + guess search
    + per-guess ILP) at the reference shape — the trajectory canary for
    the paper's machine-count-free path."""
    inst = _nfold_instance(scale)
    names = ("nfold-splittable", "nfold-preemptive", "nfold-nonpreemptive")

    def body() -> None:
        for name in names:
            get_solver(name).solve(inst)

    body()                                      # warm caches / lazy imports
    med, mn = time_callable(body, repeats=repeats)
    return BenchResult(
        name=f"kernel/nfold_solve/m{inst.machines}",
        median_s=med, min_s=mn, repeats=repeats, number=1,
        shape={"m": inst.machines, "n": inst.num_jobs,
               "C": inst.num_classes, "c": inst.class_slots,
               "solvers": list(names)})


def _tiny_nfold(bricks: int) -> NFold:
    """A synthetic micro n-fold (r=1, s=1, t=3) both the brick DP and
    HiGHS solve in microseconds — the apples-to-apples backend bench."""
    A = [np.array([[1, 0, 0]], dtype=np.int64) for _ in range(bricks)]
    B = [np.array([[1, 1, 1]], dtype=np.int64) for _ in range(bricks)]
    b_global = np.array([bricks], dtype=np.int64)
    b_local = [np.array([2], dtype=np.int64) for _ in range(bricks)]
    lower = np.zeros(3 * bricks, dtype=np.int64)
    upper = np.full(3 * bricks, 2, dtype=np.int64)
    w = np.array([0, 1, 0] * bricks, dtype=np.int64)
    return NFold(A, B, b_global, b_local, lower, upper, w)


def bench_nfold_dp(scale: str, repeats: int) -> BenchResult:
    """The structure-exploiting brick DP against HiGHS on the same micro
    n-fold, plus one Graver augmentation descent from a deliberately
    suboptimal feasible point (the augmentation-rounds histogram's
    driver)."""
    bricks = 4 if scale == "smoke" else 6
    nf = _tiny_nfold(bricks)

    def dp() -> None:
        solve_dp(nf)

    def milp() -> None:
        solve_milp(nf)

    dp()
    med_dp, min_dp = time_callable(dp, repeats=repeats, number=3)
    milp()
    med_milp, min_milp = time_callable(milp, repeats=repeats, number=3)
    # augmentation: half the bricks start on the costly middle column
    x0 = np.array(sum(([2, 0, 0] if i < bricks // 2 else [0, 2, 0]
                       for i in range(bricks)), []), dtype=np.int64)
    stats: dict = {}
    t0 = perf_counter()
    augment(nf, x0, stats=stats)
    aug_s = perf_counter() - t0
    from ..nfold.registry_solvers import AUGMENT_ROUNDS
    AUGMENT_ROUNDS.observe(stats["rounds"], algorithm="bench-nfold-dp")
    return BenchResult(
        name=f"kernel/nfold_dp/N{bricks}",
        median_s=med_dp, min_s=min_dp, repeats=repeats, number=3,
        shape={"bricks": bricks, "r": 1, "s": 1, "t": 3},
        speedup=round(min_milp / min_dp, 3), reference_median_s=med_milp,
        extra={"augment_rounds": stats["rounds"],
               "augment_improvement": stats["improvement"],
               "augment_s": round(aug_s, 6)})


# --------------------------------------------------------------------- #
# batch engine benches
# --------------------------------------------------------------------- #

def bench_batch_throughput(scale: str, repeats: int) -> BenchResult:
    b = _BATCH_SHAPES[scale]
    insts = [(f"bench-{k}",
              uniform_instance(np.random.default_rng(500 + k), n=b["n"],
                               C=8, m=4, c=2, p_hi=100))
             for k in range(b["instances"])]
    algos = list(b["algorithms"])
    cells = len(insts) * len(algos)

    def warm() -> None:
        run_batch(insts, algos, workers=b["workers"])

    warm()                                      # spin the pool up once
    med_warm, min_warm = time_callable(warm, repeats=repeats)
    # cold path: the previous pool is torn down *outside* the timed
    # region — a genuinely cold first batch never pays someone else's
    # teardown, only its own spin-up
    cold_times = []
    for _ in range(repeats):
        shutdown_pool(wait=True)
        t0 = perf_counter()
        run_batch(insts, algos, workers=b["workers"])
        cold_times.append(perf_counter() - t0)
    med_cold, min_cold = median(cold_times), min(cold_times)
    shutdown_pool(wait=True)
    return BenchResult(
        name=f"batch/throughput/{cells}cells",
        median_s=med_warm, min_s=min_warm, repeats=repeats, number=1,
        shape=b,
        speedup=round(min_cold / min_warm, 3), reference_median_s=med_cold,
        extra={"cells": cells,
               "warm_cells_per_s": round(cells / min_warm, 1),
               "cold_cells_per_s": round(cells / min_cold, 1)})


def bench_batch_shm(scale: str, repeats: int) -> BenchResult:
    """Warm pooled batches with the shared-memory instance transport
    against the same batches forced onto the pickle fallback — the
    transport layer is the only variable."""
    b = _BATCH_SHAPES[scale]
    insts = [(f"shmb-{k}",
              uniform_instance(np.random.default_rng(700 + k), n=b["n"],
                               C=8, m=4, c=2, p_hi=100))
             for k in range(b["instances"])]
    algos = list(b["algorithms"])
    cells = len(insts) * len(algos)

    def body() -> None:
        run_batch(insts, algos, workers=b["workers"])

    was_enabled = shm_enabled()
    try:
        set_shm_enabled(True)
        body()                              # warm pool + segment cache
        med_shm, min_shm = time_callable(body, repeats=repeats)
        set_shm_enabled(False)              # also releases live segments
        body()
        med_ref, min_ref = time_callable(body, repeats=repeats)
    finally:
        set_shm_enabled(was_enabled)
        shutdown_pool(wait=True)
    return BenchResult(
        name=f"batch/shm/{cells}cells",
        median_s=med_shm, min_s=min_shm, repeats=repeats, number=1,
        shape=b,
        speedup=round(min_ref / min_shm, 3), reference_median_s=med_ref,
        extra={"cells": cells,
               "shm_cells_per_s": round(cells / min_shm, 1),
               "pickle_cells_per_s": round(cells / min_ref, 1)})


def bench_multicell_kernels(scale: str, repeats: int) -> BenchResult:
    """One :func:`~repro.engine.multicell.solve_many` dispatch over a
    same-algorithm chunk against the equivalent per-cell ``execute``
    loop — the stacked-kernel win in isolation, no pool or transport."""
    b = _BATCH_SHAPES[scale]
    insts = [uniform_instance(np.random.default_rng(800 + k), n=b["n"],
                              C=8, m=4, c=2, p_hi=100)
             for k in range(b["instances"])]
    cells = [(f"mc-{k}-{a}", inst, a, {})
             for k, inst in enumerate(insts) for a in b["algorithms"]]

    def batched() -> None:
        solve_many(cells)

    def per_cell() -> None:
        for label, inst, name, kwargs in cells:
            execute(inst, name, kwargs, label=label)

    batched()                               # warm caches
    med_many, min_many = time_callable(batched, repeats=repeats)
    med_ref, min_ref = time_callable(per_cell, repeats=repeats)
    return BenchResult(
        name=f"kernel/multicell/{len(cells)}cells",
        median_s=med_many, min_s=min_many, repeats=repeats, number=1,
        shape=b,
        speedup=round(min_ref / min_many, 3), reference_median_s=med_ref,
        extra={"cells": len(cells),
               "batched_cells_per_s": round(len(cells) / min_many, 1)})


def bench_solver_suite(scale: str, repeats: int) -> BenchResult:
    """End-to-end inline batch over a deterministic workload grid — the
    regression canary for overall solver throughput (no pool, no
    comparison: just the trajectory)."""
    n = 120 if scale == "smoke" else 400
    insts = [(f"suite-{k}",
              uniform_instance(np.random.default_rng(900 + k), n=n,
                               C=max(4, n // 10), m=max(2, n // 20), c=3,
                               p_hi=1000))
             for k in range(3)]
    algos = ["splittable", "preemptive", "nonpreemptive", "lpt"]

    def body() -> None:
        run_batch(insts, algos, workers=0)

    body()
    med, mn = time_callable(body, repeats=repeats)
    return BenchResult(
        name=f"batch/solver_suite/n{n}",
        median_s=med, min_s=mn, repeats=repeats, number=1,
        shape={"n": n, "instances": len(insts), "algorithms": algos})


# --------------------------------------------------------------------- #
# suite registry
# --------------------------------------------------------------------- #

_KERNEL_FAMILY = (bench_split_classes, bench_border_search, bench_digest,
                  bench_validate_nonpreemptive, bench_schedule_accounting,
                  bench_config_space)
_NFOLD_FAMILY = (bench_nfold_build, bench_nfold_solve, bench_nfold_dp)
_BATCH_FAMILY = (bench_batch_throughput, bench_batch_shm,
                 bench_multicell_kernels, bench_solver_suite)

SUITES: dict[str, tuple[tuple[Callable[[str, int], BenchResult], str], ...]]
SUITES = {
    "smoke": tuple((f, "smoke")
                   for f in (bench_split_classes, bench_border_search,
                             bench_digest, bench_batch_throughput,
                             bench_nfold_solve)),
    "kernel": tuple((f, "full") for f in _KERNEL_FAMILY + _NFOLD_FAMILY),
    "nfold": tuple((f, "full") for f in _NFOLD_FAMILY),
    "batch": tuple((f, "full") for f in _BATCH_FAMILY),
}
SUITES["full"] = SUITES["kernel"] + SUITES["batch"] + SUITES["smoke"]


def list_suites() -> list[str]:
    return sorted(SUITES)


def run_suite(name: str, *, repeats: int = 5,
              progress: Callable[[str], None] | None = None) -> BenchRun:
    """Run every bench of suite ``name``; returns the populated run."""
    if name not in SUITES:
        raise ValueError(
            f"unknown suite {name!r}; expected one of {list_suites()}")
    run = BenchRun(suite=name, calibration_s=measure_calibration())
    for fn, scale in SUITES[name]:
        result = fn(scale, repeats)
        run.add(result)
        if progress is not None:
            speed = f"  ({result.speedup:g}x vs reference)" \
                if result.speedup is not None else ""
            progress(f"{result.name}: median {result.median_s * 1000:.3f}ms"
                     f" min {result.min_s * 1000:.3f}ms{speed}")
    return run
