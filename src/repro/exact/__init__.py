"""Exact optimum solvers for small instances (ground truth for ratios)."""

from .brute_force import opt_nonpreemptive_bruteforce, splittable_lp_for_slots
from .milp import opt_nonpreemptive, opt_preemptive, opt_splittable

__all__ = [
    "opt_nonpreemptive",
    "opt_splittable",
    "opt_preemptive",
    "opt_nonpreemptive_bruteforce",
    "splittable_lp_for_slots",
]
