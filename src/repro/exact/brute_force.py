"""Brute-force exact solvers for micro instances.

Branch-and-bound over job assignments; independent of the MILP backend so
the two exact paths can cross-validate each other in tests. Only intended
for instances with roughly ``n <= 10`` jobs.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.errors import InfeasibleInstanceError
from ..core.instance import Instance
from ..core.schedule import NonPreemptiveSchedule

__all__ = ["opt_nonpreemptive_bruteforce", "splittable_lp_for_slots"]


def opt_nonpreemptive_bruteforce(inst: Instance,
                                 return_schedule: bool = False
                                 ) -> int | tuple[int, NonPreemptiveSchedule]:
    """Exact non-preemptive optimum by DFS with pruning.

    Prunes on (a) partial makespan >= incumbent, (b) class-slot violations,
    (c) machine symmetry (a job may open at most the first empty machine).
    """
    inst = inst.normalized()
    n = inst.num_jobs
    m = min(inst.machines, n)
    c = inst.class_slots
    inst.require_feasible()
    p = inst.processing_times
    order = sorted(range(n), key=lambda j: -p[j])

    loads = [0] * m
    classes: list[set[int]] = [set() for _ in range(m)]
    best = sum(p) + 1
    best_assignment: list[int] | None = None
    assignment = [-1] * n

    def dfs(k: int, current_max: int) -> None:
        nonlocal best, best_assignment
        if current_max >= best:
            return
        if k == n:
            best = current_max
            best_assignment = assignment.copy()
            return
        j = order[k]
        u = inst.classes[j]
        seen_empty = False
        for i in range(m):
            if not loads[i]:
                if seen_empty:
                    continue  # symmetry: all empty machines equivalent
                seen_empty = True
            if u not in classes[i] and len(classes[i]) >= c:
                continue
            added = u not in classes[i]
            loads[i] += p[j]
            if added:
                classes[i].add(u)
            assignment[j] = i
            dfs(k + 1, max(current_max, loads[i]))
            assignment[j] = -1
            loads[i] -= p[j]
            if added:
                classes[i].discard(u)
        return

    dfs(0, 0)
    if best_assignment is None:
        raise InfeasibleInstanceError(inst.num_classes, inst.slot_budget())
    if not return_schedule:
        return best
    sched = NonPreemptiveSchedule(n, inst.machines)
    for j, i in enumerate(best_assignment):
        sched.assign(j, i)
    return best, sched


def splittable_lp_for_slots(class_loads: list[int],
                            slots: list[set[int]]) -> Fraction | None:
    """Given a fixed class->machine slot structure, the optimal splittable
    makespan is the solution of a tiny fluid balancing problem; we compute
    it exactly by binary search on the borders of the water-filling LP.

    ``slots[i]`` is the set of classes machine ``i`` may run. Returns the
    optimal makespan or ``None`` if some class has no slot. Used by tests
    to cross-check the splittable MILP on micro instances (the caller
    enumerates slot structures).
    """
    m = len(slots)
    C = len(class_loads)
    allowed = [sorted(s) for s in slots]
    hosts: list[list[int]] = [[] for _ in range(C)]
    for i, s in enumerate(slots):
        for u in s:
            hosts[u].append(i)
    for u in range(C):
        if class_loads[u] > 0 and not hosts[u]:
            return None

    # Feasibility of makespan T: max-flow from classes (supply P_u) to
    # machines (capacity T) along allowed edges. Gale's theorem on this
    # bipartite network: feasible iff for every subset S of classes,
    # sum_{u in S} P_u <= T * |N(S)|. We exploit the small C (tests use
    # C <= 4) and check all subsets, then take the max ratio.
    best = Fraction(0)
    for mask in range(1, 1 << C):
        total = 0
        nbrs: set[int] = set()
        for u in range(C):
            if mask >> u & 1:
                total += class_loads[u]
                nbrs.update(hosts[u])
        if not nbrs:
            if total > 0:
                return None
            continue
        ratio = Fraction(total, len(nbrs))
        if ratio > best:
            best = ratio
    return best
