"""Exact optimum values via mixed-integer programming (HiGHS through SciPy).

These solvers are ground truth for small instances — the approximation-ratio
experiments divide algorithm makespans by these optima. They are *not* part
of the paper's contribution; they exist so the reproduction can measure
ratios against true optima instead of lower bounds whenever instances are
small enough.

Formulations (identical machines, ``y[u,i]`` = class ``u`` occupies a slot
on machine ``i``):

* non-preemptive: assignment binaries ``z[j,i]``; classical makespan MILP
  plus ``z[j,i] <= y[c_j,i]`` and ``sum_u y[u,i] <= c``.
* splittable: per-class fluid ``x[u,i] >= 0`` (jobs of one class are
  interchangeable fluid when they may run in parallel), ``x <= P_u * y``.
* preemptive: per-job fluid ``x[j,i]`` with ``T >= pmax``. By the classical
  preemptive timetabling theorem (Lawler–Labetoulle / open-shop style BvN
  decomposition), a timetable with no job running in parallel with itself
  exists iff per-machine loads and per-job totals are at most ``T`` — so
  the MILP value equals the true preemptive optimum.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from ..core.errors import SolverError, UnsupportedInstanceError
from ..core.instance import Instance

__all__ = [
    "opt_nonpreemptive",
    "opt_splittable",
    "opt_preemptive",
]

_MAX_MACHINES = 64


def _check_size(inst: Instance, clamp_machines: bool = True) -> Instance:
    inst = inst.normalized()
    # provable infeasibility (C > c*m) surfaces as the uniform taxonomy
    # error before the backend ever runs, identical to every other solver
    inst.require_feasible()
    if clamp_machines and inst.machines > _MAX_MACHINES:
        # more machines than jobs never helps when a job cannot run in
        # parallel with itself (non-preemptive and preemptive regimes:
        # one machine per job is already optimal). NOT valid for the
        # splittable regime, where the optimum keeps shrinking as m
        # grows — found by the differential fuzzer, which caught the
        # clamped MILP reporting OPT=1 against a true 1/m.
        inst = inst.with_machines(min(inst.machines, max(inst.num_jobs, 1)))
    if inst.machines > _MAX_MACHINES:
        raise UnsupportedInstanceError(
            f"exact MILP limited to {_MAX_MACHINES} machines, got "
            f"{inst.machines}")
    return inst


def _solve(c_vec, constraints, integrality, bounds) -> np.ndarray:
    res = milp(c=c_vec, constraints=constraints, integrality=integrality,
               bounds=bounds)
    if res.status != 0 or res.x is None:
        raise SolverError(f"MILP failed: status={res.status} "
                          f"message={res.message!r}")
    return res.x


def opt_nonpreemptive(inst: Instance) -> int:
    """Exact non-preemptive optimum (integral)."""
    inst = _check_size(inst)
    n, m, C, c = (inst.num_jobs, inst.machines, inst.num_classes,
                  inst.class_slots)
    p = inst.processing_times
    # variables: z[j,i] (n*m), y[u,i] (C*m), T  -> total n*m + C*m + 1
    nz, ny = n * m, C * m
    nv = nz + ny + 1
    Tix = nv - 1

    def z(j, i):
        return j * m + i

    def y(u, i):
        return nz + u * m + i

    rows: list[tuple[dict[int, float], float, float]] = []
    for j in range(n):
        rows.append(({z(j, i): 1.0 for i in range(m)}, 1.0, 1.0))
    for i in range(m):
        coeffs = {z(j, i): float(p[j]) for j in range(n)}
        coeffs[Tix] = -1.0
        rows.append((coeffs, -np.inf, 0.0))
    for j in range(n):
        for i in range(m):
            rows.append(({z(j, i): 1.0, y(inst.classes[j], i): -1.0},
                         -np.inf, 0.0))
    for i in range(m):
        rows.append(({y(u, i): 1.0 for u in range(C)}, -np.inf, float(c)))

    A = lil_matrix((len(rows), nv))
    lo = np.empty(len(rows))
    hi = np.empty(len(rows))
    for r, (coeffs, lb, ub) in enumerate(rows):
        for k, v in coeffs.items():
            A[r, k] = v
        lo[r], hi[r] = lb, ub

    c_vec = np.zeros(nv)
    c_vec[Tix] = 1.0
    integrality = np.ones(nv)
    integrality[Tix] = 0
    lb_var = np.zeros(nv)
    ub_var = np.ones(nv)
    ub_var[Tix] = float(sum(p))
    lb_var[Tix] = float(max(p))
    x = _solve(c_vec, LinearConstraint(A.tocsr(), lo, hi), integrality,
               Bounds(lb_var, ub_var))
    return int(round(x[Tix]))


def opt_splittable(inst: Instance) -> float:
    """Exact splittable optimum (may be fractional)."""
    inst = _check_size(inst, clamp_machines=False)
    m, C, c = inst.machines, inst.num_classes, inst.class_slots
    P = inst.class_loads()
    nx, ny = C * m, C * m
    nv = nx + ny + 1
    Tix = nv - 1

    def x_(u, i):
        return u * m + i

    def y_(u, i):
        return nx + u * m + i

    rows: list[tuple[dict[int, float], float, float]] = []
    for u in range(C):
        rows.append(({x_(u, i): 1.0 for i in range(m)},
                     float(P[u]), float(P[u])))
    for i in range(m):
        coeffs = {x_(u, i): 1.0 for u in range(C)}
        coeffs[Tix] = -1.0
        rows.append((coeffs, -np.inf, 0.0))
    for u in range(C):
        for i in range(m):
            rows.append(({x_(u, i): 1.0, y_(u, i): -float(P[u])},
                         -np.inf, 0.0))
    for i in range(m):
        rows.append(({y_(u, i): 1.0 for u in range(C)}, -np.inf, float(c)))

    A = lil_matrix((len(rows), nv))
    lo = np.empty(len(rows))
    hi = np.empty(len(rows))
    for r, (coeffs, lb, ub) in enumerate(rows):
        for k, v in coeffs.items():
            A[r, k] = v
        lo[r], hi[r] = lb, ub

    c_vec = np.zeros(nv)
    c_vec[Tix] = 1.0
    integrality = np.zeros(nv)
    integrality[nx:nx + ny] = 1
    lb_var = np.zeros(nv)
    ub_var = np.full(nv, np.inf)
    ub_var[nx:nx + ny] = 1.0
    x = _solve(c_vec, LinearConstraint(A.tocsr(), lo, hi), integrality,
               Bounds(lb_var, ub_var))
    return float(x[Tix])


def opt_preemptive(inst: Instance) -> float:
    """Exact preemptive optimum (may be fractional)."""
    inst = _check_size(inst)
    n, m, C, c = (inst.num_jobs, inst.machines, inst.num_classes,
                  inst.class_slots)
    p = inst.processing_times
    nx, ny = n * m, C * m
    nv = nx + ny + 1
    Tix = nv - 1

    def x_(j, i):
        return j * m + i

    def y_(u, i):
        return nx + u * m + i

    rows: list[tuple[dict[int, float], float, float]] = []
    for j in range(n):
        rows.append(({x_(j, i): 1.0 for i in range(m)},
                     float(p[j]), float(p[j])))
    for i in range(m):
        coeffs = {x_(j, i): 1.0 for j in range(n)}
        coeffs[Tix] = -1.0
        rows.append((coeffs, -np.inf, 0.0))
    for j in range(n):
        for i in range(m):
            rows.append(({x_(j, i): 1.0, y_(inst.classes[j], i): -float(p[j])},
                         -np.inf, 0.0))
    for i in range(m):
        rows.append(({y_(u, i): 1.0 for u in range(C)}, -np.inf, float(c)))

    A = lil_matrix((len(rows), nv))
    lo = np.empty(len(rows))
    hi = np.empty(len(rows))
    for r, (coeffs, lb, ub) in enumerate(rows):
        for k, v in coeffs.items():
            A[r, k] = v
        lo[r], hi[r] = lb, ub

    c_vec = np.zeros(nv)
    c_vec[Tix] = 1.0
    integrality = np.zeros(nv)
    integrality[nx:nx + ny] = 1
    lb_var = np.zeros(nv)
    ub_var = np.full(nv, np.inf)
    ub_var[nx:nx + ny] = 1.0
    lb_var[Tix] = float(max(p))  # a job cannot run in parallel with itself
    x = _solve(c_vec, LinearConstraint(A.tocsr(), lo, hi), integrality,
               Bounds(lb_var, ub_var))
    return float(x[Tix])
