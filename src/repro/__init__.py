"""repro — Class Constrained Scheduling (CCS).

A production-quality reproduction of

    Klaus Jansen, Alexandra Lassota, Marten Maack:
    "Approximation Algorithms for Scheduling with Class Constraints",
    SPAA 2020 (arXiv:1909.11970).

Public API highlights
---------------------

* :class:`repro.Instance` — the problem input.
* :func:`repro.solve_splittable`, :func:`repro.solve_preemptive`,
  :func:`repro.solve_nonpreemptive` — the constant-factor approximation
  algorithms (ratios 2, 2 and 7/3; Theorems 4-6).
* :func:`repro.ptas_splittable`, :func:`repro.ptas_preemptive`,
  :func:`repro.ptas_nonpreemptive` — the (1+eps)-approximation schemes
  (Theorems 10/11, 19, 14).
* :mod:`repro.api` — the typed front door: :class:`repro.api.Session`
  (``solve`` / ``solve_batch`` / ``stream``) over three interchangeable
  backends (in-process, process-pool, remote ``/v1`` service), with
  :class:`repro.api.SolveRequest` / :class:`repro.api.BatchRequest`
  request objects and :class:`repro.api.SolverQuery` capability-based
  solver selection.
* :mod:`repro.registry` — the declarative solver registry: every
  algorithm (approximations, PTASes, exact solvers, baselines) registers
  once with its metadata; :func:`get_solver` / :func:`list_solvers`
  resolve by name, :func:`repro.registry.select_solver` by capability.
* :mod:`repro.engine` — the unified execution engine:
  :func:`repro.engine.run_batch` fans instances x algorithms out over a
  process pool with per-run timeouts and content-hash caching, returning
  one frozen :class:`repro.engine.SolveReport` per run.
* :mod:`repro.service` — scheduling-as-a-service: a persistent job
  queue + HTTP/JSON API over the engine (``repro serve``), with a
  SQLite store that survives restarts and doubles as a cross-client
  result cache, and :class:`repro.service.ServiceClient` to talk to it.
* :mod:`repro.exact` — exact optima for small instances (ground truth).
* :mod:`repro.workloads` — synthetic workload generators and suites.
* :mod:`repro.nfold` — the N-fold integer programming substrate.

Quickstart
----------

>>> from repro import Instance, solve_nonpreemptive
>>> inst = Instance.create([5, 3, 8, 6], classes=["a", "a", "b", "c"],
...                        machines=2, class_slots=2)
>>> result = solve_nonpreemptive(inst)
>>> result.makespan <= (7 / 3) * result.guess
True

Or through the typed facade, at batch scale:

>>> from repro import Session
>>> s = Session()                       # in-process; or Session("http://...")
>>> [r.status for r in s.solve_batch([inst],
...                                  algorithms=["splittable", "lpt"])]
['ok', 'ok']
"""

from .api import (BatchRequest, Session, SolveRequest, SolverQuery)
from .approx import (NonPreemptiveResult, PreemptiveResult, SplittableResult,
                     solve_nonpreemptive, solve_preemptive, solve_splittable)
from .core import (CCSError, InfeasibleInstanceError, InfeasibleScheduleError,
                   Instance, InvalidInstanceError, NonPreemptiveSchedule,
                   PreemptiveSchedule, SplittableSchedule,
                   UnsupportedInstanceError, validate,
                   validate_nonpreemptive, validate_preemptive,
                   validate_splittable)
from .engine import ReportCache, SolveReport, run_batch
from .registry import SolverSpec, get_solver, list_solvers

__version__ = "1.1.0"

__all__ = [
    "Instance",
    "solve_splittable",
    "solve_preemptive",
    "solve_nonpreemptive",
    "SplittableResult",
    "PreemptiveResult",
    "NonPreemptiveResult",
    "SplittableSchedule",
    "PreemptiveSchedule",
    "NonPreemptiveSchedule",
    "validate",
    "validate_splittable",
    "validate_preemptive",
    "validate_nonpreemptive",
    "CCSError",
    "InvalidInstanceError",
    "InfeasibleInstanceError",
    "InfeasibleScheduleError",
    "UnsupportedInstanceError",
    "SolverSpec",
    "get_solver",
    "list_solvers",
    "Session",
    "SolveRequest",
    "BatchRequest",
    "SolverQuery",
    "run_batch",
    "SolveReport",
    "ReportCache",
    "__version__",
]

# PTAS entry points are imported lazily to keep base import light; they pull
# in the MILP backend.


def ptas_splittable(*args, **kwargs):
    """(1+eps)-approximation for the splittable regime (Theorems 10/11)."""
    from .ptas.splittable import ptas_splittable as _impl
    return _impl(*args, **kwargs)


def ptas_nonpreemptive(*args, **kwargs):
    """(1+eps)-approximation for the non-preemptive regime (Theorem 14)."""
    from .ptas.nonpreemptive import ptas_nonpreemptive as _impl
    return _impl(*args, **kwargs)


def ptas_preemptive(*args, **kwargs):
    """(1+eps)-approximation for the preemptive regime (Theorem 19)."""
    from .ptas.preemptive import ptas_preemptive as _impl
    return _impl(*args, **kwargs)


__all__ += ["ptas_splittable", "ptas_nonpreemptive", "ptas_preemptive"]
