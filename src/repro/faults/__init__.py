"""Deterministic fault injection and chaos campaigns.

:mod:`repro.faults.injection` is the seeded site registry the engine,
store and queue consult (activated via ``REPRO_FAULTS`` /
``REPRO_FAULTS_SEED`` or :func:`~repro.faults.injection.configure`);
:mod:`repro.faults.chaos` runs whole job campaigns under a plan and
asserts the crash-safe lifecycle invariants (``repro chaos``).
"""

from .injection import (FaultInjected, FaultPlan, FaultRule, KNOWN_SITES,
                        active_plan, configure, disabled, maybe_kill_worker,
                        maybe_raise, parse_plan, reset, should_fire)

__all__ = ["FaultInjected", "FaultPlan", "FaultRule", "KNOWN_SITES",
           "active_plan", "configure", "disabled", "maybe_kill_worker",
           "maybe_raise", "parse_plan", "reset", "should_fire"]
