"""Chaos campaigns: prove the crash-safe job lifecycle under faults.

:func:`run_chaos` drives a real :class:`~repro.service.SchedulingService`
(or a remote one via ``--url``) through a seeded campaign of jobs while
the :mod:`repro.faults.injection` registry kills pool workers, breaks
shm attaches, fails store commits and murders drainer threads — then
asserts the two lifecycle invariants the whole subsystem exists for:

1. **No job is ever stuck.** Every submitted job reaches a terminal
   status (``done`` / ``failed`` / ``quarantined``) before the deadline,
   and no row is left ``running`` once the campaign settles.
2. **Retries change nothing.** Every job that completes ``done`` has
   reports byte-identical (modulo wall time, trace ids and the cache
   flag) to a fault-free run of the same instance x algorithms grid —
   crashing halfway through a solve and retrying must never change an
   exact :class:`fractions.Fraction` result.

``repro chaos`` is the CLI wrapper; CI runs it with a pinned seed
against a live ``repro serve`` under worker-kill + shm-attach +
drainer-loop faults.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..engine.runner import execute
from ..service.store import TERMINAL_STATUSES
from ..workloads.generators import uniform_instance
from . import injection

__all__ = ["ChaosResult", "DEFAULT_FAULTS", "CHAOS_ALGOS",
           "campaign_instances", "canonical_report", "run_chaos"]

#: The fault plan ``repro chaos`` applies when none is given: every
#: injection layer the lifecycle defends against, each well above the
#: acceptance floor of 5%.
DEFAULT_FAULTS = ("worker_kill:0.08,shm_attach:0.06,"
                  "store_commit:0.08,drainer_loop:0.05")

#: The algorithm grid each chaos job runs — fast solvers across the
#: three variants plus a list heuristic, so retried jobs exercise exact
#: Fraction results without MILP dependencies.
CHAOS_ALGOS = ("splittable", "preemptive", "nonpreemptive", "lpt")


def campaign_instances(seed: int, count: int):
    """The campaign's deterministic ``(label, Instance)`` list: small
    uniform instances — cheap to solve, so faults dominate wall time."""
    out = []
    for k in range(count):
        rng = np.random.default_rng([int(seed), k])
        out.append((f"chaos-{k}", uniform_instance(rng, 12, 3, 3, 2)))
    return out


def canonical_report(rep) -> dict:
    """A report's dict with the fields that legitimately differ between
    a clean run and a retried one stripped: wall time, the trace id, and
    ``cached`` (a retry may be served from the result cache a previous
    attempt filled). Everything else — makespans, exact fractions,
    statuses, certificates — must match byte for byte."""
    d = rep.to_dict()
    d.pop("wall_time_s", None)
    d.pop("cached", None)
    extra = d.get("extra")
    if isinstance(extra, dict):
        extra = dict(extra)
        extra.pop("trace_id", None)
        d["extra"] = extra
    return d


@dataclass
class ChaosResult:
    """Outcome of one chaos campaign."""

    jobs: int
    counts: dict = field(default_factory=dict)
    stuck: list = field(default_factory=list)         # labels, non-terminal
    mismatched: list = field(default_factory=list)    # labels, wrong reports
    quarantined: list = field(default_factory=list)
    failed: list = field(default_factory=list)
    retries: int = 0
    reclaims: int = 0
    rebuilds: int = 0
    faults: str = ""
    seed: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """The lifecycle invariants: nothing stuck, nothing corrupted.
        Quarantined/failed jobs are *expected* under heavy fault rates —
        what is never acceptable is a hung job or a wrong report."""
        return not self.stuck and not self.mismatched \
            and not self.counts.get("running")

    def to_dict(self) -> dict:
        return {"ok": self.ok, "jobs": self.jobs, "counts": self.counts,
                "stuck": self.stuck, "mismatched": self.mismatched,
                "quarantined": self.quarantined, "failed": self.failed,
                "retries": self.retries, "reclaims": self.reclaims,
                "rebuilds": self.rebuilds, "faults": self.faults,
                "seed": self.seed, "elapsed_s": round(self.elapsed_s, 3)}


def _expected_reports(instances) -> dict[str, list[dict]]:
    """Fault-free canonical reports per label, computed inline on this
    thread under :func:`injection.disabled` — the service keeps faulting
    on its own threads while we build the ground truth."""
    expected: dict[str, list[dict]] = {}
    with injection.disabled():
        for label, inst in instances:
            expected[label] = [
                canonical_report(execute(inst, name, label=label))
                for name in CHAOS_ALGOS]
    return expected


def _spawn_worker(store_url: str, k: int, *, lease_seconds: float,
                  engine_workers: int) -> subprocess.Popen:
    """Launch one external ``repro worker`` process against the shared
    store. It inherits this process's environment, including the
    ``REPRO_FAULTS`` plan already exported there."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--store", store_url,
         "--workers", "2", "--name", f"chaos-worker-{k}",
         "--engine-workers", str(engine_workers),
         "--lease-seconds", str(lease_seconds), "--quiet"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def _worker_killer(svc, workers: list[subprocess.Popen], jobs: int,
                   say) -> None:
    """The worker_kill leg of an external-workers campaign: once the
    fleet has made real progress, SIGKILL one worker process outright —
    no drain, no lease release. The server's supervisor must reclaim its
    orphaned leases and the surviving workers must finish the campaign."""
    deadline = time.monotonic() + 30.0
    threshold = max(1, jobs // 5)
    while time.monotonic() < deadline:
        counts = svc.store.counts()
        terminal = sum(counts.get(s, 0) for s in TERMINAL_STATUSES)
        if terminal >= threshold:
            break
        time.sleep(0.2)
    victim = workers[0]
    if victim.poll() is None:
        os.kill(victim.pid, signal.SIGKILL)
        say(f"worker_kill leg: SIGKILLed external worker pid {victim.pid}")


def run_chaos(seed: int = 7, jobs: int = 50,
              faults: str = DEFAULT_FAULTS, *,
              url: str | None = None, drainers: int = 2,
              engine_workers: int = 2, lease_seconds: float = 2.0,
              max_attempts: int = 5, deadline: float = 180.0,
              db_path: str | None = None,
              store_url: str | None = None,
              external_workers: int = 0,
              progress: Callable[[str], None] | None = None) -> ChaosResult:
    """Run a chaos campaign; see the module docstring for the invariants.

    Local mode (no ``url``) boots a private :class:`SchedulingService`
    on an ephemeral port with the fault plan in the environment — so
    forked pool workers inherit it — and reads final job states straight
    from its store. ``store_url`` picks the storage backend (default: a
    temporary SQLite file). ``external_workers > 0`` runs the server
    accept-only and drains through that many separate ``repro worker``
    processes sharing the store; with at least two of them the campaign
    adds a *worker_kill leg* — one worker process is SIGKILLed once the
    fleet has made progress, and the verdict must still come out clean
    (the server reclaims its leases, the survivors finish the work).
    Remote mode submits against ``url`` and trusts the server's own
    fault plan (set ``REPRO_FAULTS`` in its environment).
    """
    from ..service.client import ServiceClient

    say = progress or (lambda msg: None)
    instances = campaign_instances(seed, jobs)
    say(f"computing fault-free baseline for {jobs} jobs")
    expected = _expected_reports(instances)
    t0 = time.monotonic()
    if url is not None:
        client = ServiceClient(url)
        return _drive(client, None, instances, expected, deadline,
                      faults, seed, t0, say)

    from ..engine.pool import shutdown_pool
    from ..service.server import SchedulingService
    from ..service.queue import JOB_RETRIES, LEASE_RECLAIMS
    from ..engine.pool import _POOL_REBUILDS

    if external_workers and store_url is not None \
            and store_url.startswith("memory"):
        raise ValueError(
            "memory:// stores live in one process and cannot be drained "
            "by external workers; use a sqlite:// store_url")

    saved = {k: os.environ.get(k)
             for k in ("REPRO_FAULTS", "REPRO_FAULTS_SEED")}
    os.environ["REPRO_FAULTS"] = faults
    os.environ["REPRO_FAULTS_SEED"] = str(seed)
    injection.reset()
    # the pool (if any) predates the fault env: its workers were forked
    # without the plan. Rebuild so workers inherit it.
    shutdown_pool(wait=False, cancel_futures=True)
    retries0 = JOB_RETRIES.value(reason="error") \
        + JOB_RETRIES.value(reason="reclaim")
    reclaims0 = LEASE_RECLAIMS.value()
    rebuilds0 = _POOL_REBUILDS.value()

    tmp = None
    if store_url is None:
        if db_path is None:
            fd, tmp = tempfile.mkstemp(prefix="repro-chaos-", suffix=".db")
            os.close(fd)
            db_path = tmp
        store_url = "sqlite:///" + os.path.abspath(db_path)
    svc = None
    workers: list[subprocess.Popen] = []
    try:
        svc = SchedulingService(store_url, port=0, drainers=drainers,
                                engine_workers=engine_workers,
                                lease_seconds=lease_seconds,
                                max_attempts=max_attempts,
                                embedded_workers=not external_workers,
                                quiet=True)
        svc.start()
        say(f"service up at {svc.url} under faults {faults!r} "
            f"(store {svc.store.url})")
        if external_workers:
            workers = [_spawn_worker(store_url, k,
                                     lease_seconds=lease_seconds,
                                     engine_workers=engine_workers)
                       for k in range(external_workers)]
            say(f"spawned {external_workers} external worker process(es)")
            if external_workers >= 2:
                threading.Thread(
                    target=_worker_killer, args=(svc, workers, jobs, say),
                    daemon=True, name="repro-chaos-killer").start()
        result = _drive(ServiceClient(svc.url), svc, instances, expected,
                        deadline, faults, seed, t0, say)
        result.retries = int(JOB_RETRIES.value(reason="error")
                             + JOB_RETRIES.value(reason="reclaim")
                             - retries0)
        result.reclaims = int(LEASE_RECLAIMS.value() - reclaims0)
        result.rebuilds = int(_POOL_REBUILDS.value() - rebuilds0)
        return result
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        if svc is not None:
            # disable faults before shutdown so the drain cannot be
            # re-broken by store_commit faults on its way out
            injection.configure("", seed=0)
            svc.shutdown(drain_grace=10.0)
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
        injection.reset()
        shutdown_pool(wait=False, cancel_futures=True)
        if tmp is not None:
            # the store file plus its WAL/shm sidecars and cache shards
            for path in glob.glob(tmp + "*"):
                try:
                    os.unlink(path)
                except OSError:
                    pass


def _drive(client, svc, instances, expected, deadline, faults, seed,
           t0, say) -> ChaosResult:
    """Submit every job, poll to terminal states, check the invariants."""
    with injection.disabled():      # client-side code must not fault
        ids: dict[str, str] = {}
        for label, inst in instances:
            job = client.submit(inst, list(CHAOS_ALGOS), label=label)
            ids[job["id"]] = label

        states: dict[str, dict] = {}
        stop_at = time.monotonic() + deadline
        pending = set(ids)
        while pending and time.monotonic() < stop_at:
            for job_id in list(pending):
                job = client.job(job_id)
                if job["status"] in TERMINAL_STATUSES:
                    states[job_id] = job
                    pending.discard(job_id)
            if pending:
                time.sleep(0.2)
            done_n = len(states)
            if done_n and done_n % 10 == 0:
                say(f"{done_n}/{len(ids)} jobs terminal")

        result = ChaosResult(jobs=len(ids), faults=faults, seed=seed)
        for job_id in pending:
            job = client.job(job_id)
            result.stuck.append(
                f"{ids[job_id]} ({job['status']} at deadline)")
        for job_id, job in states.items():
            label = ids[job_id]
            if job["status"] == "quarantined":
                result.quarantined.append(label)
                continue
            if job["status"] == "failed":
                result.failed.append(label)
                continue
            got = [canonical_report(rep)
                   for rep in client.reports(job_id)]
            if got != expected[label]:
                result.mismatched.append(label)

        if svc is not None:
            result.counts = svc.store.counts()
        else:
            counts: dict[str, int] = {}
            for job_id in ids:
                status = (states.get(job_id)
                          or client.job(job_id))["status"]
                counts[status] = counts.get(status, 0) + 1
            result.counts = counts
        result.elapsed_s = time.monotonic() - t0
        return result
