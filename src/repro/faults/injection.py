"""Deterministic, seeded fault injection for the crash-safety harness.

A *fault plan* maps site names to firing rates (plus an optional numeric
argument), spelled ``site:rate[:arg]`` and comma-joined::

    REPRO_FAULTS="worker_kill:0.1,shm_attach:0.05,store_commit:0.1"
    REPRO_FAULTS_SEED=7

The environment is read lazily and re-checked on change, so pool workers
forked after ``os.environ`` was set inherit the plan, and a test can
install one around a single campaign. :func:`configure` installs a plan
programmatically (overriding the environment) and returns the previous
one so callers can restore it.

Determinism: every site draws from its own counter-indexed stream —
draw ``n`` at site ``s`` under seed ``k`` hashes ``"k:s:n"`` into a
fresh ``random.Random``, so a single-threaded consumer (the fuzz faults
oracle) sees the exact same fault sequence on every run. Child
processes (pool workers) additionally mix their pid into the key:
forked workers all start their counters at zero, and without the pid a
``worker_kill`` plan would fire identically in *every* worker on the
same draw — each retry would re-kill the whole pool forever.

The registry has no dependencies beyond :mod:`repro.obs.metrics`, so
any layer (engine, store, backend probes) can host a site without
import cycles. With no plan installed and no environment variable set,
:func:`should_fire` is a few attribute reads — cold paths stay cold.

Sites currently wired in:

======================  =================================================
``worker_kill``         pool worker ``os._exit(17)`` at chunk entry
``shm_attach``          raise in :func:`repro.engine.shm._attach`
``store_commit``        raise in :meth:`JobStore.finish_job`
``drainer_loop``        raise in the drainer after claiming (thread dies)
``solve_delay``         sleep ``arg`` seconds inside the timed solve
``milp_probe``          HiGHS/scipy backend probe reports unavailable
``native_probe``        compiled kernel core probe reports unavailable
======================  =================================================
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass

from ..obs.metrics import REGISTRY

__all__ = ["FaultInjected", "FaultRule", "FaultPlan", "KNOWN_SITES",
           "parse_plan", "configure", "reset", "active_plan",
           "should_fire", "maybe_raise", "maybe_kill_worker", "disabled"]

KNOWN_SITES = frozenset({
    "worker_kill", "shm_attach", "store_commit", "drainer_loop",
    "solve_delay", "milp_probe", "native_probe",
})

FAULTS_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total",
    "Faults fired by the injection registry, by site.",
    labelnames=("site",))


class FaultInjected(RuntimeError):
    """Raised when an injection site fires. Deliberately a
    ``RuntimeError`` (and picklable) so it crosses the process-pool
    boundary and lands in the queue's *retryable* failure class."""

    def __init__(self, site: str) -> None:
        super().__init__(f"fault injected at site {site!r}")
        self.site = site

    def __reduce__(self):
        return (FaultInjected, (self.site,))


@dataclass(frozen=True)
class FaultRule:
    """One site's firing rate, plus an optional site-specific argument
    (``solve_delay`` reads it as seconds to sleep)."""

    site: str
    rate: float
    arg: float | None = None


class FaultPlan:
    """A parsed plan: per-site rules, a seed, and per-site draw counters."""

    def __init__(self, rules, seed: int = 0) -> None:
        self.rules: dict[str, FaultRule] = {r.site: r for r in rules}
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}

    def spec(self) -> str:
        """The ``site:rate[:arg]`` spelling (round-trips through
        :func:`parse_plan`)."""
        return ",".join(
            f"{r.site}:{r.rate:g}" + (f":{r.arg:g}" if r.arg is not None
                                      else "")
            for r in self.rules.values())

    def draw(self, site: str) -> FaultRule | None:
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._lock:
            n = self._counters.get(site, 0)
            self._counters[site] = n + 1
        if rule.rate >= 1.0:
            return rule
        if rule.rate <= 0.0:
            return None
        key = f"{self.seed}:{site}:{n}"
        if multiprocessing.parent_process() is not None:
            # decorrelate forked pool workers (their counters all restart
            # at zero); parent-side draws stay fully deterministic
            key += f":{os.getpid()}"
        return rule if random.Random(key).random() < rule.rate else None


def parse_plan(spec: str, seed: int = 0) -> FaultPlan:
    """Parse ``"site:rate[:arg],..."`` into a :class:`FaultPlan`."""
    rules = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) not in (2, 3):
            raise ValueError(
                f"bad fault spec {part!r}; expected 'site:rate[:arg]'")
        site = pieces[0].strip()
        if site not in KNOWN_SITES:
            raise ValueError(f"unknown fault site {site!r}; one of: "
                             f"{', '.join(sorted(KNOWN_SITES))}")
        try:
            rate = float(pieces[1])
        except ValueError:
            raise ValueError(f"bad fault rate in {part!r}") from None
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate:g}")
        arg = None
        if len(pieces) == 3:
            try:
                arg = float(pieces[2])
            except ValueError:
                raise ValueError(f"bad fault arg in {part!r}") from None
        rules.append(FaultRule(site, rate, arg))
    return FaultPlan(rules, seed)


_lock = threading.Lock()
_configured = False                     # a programmatic plan is installed
_plan: FaultPlan | None = None
_env_spec: str | None = None            # last REPRO_FAULTS value parsed
_suppress = threading.local()


def configure(plan: FaultPlan | str | None,
              seed: int = 0) -> FaultPlan | None:
    """Install ``plan`` process-wide (a spec string, a :class:`FaultPlan`,
    or ``None`` to hand control back to the environment). Returns the
    previously configured plan — ``None`` when the environment was in
    charge — so callers can restore it in a ``finally``."""
    global _configured, _plan, _env_spec
    with _lock:
        prev = _plan if _configured else None
        if plan is None:
            _configured, _plan, _env_spec = False, None, None
        else:
            if isinstance(plan, str):
                plan = parse_plan(plan, seed)
            _configured, _plan = True, plan
        return prev


def reset() -> None:
    """Drop any installed plan and force an environment re-read (with
    fresh draw counters) on the next site check."""
    configure(None)


def active_plan() -> FaultPlan | None:
    """The plan sites draw from right now, resolving the environment."""
    global _plan, _env_spec
    with _lock:
        if _configured:
            return _plan
        spec = os.environ.get("REPRO_FAULTS") or None
        if spec != _env_spec:
            _env_spec = spec
            _plan = None
            if spec:
                seed = int(os.environ.get("REPRO_FAULTS_SEED", "0") or 0)
                _plan = parse_plan(spec, seed)
        return _plan


@contextmanager
def disabled():
    """No faults fire on *this thread* inside the block, regardless of
    plan or environment — chaos and the fuzz faults oracle compute their
    fault-free expected reports under it while the injected service
    keeps faulting on its own threads."""
    prev = getattr(_suppress, "on", False)
    _suppress.on = True
    try:
        yield
    finally:
        _suppress.on = prev


def should_fire(site: str) -> FaultRule | None:
    """The rule for ``site`` when its deterministic draw fires, else
    ``None``. Near-zero cost when no plan is installed or configured."""
    if _plan is None and not _configured \
            and "REPRO_FAULTS" not in os.environ:
        return None
    if getattr(_suppress, "on", False):
        return None
    plan = active_plan()
    if plan is None:
        return None
    rule = plan.draw(site)
    if rule is not None:
        FAULTS_INJECTED.inc(site=site)
    return rule


def maybe_raise(site: str) -> None:
    """Raise :class:`FaultInjected` when ``site`` fires."""
    if should_fire(site) is not None:
        raise FaultInjected(site)


def maybe_kill_worker() -> None:
    """Fire ``worker_kill``: hard-exit the process — but only ever inside
    a pool worker (a child process); the parent is never killed."""
    if multiprocessing.parent_process() is None:
        return
    if should_fire("worker_kill") is not None:
        os._exit(17)
