"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Subcommands::

    list     show every registered algorithm with its metadata
    solve    run one algorithm on a JSON instance (named via --algorithm,
             capability-selected via --auto, in-process or --remote),
             print/emit the schedule
    batch    run many instances x many algorithms through the parallel
             execution engine, emit a JSON or CSV report
    compare  run several algorithms on one instance, print a table
    bounds   print the certified lower/upper bounds for an instance
    generate emit a synthetic instance as JSON
    serve    run the persistent scheduling service (HTTP/JSON API)
    submit   send instances to a running service, optionally wait
    bench    run a named perf suite, write BENCH_results.json, optionally
             gate against a committed baseline
    fuzz     seeded differential fuzzing: adversarial instances through
             the cross-solver/fast-path/metamorphic oracles, minimised
             counterexamples written in the tests/corpus format
    metrics  print the Prometheus metrics registry (the in-process one,
             or a running service's via --url)

Examples::

    python -m repro generate --kind uniform --n 40 --classes 8 \
        --machines 4 --slots 2 --seed 7 -o inst.json
    python -m repro solve inst.json --algorithm nonpreemptive
    python -m repro solve inst.json --auto variant=nonpreemptive,no_milp
    python -m repro solve inst.json --remote http://127.0.0.1:8080
    python -m repro list --variant splittable
    python -m repro batch a.json b.json \
        --algorithms splittable,nonpreemptive,lpt --workers 4 -o report.json
    python -m repro compare inst.json --algorithms splittable,ffd,greedy
    python -m repro serve --port 8080 --db jobs.db --drainers 4
    python -m repro submit inst.json --url http://127.0.0.1:8080 \
        --algorithms splittable,lpt --wait
    python -m repro fuzz --seed 7 --count 200 --workers 2

Every run dispatches through the :class:`repro.api.Session` facade, so
the CLI, the examples, the benchmarks and the service execute work
identically; ``--remote`` swaps the in-process backend for a ``/v1``
service without changing anything else. Algorithms resolve through
:mod:`repro.registry` (by name, or by capability via ``--auto``);
adding a solver there makes it available to every subcommand with no
CLI changes.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .analysis.reporting import format_table, render_reports, reports_to_csv
from .api import Session, SolveRequest, SolverQuery
from .core.bounds import (area_bound, nonpreemptive_lower_bound, pmax_bound,
                          preemptive_lower_bound, splittable_lower_bound,
                          trivial_upper_bound)
from .core.errors import InvalidInstanceError
from .core.instance import Instance
from .engine import DEFAULT_WORKERS, ReportCache
from .io import dump_instance, instance_to_dict, load_instance
from .registry import (NoMatchingSolverError, UnknownSolverError, get_solver,
                       list_solvers)
from .workloads import (data_placement_instance, uniform_instance,
                        video_on_demand_instance, zipf_instance)


def _load_instance_checked(path: str) -> Instance:
    """Load an instance JSON or exit with a message instead of a traceback."""
    try:
        return load_instance(path)
    except FileNotFoundError:
        raise SystemExit(f"error: instance file not found: {path}")
    except IsADirectoryError:
        raise SystemExit(f"error: {path} is a directory, not an instance file")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    except KeyError as exc:
        raise SystemExit(
            f"error: {path} is missing required instance field {exc}")
    except (InvalidInstanceError, TypeError, ValueError) as exc:
        raise SystemExit(f"error: {path} is not a valid instance: {exc}")


def _resolve_algorithms(names: str, delta: int | None
                        ) -> list[tuple[str, dict]]:
    """Split a comma list, resolve each name, attach accepted kwargs."""
    algos: list[tuple[str, dict]] = []
    for name in (s.strip() for s in names.split(",")):
        if not name:
            continue
        try:
            spec = get_solver(name)
        except UnknownSolverError as exc:
            # KeyError subclass: str() would wrap the message in quotes
            raise SystemExit(f"error: {exc.args[0]}")
        kwargs = {}
        if delta is not None and "delta" in spec.accepts:
            kwargs["delta"] = delta
        algos.append((spec.name, kwargs))
    if not algos:
        raise SystemExit("error: no algorithms given")
    return algos


# --------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------- #

def _cmd_list(args: argparse.Namespace) -> int:
    specs = list_solvers(variant=args.variant, kind=args.kind)

    def _thm1(s) -> str:
        # Theorem-1 running-time scale of the n-fold program each
        # nfold-* solver builds at the reference large-m shape
        if not s.needs_nfold:
            return "-"
        from .nfold.registry_solvers import reference_theorem1_bound
        return f"1e{reference_theorem1_bound(s.variant):.0f}"

    rows = [[s.name, s.variant, s.kind, s.ratio_label, s.theorem or "-",
             "yes" if s.needs_milp else "no", _thm1(s),
             ",".join(s.accepts) or "-",
             str(s.default_epsilon) if s.default_epsilon is not None
             else "-", s.summary]
            for s in specs]
    print(format_table(["name", "variant", "kind", "ratio", "theorem",
                        "milp", "thm1", "kwargs", "default eps", "summary"],
                       rows, title=f"{len(rows)} registered solver(s)"))
    return 0


def _session_for(args: argparse.Namespace, *,
                 default_workers: int = 0, cache=None) -> Session:
    """The Session a subcommand dispatches through: a ``/v1`` service
    when ``--remote`` is given, the in-process engine otherwise.

    Local-only flags must not be silently discarded on the remote path."""
    if getattr(args, "remote", None):
        if getattr(args, "cache_dir", None):
            raise SystemExit(
                "error: --cache-dir cannot be combined with --remote; "
                "the service owns its own result cache")
        if getattr(args, "workers", None) is not None:
            raise SystemExit(
                "error: --workers has no effect with --remote; the "
                "service's --engine-workers controls its fan-out")
        return Session(args.remote)
    workers = getattr(args, "workers", None)
    return Session(workers=default_workers if workers is None else workers,
                   cache=cache)


def _dispatch(run):
    """Run a Session call, turning user-input and remote failures into
    the CLI's ``error:`` + exit-1 contract instead of tracebacks."""
    try:
        return run()
    except (NoMatchingSolverError, ValueError) as exc:
        raise SystemExit(f"error: {exc}")
    except Exception as exc:
        from .service.client import ServiceError
        if isinstance(exc, (ServiceError, OSError, TimeoutError)):
            raise SystemExit(f"error: {exc}")
        raise


def _build_solve_request(args: argparse.Namespace,
                         inst: Instance) -> SolveRequest:
    query = None
    if args.auto:
        if args.algorithm is not None:
            raise SystemExit(
                "error: --algorithm and --auto are mutually exclusive")
        try:
            query = SolverQuery.parse(args.auto)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
        algorithm, kwargs = None, {}
    else:
        try:
            spec = get_solver(args.algorithm or "nonpreemptive")
        except UnknownSolverError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
        algorithm = spec.name
        kwargs = {"delta": args.delta} if "delta" in spec.accepts else {}
    try:
        return SolveRequest(inst, algorithm=algorithm, query=query,
                            kwargs=kwargs, label=args.instance,
                            timeout=args.timeout,
                            want_schedule=bool(args.output or args.emit))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _cmd_solve(args: argparse.Namespace) -> int:
    inst = _load_instance_checked(args.instance)
    request = _build_solve_request(args, inst)
    report = _dispatch(lambda: _session_for(args).solve(request))
    if not report.ok:
        raise SystemExit(
            f"error: {report.algorithm} finished {report.status}"
            f"{': ' + report.error if report.error else ''}")
    print(f"algorithm : {report.algorithm}", file=sys.stderr)
    print(f"makespan  : {float(report.makespan):.6g}", file=sys.stderr)
    if report.guess is not None:
        print(f"guess T   : {float(report.guess):.6g}", file=sys.stderr)
        print(f"certified : makespan/guess = "
              f"{report.certified_ratio:.4f}", file=sys.stderr)
    if args.output or args.emit:
        sched = report.extra.get("schedule")
        if sched is None:
            raise SystemExit(
                f"error: {report.algorithm} computes only the optimum "
                "value; it has no schedule to emit")
        if args.output:
            with open(args.output, "w") as fh:
                json.dump(sched, fh, indent=2)
            print(f"schedule written to {args.output}", file=sys.stderr)
        else:
            json.dump(sched, sys.stdout, indent=2)
            print()
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    instances = [(path, _load_instance_checked(path))
                 for path in args.instances]
    algos = _resolve_algorithms(args.algorithms, args.delta)
    cache = (ReportCache(args.cache_dir)
             if args.cache_dir and not args.remote else None)
    session = _session_for(args, default_workers=DEFAULT_WORKERS,
                           cache=cache)
    reports = _dispatch(lambda: session.solve_batch(
        instances, algorithms=algos, timeout=args.timeout))
    if args.format == "csv":
        payload = reports_to_csv(reports)
    else:
        payload = json.dumps({"reports": [r.to_dict() for r in reports]},
                             indent=2) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(payload)
        print(f"{len(reports)} report(s) written to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(payload)
    print(render_reports(reports), file=sys.stderr)
    failed = [r for r in reports if r.status == "error"]
    return 1 if failed else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    inst = _load_instance_checked(args.instance)
    algos = _resolve_algorithms(args.algorithms, args.delta)
    reports = _dispatch(lambda: _session_for(args).solve_batch(
        [(args.instance, inst)], algorithms=algos, timeout=args.timeout))
    ok = [r for r in reports if r.ok and r.makespan is not None]
    best = min((float(r.makespan) for r in ok), default=None)
    print(render_reports(reports, title=f"compare on {args.instance}"))
    if best is not None:
        winners = ", ".join(r.algorithm for r in ok
                            if float(r.makespan) == best)
        print(f"best makespan {best:.6g} by: {winners}")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    inst = _load_instance_checked(args.instance)
    print(f"area            : {float(area_bound(inst)):.6g}")
    print(f"pmax            : {pmax_bound(inst)}")
    print(f"splittable LB   : {float(splittable_lower_bound(inst)):.6g}")
    print(f"preemptive LB   : {float(preemptive_lower_bound(inst)):.6g}")
    print(f"non-preempt LB  : {nonpreemptive_lower_bound(inst)}")
    print(f"trivial UB      : {float(trivial_upper_bound(inst)):.6g}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve
    try:
        serve(args.store or args.db, host=args.host, port=args.port,
              drainers=args.drainers,
              engine_workers=args.engine_workers,
              default_timeout=args.timeout,
              lease_seconds=args.lease_seconds or None,
              max_attempts=args.max_attempts,
              drain_grace=args.drain_grace,
              embedded_workers=not args.no_embedded_workers,
              cache_shards=args.cache_shards,
              quiet=args.quiet,
              log_level=args.log_level)
    except ValueError as exc:        # bad --store URL, bad shard count
        raise SystemExit(f"error: {exc}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .service import run_worker
    try:
        run_worker(args.store, workers=args.workers,
                   engine_workers=args.engine_workers,
                   name=args.name,
                   lease_seconds=args.lease_seconds or None,
                   default_timeout=args.timeout,
                   poll_interval=args.poll_interval,
                   drain_grace=args.drain_grace,
                   quiet=args.quiet, log_level=args.log_level)
    except ValueError as exc:        # bad --store URL
        raise SystemExit(f"error: {exc}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError
    status = "quarantined" if args.quarantined else args.status
    client = ServiceClient(args.url)
    try:
        page = client.jobs_page(status=status, limit=args.limit)
    except (ServiceError, TimeoutError, OSError) as exc:
        raise SystemExit(f"error: {exc}")
    rows = []
    for job in page["jobs"]:
        error = job.get("error", "")
        if len(error) > 60:
            error = error[:57] + "..."
        rows.append([job["id"][:12], job["status"],
                     f"{job.get('attempts', 0)}/"
                     f"{job.get('max_attempts', '-')}",
                     job.get("label", ""), error])
    title = f"jobs ({status})" if status else "jobs"
    print(format_table(["id", "status", "attempts", "label", "error"],
                       rows, title=title))
    shown = len(rows)
    total = page.get("total", shown)
    if total > shown:
        print(f"(showing {shown} of {total}; use --limit)",
              file=sys.stderr)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults.chaos import DEFAULT_FAULTS, run_chaos
    try:
        result = run_chaos(seed=args.seed, jobs=args.jobs,
                           faults=args.faults or DEFAULT_FAULTS,
                           url=args.url, drainers=args.drainers,
                           engine_workers=args.engine_workers,
                           lease_seconds=args.lease_seconds,
                           max_attempts=args.max_attempts,
                           deadline=args.deadline,
                           store_url=args.store,
                           external_workers=args.external_workers,
                           progress=lambda m: print(m, file=sys.stderr))
    except ValueError as exc:        # bad --store URL / topology combo
        raise SystemExit(f"error: {exc}")
    print(json.dumps(result.to_dict(), indent=2))
    verdict = "OK" if result.ok else "FAILED"
    print(f"chaos {verdict}: {result.jobs} jobs, "
          f"{len(result.quarantined)} quarantined, "
          f"{len(result.failed)} failed, {len(result.stuck)} stuck, "
          f"{len(result.mismatched)} mismatched, "
          f"{result.retries} retries, {result.reclaims} reclaims, "
          f"{result.rebuilds} pool rebuilds "
          f"in {result.elapsed_s:.1f}s", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError
    algos = _resolve_algorithms(args.algorithms, args.delta)
    client = ServiceClient(args.url)
    job_ids = []
    try:
        for path in args.instances:
            inst = _load_instance_checked(path)
            job = client.submit(inst, algos, label=path,
                                priority=args.priority, timeout=args.timeout)
            job_ids.append(job["id"])
            print(f"submitted {path} as job {job['id']}", file=sys.stderr)
        if not args.wait:
            print(json.dumps({"job_ids": job_ids}))
            return 0
        reports, failed_jobs = [], []
        for path, job_id in zip(args.instances, job_ids):
            try:
                reports.extend(client.wait(job_id,
                                           timeout=args.wait_timeout))
            except ServiceError as exc:
                # a job that finished in a failed state must fail the
                # command — with enough context to debug it: the job's
                # trace id (greps straight into the service's structured
                # logs) and its queue/run timings, not a bare exit 1
                if exc.code not in ("job_failed", "job_quarantined"):
                    raise
                failed_jobs.append(job_id)
                job = client.job(job_id)
                trace = job.get("trace_id") or "-"
                timing = ""
                started, finished = (job.get("started_at"),
                                     job.get("finished_at"))
                if started and finished:
                    timing = f" after {finished - started:.3f}s running"
                print(f"error: job {job_id} ({path}) [trace {trace}]"
                      f"{timing}: {exc.message}", file=sys.stderr)
    except (ServiceError, TimeoutError, OSError) as exc:
        raise SystemExit(f"error: {exc}")
    print(json.dumps({"reports": [r.to_dict() for r in reports]}, indent=2))
    if reports:
        print(render_reports(reports), file=sys.stderr)
    bad_reports = [r for r in reports if r.status == "error"]
    for r in bad_reports:
        trace = r.extra.get("trace_id", "-") if r.extra else "-"
        print(f"error: {r.instance_label}/{r.algorithm} [trace {trace}] "
              f"finished {r.status} after {r.wall_time_s:.3f}s: {r.error}",
              file=sys.stderr)
    return 1 if failed_jobs or bad_reports else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf import (compare_results, load_results, run_suite,
                       write_results)
    baseline = None
    if args.baseline:
        # validate before burning minutes of bench time
        try:
            baseline = load_results(args.baseline)
        except FileNotFoundError:
            raise SystemExit(f"error: baseline not found: {args.baseline}")
        except (ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(f"error: bad baseline {args.baseline}: {exc}")
    try:
        run = run_suite(args.suite, repeats=args.repeats,
                        progress=lambda line: print(line, file=sys.stderr))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    path = write_results(run, args.output)
    print(f"{len(run.results)} bench(es) written to {path}",
          file=sys.stderr)
    # dump the in-process metrics registry next to the results — the
    # solver-latency histograms the benches just filled are themselves a
    # perf artifact worth keeping with the run
    import os
    from .obs.metrics import REGISTRY
    metrics_path = os.path.splitext(str(path))[0] + ".metrics.txt"
    with open(metrics_path, "w") as fh:
        fh.write(REGISTRY.render())
    print(f"metrics registry dumped to {metrics_path}", file=sys.stderr)
    if baseline is None:
        return 0
    try:
        comparisons = compare_results(run.to_dict(), baseline,
                                      warn_ratio=args.warn_over,
                                      fail_ratio=args.fail_over)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    for comp in comparisons:
        print(comp.line())
    failed = [c for c in comparisons if c.status == "fail"]
    warned = [c for c in comparisons if c.status == "warn"]
    print(f"compared {sum(c.ratio is not None for c in comparisons)} "
          f"bench(es) against {args.baseline}: "
          f"{len(failed)} fail, {len(warned)} warn", file=sys.stderr)
    return 1 if failed else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import CorpusCase, run_campaign, save_corpus_file
    solvers = None
    if args.solvers:
        solvers = []
        for name in (s.strip() for s in args.solvers.split(",")):
            if not name:
                continue
            try:
                solvers.append(get_solver(name).name)
            except UnknownSolverError as exc:
                raise SystemExit(f"error: {exc.args[0]}")
        if not solvers:
            raise SystemExit("error: no solvers given")
    generators = None
    if getattr(args, "generators", None):
        generators = tuple(g.strip() for g in args.generators.split(",")
                           if g.strip())
        if not generators:
            raise SystemExit("error: no generators given")
    session = Session(workers=args.workers or 0)
    try:
        result = run_campaign(
            seed=args.seed, count=args.count, solvers=solvers,
            include_ptas=args.include_ptas, generators=generators,
            session=session,
            time_budget=args.time_budget, shrink=not args.no_shrink,
            progress=lambda line: print(line, file=sys.stderr))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    budget_note = " (stopped at time budget)" if result.out_of_budget else ""
    print(f"fuzz: seed={args.seed} ran {result.cases_run} case(s) in "
          f"{result.elapsed_s:.1f}s{budget_note}: "
          f"{len(result.violations)} violation(s)", file=sys.stderr)
    if not result.violations:
        return 0
    import os
    os.makedirs(args.artifacts, exist_ok=True)
    for k, violation in enumerate(result.shrunk):
        case = CorpusCase(
            instance=violation.instance,
            oracles=(violation.oracle,),
            solvers=(violation.solver,),
            note=violation.message,
            source=f"repro fuzz --seed {args.seed} --count {args.count}"
                   + ("" if args.no_shrink else " (shrunk)"),
            # the per-case seed the oracle found (and the shrinker
            # re-validated) the witness under; corpus replay re-draws
            # the exact failing metamorphic transform from it
            seed=violation.seed)
        path = os.path.join(
            args.artifacts,
            f"seed{args.seed}-{k}-{violation.oracle}-"
            f"{violation.solver}.json")
        save_corpus_file(path, case)
        print(f"fuzz: {violation}\n      minimised witness -> {path}",
              file=sys.stderr)
    print(json.dumps({"violations": [v.to_dict()
                                     for v in result.shrunk]}, indent=2))
    return 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.url:
        from .service import ServiceClient, ServiceError
        try:
            sys.stdout.write(ServiceClient(args.url, timeout=10.0).metrics())
        except (ServiceError, OSError) as exc:
            raise SystemExit(
                f"error: cannot fetch metrics from {args.url}: {exc}")
    else:
        from .obs.metrics import REGISTRY
        sys.stdout.write(REGISTRY.render())
    return 0


_GENERATORS = {
    "uniform": uniform_instance,
    "zipf": zipf_instance,
    "data-placement": data_placement_instance,
    "vod": video_on_demand_instance,
}


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    inst = _GENERATORS[args.kind](rng, args.n, args.classes, args.machines,
                                  args.slots)
    if args.output:
        dump_instance(inst, args.output)
        print(f"instance written to {args.output}", file=sys.stderr)
    else:
        json.dump(instance_to_dict(inst), sys.stdout, indent=2)
        print()
    return 0


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #

def _add_engine_options(p: argparse.ArgumentParser,
                        default_workers: int | None) -> None:
    p.add_argument("--algorithms",
                   default="splittable,preemptive,nonpreemptive",
                   help="comma-separated registry names")
    p.add_argument("--delta", type=int, default=None,
                   help="PTAS accuracy q (delta = 1/q), forwarded to any "
                        "PTAS in --algorithms")
    p.add_argument("--workers", type=int, default=default_workers,
                   help="process fan-out; 0 runs inline")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-run wall-clock timeout in seconds")
    p.add_argument("--remote", metavar="URL",
                   help="run on a `repro serve` /v1 endpoint instead of "
                        "in-process (local --workers/--cache-dir do not "
                        "apply)")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro",
                                description="Class Constrained Scheduling")
    sub = p.add_subparsers(dest="command", required=True)

    pl = sub.add_parser("list", help="show the solver registry")
    pl.add_argument("--variant",
                    choices=("splittable", "preemptive", "nonpreemptive"))
    pl.add_argument("--kind",
                    choices=("approx", "ptas", "exact", "baseline"))
    pl.set_defaults(func=_cmd_list)

    ps = sub.add_parser("solve", help="run an algorithm on an instance")
    ps.add_argument("instance", help="path to an instance JSON file")
    ps.add_argument("--algorithm", default=None,
                    help="any registered solver (see `repro list`); "
                         "defaults to nonpreemptive")
    ps.add_argument("--auto", metavar="QUERY",
                    help="pick the solver by capability instead of name, "
                         "e.g. variant=nonpreemptive,max_ratio=7/3,no_milp"
                         ",budget=5")
    ps.add_argument("--delta", type=int, default=2,
                    help="PTAS accuracy q (delta = 1/q)")
    ps.add_argument("--timeout", type=float, default=None,
                    help="wall-clock timeout in seconds")
    ps.add_argument("--remote", metavar="URL",
                    help="solve on a running `repro serve` /v1 endpoint "
                         "instead of in-process")
    ps.add_argument("-o", "--output", help="write the schedule JSON here")
    ps.add_argument("--emit", action="store_true",
                    help="print the schedule JSON to stdout")
    ps.set_defaults(func=_cmd_solve)

    pba = sub.add_parser(
        "batch", help="instances x algorithms through the parallel engine")
    pba.add_argument("instances", nargs="+",
                     help="instance JSON files")
    _add_engine_options(pba, default_workers=None)
    pba.add_argument("--format", choices=("json", "csv"), default="json")
    pba.add_argument("--cache-dir",
                     help="persist per-run reports here, keyed by "
                          "instance content hash")
    pba.add_argument("-o", "--output", help="write the report here")
    pba.set_defaults(func=_cmd_batch)

    pc = sub.add_parser("compare",
                        help="run several algorithms on one instance")
    pc.add_argument("instance")
    _add_engine_options(pc, default_workers=None)   # inline unless asked
    pc.set_defaults(func=_cmd_compare)

    pb = sub.add_parser("bounds", help="print certified makespan bounds")
    pb.add_argument("instance")
    pb.set_defaults(func=_cmd_bounds)

    pg = sub.add_parser("generate", help="emit a synthetic instance")
    pg.add_argument("--kind", choices=sorted(_GENERATORS),
                    default="uniform")
    pg.add_argument("--n", type=int, default=40)
    pg.add_argument("--classes", type=int, default=8)
    pg.add_argument("--machines", type=int, default=4)
    pg.add_argument("--slots", type=int, default=2)
    pg.add_argument("--seed", type=int, default=0)
    pg.add_argument("-o", "--output")
    pg.set_defaults(func=_cmd_generate)

    pe = sub.add_parser(
        "serve", help="run the persistent scheduling service")
    pe.add_argument("--host", default="127.0.0.1")
    pe.add_argument("--port", type=int, default=8080)
    pe.add_argument("--db", default="repro-jobs.db",
                    help="SQLite file for jobs/reports/result cache "
                         "(jobs survive restarts)")
    pe.add_argument("--store", default=None,
                    help="storage backend URL: sqlite:///jobs.db "
                         "(3 slashes = relative path, 4 = absolute) or "
                         "memory:// (volatile, tests); overrides --db")
    pe.add_argument("--drainers", type=int, default=2,
                    help="queue worker threads consuming jobs")
    pe.add_argument("--no-embedded-workers", action="store_true",
                    help="accept + supervise only; execution is left to "
                         "external `repro worker` processes sharing the "
                         "store")
    pe.add_argument("--cache-shards", type=int, default=None,
                    help="result-cache shard count for a fresh store "
                         "(default 4; existing stores keep theirs)")
    pe.add_argument("--engine-workers", type=int, default=0,
                    help="process fan-out per job (0 solves inline on "
                         "the drainer thread)")
    pe.add_argument("--timeout", type=float, default=None,
                    help="default per-run timeout for jobs without one")
    pe.add_argument("--lease-seconds", type=float, default=30.0,
                    help="job lease length drainers hold and heartbeat "
                         "(0 disables leases/retries/supervision)")
    pe.add_argument("--max-attempts", type=int, default=None,
                    help="attempts per job before quarantine "
                         "(default: store default, 3)")
    pe.add_argument("--drain-grace", type=float, default=10.0,
                    help="seconds SIGTERM/SIGINT waits for in-flight "
                         "jobs before releasing their leases")
    pe.add_argument("--quiet", action="store_true",
                    help="log warnings only (shorthand for "
                         "--log-level warning)")
    pe.add_argument("--log-level", default=None,
                    choices=("debug", "info", "warning", "error"),
                    help="structured-log threshold; overrides --quiet "
                         "(default: info)")
    pe.set_defaults(func=_cmd_serve)

    pw = sub.add_parser(
        "worker", help="run a standalone worker node draining a shared "
                       "store (pair with `repro serve "
                       "--no-embedded-workers`)")
    pw.add_argument("--store", required=True,
                    help="storage backend URL shared with the server, "
                         "e.g. sqlite:///jobs.db (memory:// cannot be "
                         "shared across processes)")
    pw.add_argument("--workers", type=int, default=2,
                    help="drainer threads in this node")
    pw.add_argument("--engine-workers", type=int, default=0,
                    help="process fan-out per job (0 solves inline on "
                         "the drainer thread)")
    pw.add_argument("--name", default=None,
                    help="node name stamped on claims (default: "
                         "node-<pid>-<k>)")
    pw.add_argument("--timeout", type=float, default=None,
                    help="default per-run timeout for jobs without one")
    pw.add_argument("--lease-seconds", type=float, default=30.0,
                    help="job lease length drainers hold and heartbeat "
                         "(0 disables leases/retries/supervision)")
    pw.add_argument("--poll-interval", type=float, default=0.25,
                    help="idle sleep between store polls")
    pw.add_argument("--drain-grace", type=float, default=10.0,
                    help="seconds SIGTERM/SIGINT waits for in-flight "
                         "jobs before releasing their leases")
    pw.add_argument("--quiet", action="store_true",
                    help="log warnings only (shorthand for "
                         "--log-level warning)")
    pw.add_argument("--log-level", default=None,
                    choices=("debug", "info", "warning", "error"),
                    help="structured-log threshold; overrides --quiet "
                         "(default: info)")
    pw.set_defaults(func=_cmd_worker)

    pj = sub.add_parser(
        "jobs", help="list jobs on a running service")
    pj.add_argument("--url", default="http://127.0.0.1:8080",
                    help="base URL of a `repro serve` endpoint")
    pj.add_argument("--status", default=None,
                    choices=("queued", "running", "done", "failed",
                             "quarantined"),
                    help="only jobs in this status")
    pj.add_argument("--quarantined", action="store_true",
                    help="shorthand for --status quarantined")
    pj.add_argument("--limit", type=int, default=50,
                    help="page size (max 500)")
    pj.set_defaults(func=_cmd_jobs)

    ph = sub.add_parser(
        "chaos", help="fault-injection campaign asserting the crash-safe "
                      "job lifecycle (every job terminal, reports "
                      "byte-identical to a clean run)")
    ph.add_argument("--seed", type=int, default=7,
                    help="campaign + fault-plan seed (deterministic)")
    ph.add_argument("--jobs", type=int, default=50,
                    help="jobs submitted in the campaign")
    ph.add_argument("--faults", default=None,
                    help="fault plan 'site:rate[:arg],...' (default: "
                         "worker_kill + shm_attach + store_commit + "
                         "drainer_loop, all >= 5%%)")
    ph.add_argument("--url", default=None,
                    help="run against this live service instead of "
                         "booting a private one (its own REPRO_FAULTS "
                         "env supplies the faults)")
    ph.add_argument("--drainers", type=int, default=2,
                    help="drainer threads of the private service")
    ph.add_argument("--engine-workers", type=int, default=2,
                    help="process fan-out of the private service")
    ph.add_argument("--lease-seconds", type=float, default=2.0,
                    help="lease length of the private service (short, "
                         "so reclaims happen within the campaign)")
    ph.add_argument("--max-attempts", type=int, default=5,
                    help="attempts per job before quarantine")
    ph.add_argument("--deadline", type=float, default=180.0,
                    help="seconds before undrained jobs count as stuck")
    ph.add_argument("--store", default=None,
                    help="storage backend URL for the private service "
                         "(default: a temporary sqlite file; memory:// "
                         "needs --external-workers 0)")
    ph.add_argument("--external-workers", type=int, default=0,
                    help="drain through this many separate `repro "
                         "worker` processes instead of embedded "
                         "drainers; adds a worker_kill leg that "
                         "SIGKILLs one mid-campaign")
    ph.set_defaults(func=_cmd_chaos)

    pu = sub.add_parser(
        "submit", help="submit instances to a running service")
    pu.add_argument("instances", nargs="+", help="instance JSON files")
    pu.add_argument("--url", default="http://127.0.0.1:8080",
                    help="base URL of a `repro serve` endpoint")
    pu.add_argument("--algorithms",
                    default="splittable,preemptive,nonpreemptive",
                    help="comma-separated registry names")
    pu.add_argument("--delta", type=int, default=None,
                    help="PTAS accuracy q (delta = 1/q), forwarded to any "
                         "PTAS in --algorithms")
    pu.add_argument("--priority", type=int, default=0,
                    help="higher runs first")
    pu.add_argument("--timeout", type=float, default=None,
                    help="per-run timeout applied server-side")
    pu.add_argument("--wait", action="store_true",
                    help="poll until done and print the reports")
    pu.add_argument("--wait-timeout", type=float, default=300.0,
                    help="give up waiting after this many seconds")
    pu.set_defaults(func=_cmd_submit)

    pz = sub.add_parser(
        "fuzz", help="differential fuzzing: adversarial instances "
                     "through every oracle")
    pz.add_argument("--seed", type=int, default=0,
                    help="campaign seed; same seed + count reproduces "
                         "every case exactly")
    pz.add_argument("--count", type=int, default=200,
                    help="number of adversarial cases to generate")
    pz.add_argument("--solvers",
                    help="comma-separated registry names to sweep "
                         "(default: every non-PTAS solver)")
    pz.add_argument("--include-ptas", action="store_true",
                    help="add the MILP-backed PTASes to the sweep "
                         "(slower)")
    pz.add_argument("--generators",
                    help="comma-separated generator families to draw "
                         "cases from (default: all, weighted)")
    pz.add_argument("--time-budget", type=float, default=None,
                    help="stop the campaign after this many seconds")
    pz.add_argument("--workers", type=int, default=0,
                    help="run the solver sweep through the process-pool "
                         "Session backend (0 = inline)")
    pz.add_argument("--no-shrink", action="store_true",
                    help="report raw counterexamples without minimising")
    pz.add_argument("--artifacts", default="fuzz-artifacts",
                    help="directory for minimised counterexample JSON "
                         "(corpus format; created only on violation)")
    pz.set_defaults(func=_cmd_fuzz)

    pf = sub.add_parser(
        "bench", help="run a perf suite and write BENCH_results.json")
    pf.add_argument("--suite", default="smoke",
                    choices=("smoke", "kernel", "nfold", "batch", "full"),
                    help="which bench suite to run (full = everything, "
                         "what the committed baseline is built from)")
    pf.add_argument("--repeats", type=int, default=5,
                    help="timing repeats per bench (min/median recorded)")
    pf.add_argument("-o", "--output", default="BENCH_results.json",
                    help="where to write the results JSON")
    pf.add_argument("--baseline", metavar="PATH",
                    help="compare against this committed results file; "
                         "exit 1 on any bench beyond --fail-over")
    pf.add_argument("--warn-over", type=float, default=1.25,
                    help="warn when current/baseline min time exceeds "
                         "this ratio")
    pf.add_argument("--fail-over", type=float, default=1.25,
                    help="fail when the ratio exceeds this (CI uses 2.0 "
                         "to absorb shared-runner noise)")
    pf.set_defaults(func=_cmd_bench)

    pm = sub.add_parser(
        "metrics", help="print the Prometheus metrics registry")
    pm.add_argument("--url",
                    help="fetch /v1/metrics from this `repro serve` "
                         "endpoint instead of dumping the in-process "
                         "registry")
    pm.set_defaults(func=_cmd_metrics)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    finally:
        # explicit release of the engine's persistent worker pool (atexit
        # would cover a normal interpreter exit, but `main` is also called
        # programmatically and from tests)
        from .engine.pool import shutdown_pool
        shutdown_pool(wait=False)


if __name__ == "__main__":
    raise SystemExit(main())
