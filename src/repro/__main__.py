"""Command-line interface: ``python -m repro``.

Subcommands::

    solve    run an algorithm on a JSON instance, print/emit the schedule
    bounds   print the certified lower/upper bounds for an instance
    generate emit a synthetic instance as JSON

Examples::

    python -m repro generate --kind uniform --n 40 --classes 8 \
        --machines 4 --slots 2 --seed 7 -o inst.json
    python -m repro solve inst.json --algorithm nonpreemptive
    python -m repro solve inst.json --algorithm ptas-splittable --delta 3
    python -m repro bounds inst.json
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .approx.nonpreemptive import solve_nonpreemptive
from .approx.preemptive import solve_preemptive
from .approx.splittable import solve_splittable
from .core.bounds import (area_bound, nonpreemptive_lower_bound, pmax_bound,
                          preemptive_lower_bound, splittable_lower_bound,
                          trivial_upper_bound)
from .core.validation import validate
from .io import dump_instance, instance_to_dict, load_instance, \
    schedule_to_dict
from .workloads import (data_placement_instance, uniform_instance,
                        video_on_demand_instance, zipf_instance)

ALGORITHMS = ("splittable", "preemptive", "nonpreemptive",
              "ptas-splittable", "ptas-preemptive", "ptas-nonpreemptive")


def _cmd_solve(args: argparse.Namespace) -> int:
    inst = load_instance(args.instance)
    name = args.algorithm
    if name == "splittable":
        res = solve_splittable(inst)
    elif name == "preemptive":
        res = solve_preemptive(inst)
    elif name == "nonpreemptive":
        res = solve_nonpreemptive(inst)
    elif name == "ptas-splittable":
        from .ptas.splittable import ptas_splittable
        res = ptas_splittable(inst, delta=args.delta)
    elif name == "ptas-preemptive":
        from .ptas.preemptive import ptas_preemptive
        res = ptas_preemptive(inst, delta=args.delta)
    elif name == "ptas-nonpreemptive":
        from .ptas.nonpreemptive import ptas_nonpreemptive
        res = ptas_nonpreemptive(inst, delta=args.delta)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown algorithm {name}")
    makespan = validate(inst, res.schedule)
    print(f"algorithm : {name}", file=sys.stderr)
    print(f"makespan  : {float(makespan):.6g}", file=sys.stderr)
    print(f"guess T   : {float(res.guess):.6g}", file=sys.stderr)
    print(f"certified : makespan/guess = "
          f"{float(makespan) / float(res.guess):.4f}", file=sys.stderr)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(schedule_to_dict(res.schedule), fh, indent=2)
        print(f"schedule written to {args.output}", file=sys.stderr)
    elif args.emit:
        json.dump(schedule_to_dict(res.schedule), sys.stdout, indent=2)
        print()
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    inst = load_instance(args.instance)
    print(f"area            : {float(area_bound(inst)):.6g}")
    print(f"pmax            : {pmax_bound(inst)}")
    print(f"splittable LB   : {float(splittable_lower_bound(inst)):.6g}")
    print(f"preemptive LB   : {float(preemptive_lower_bound(inst)):.6g}")
    print(f"non-preempt LB  : {nonpreemptive_lower_bound(inst)}")
    print(f"trivial UB      : {float(trivial_upper_bound(inst)):.6g}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.kind == "uniform":
        inst = uniform_instance(rng, args.n, args.classes, args.machines,
                                args.slots)
    elif args.kind == "zipf":
        inst = zipf_instance(rng, args.n, args.classes, args.machines,
                             args.slots)
    elif args.kind == "data-placement":
        inst = data_placement_instance(rng, args.n, args.classes,
                                       args.machines, args.slots)
    elif args.kind == "vod":
        inst = video_on_demand_instance(rng, args.n, args.classes,
                                        args.machines, args.slots)
    else:  # pragma: no cover
        raise SystemExit(f"unknown kind {args.kind}")
    if args.output:
        dump_instance(inst, args.output)
        print(f"instance written to {args.output}", file=sys.stderr)
    else:
        json.dump(instance_to_dict(inst), sys.stdout, indent=2)
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro",
                                description="Class Constrained Scheduling")
    sub = p.add_subparsers(dest="command", required=True)

    ps = sub.add_parser("solve", help="run an algorithm on an instance")
    ps.add_argument("instance", help="path to an instance JSON file")
    ps.add_argument("--algorithm", choices=ALGORITHMS,
                    default="nonpreemptive")
    ps.add_argument("--delta", type=int, default=2,
                    help="PTAS accuracy q (delta = 1/q)")
    ps.add_argument("-o", "--output", help="write the schedule JSON here")
    ps.add_argument("--emit", action="store_true",
                    help="print the schedule JSON to stdout")
    ps.set_defaults(func=_cmd_solve)

    pb = sub.add_parser("bounds", help="print certified makespan bounds")
    pb.add_argument("instance")
    pb.set_defaults(func=_cmd_bounds)

    pg = sub.add_parser("generate", help="emit a synthetic instance")
    pg.add_argument("--kind", choices=("uniform", "zipf", "data-placement",
                                       "vod"), default="uniform")
    pg.add_argument("--n", type=int, default=40)
    pg.add_argument("--classes", type=int, default=8)
    pg.add_argument("--machines", type=int, default=4)
    pg.add_argument("--slots", type=int, default=2)
    pg.add_argument("--seed", type=int, default=0)
    pg.add_argument("-o", "--output")
    pg.set_defaults(func=_cmd_generate)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
