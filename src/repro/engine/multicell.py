"""Multi-cell solving: whole same-algorithm chunks in one dispatch.

The pooled batch path used to run one :func:`~repro.engine.runner.execute`
per cell inside each worker — correct, but every cell paid the scalar
kernels' per-call numpy overhead separately.  :func:`solve_many` runs a
chunk of cells through the stacked kernels in
:mod:`repro.core.batchkernels` instead:

* **splittable** — the border binary searches of *all* cells run in one
  vectorised lockstep pass; each cell's solver then consumes its
  precomputed border as a :func:`~repro.approx.borders.border_hints`
  hint, and the resulting schedules are validated together in one
  stacked exact sweep (:func:`~repro.core.batchkernels.splittable_ok_many`);
  any cell the sweep cannot prove clean re-runs the authoritative
  scalar validator, reproducing its exact error messages.
* **nonpreemptive** — the Theorem 6 integral guess searches of all
  cells run in one vectorised lockstep pass
  (:func:`~repro.core.batchkernels.nonpreemptive_guess_many`), each
  cell's solver consuming its precomputed ``T`` as a digest-keyed
  hint; the resulting schedules are then validated in a single stacked
  ``unique``/``bincount`` sweep; any cell the sweep cannot prove clean
  re-runs the authoritative scalar validator, reproducing its exact
  error messages.

Everything else — foreign algorithms, cells with kwargs, disabled fast
paths, overflow-guard trips — falls back to per-cell ``execute``.  The
contract, enforced by the ``batch`` fuzz oracle and the engine tests, is
that ``solve_many(cells)`` is byte-identical (modulo wall time) to
``[execute(...) for cell in cells]``.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

from ..approx.borders import border_hints
from ..approx.nonpreemptive import guess_hints
from ..core.batchkernels import (nonpreemptive_guess_many,
                                 nonpreemptive_slots_ok_many,
                                 smallest_feasible_border_many,
                                 splittable_ok_many)
from ..core.fastmath import fast_paths_enabled
from ..core.instance import Instance
from ..core.schedule import NonPreemptiveSchedule, SplittableSchedule
from ..core.validation import validate
from ..registry import get_solver
from .report import SolveReport
from .runner import (_base_fields, _call_with_timeout, _failure_report,
                     _ok_report, execute)

__all__ = ["solve_many", "MULTI_CELL_ALGOS"]

#: Algorithms with a stacked multi-cell kernel behind them. Everything
#: else runs per-cell through ``execute``.
MULTI_CELL_ALGOS = frozenset({"splittable", "nonpreemptive"})


def solve_many(cells: Sequence[tuple[str, Instance, str,
                                     Mapping[str, Any] | None]],
               *, timeout: float | None = None) -> list[SolveReport]:
    """One report per ``(label, instance, algorithm, kwargs)`` cell.

    Byte-identical (modulo ``wall_time_s``) to calling
    :func:`~repro.engine.runner.execute` per cell, but same-algorithm
    runs of :data:`MULTI_CELL_ALGOS` cells share the vectorised batch
    kernels. Unknown algorithm names raise up front, like ``execute``.
    """
    reports: list[SolveReport | None] = [None] * len(cells)
    groups: dict[str, list[int]] = {}
    for idx, (label, inst, name, kwargs) in enumerate(cells):
        spec = get_solver(name)
        if kwargs or spec.name not in MULTI_CELL_ALGOS \
                or not fast_paths_enabled():
            reports[idx] = execute(inst, name, kwargs, label=label,
                                   timeout=timeout)
        else:
            groups.setdefault(spec.name, []).append(idx)
    for name, idxs in groups.items():
        if name == "splittable":
            _solve_splittable_group(cells, idxs, reports, timeout)
        else:
            _solve_nonpreemptive_group(cells, idxs, reports, timeout)
    return reports      # type: ignore[return-value]


# --------------------------------------------------------------------- #
# splittable: batched border search, replayed through execute
# --------------------------------------------------------------------- #

def _solve_splittable_group(cells, idxs: list[int],
                            reports: list, timeout: float | None) -> None:
    """Precompute every cell's Lemma 2 border in one vectorised pass,
    run the normal solver with the answers installed as hints, then
    validate all resulting schedules in one stacked exact sweep."""
    spec = get_solver("splittable")
    keys: list[tuple[tuple[int, ...], int, int]] = []
    inputs: list[tuple[list[int], int, int]] = []
    seen: set[tuple] = set()
    for idx in idxs:
        inst = cells[idx][1].normalized()
        if not inst.is_feasible():
            continue        # the solver rejects it before the search
        loads = inst._class_loads
        budget = inst.class_slots * inst.machines
        key = (loads, inst.machines, budget)
        if key not in seen:
            seen.add(key)
            keys.append(key)
            inputs.append((list(loads), inst.machines, budget))
    hints: dict[tuple, Any] = {}
    if inputs:
        borders, scalar = smallest_feasible_border_many(inputs)
        skip = set(scalar)
        for pos, key in enumerate(keys):
            if pos not in skip:     # guard trips recompute per cell
                hints[key] = borders[pos]

    solved: list[tuple[int, Instance, Any, dict, float]] = []
    with border_hints(hints):
        for idx in idxs:
            label, inst, _, _ = cells[idx]
            base = _base_fields(spec, inst, label)
            t0 = time.perf_counter()
            try:
                raw = _call_with_timeout(lambda: spec.solve(inst),
                                         timeout)
            except BaseException as exc:  # noqa: BLE001 — to a report
                reports[idx] = _failure_report(
                    exc, base, time.perf_counter() - t0, timeout)
                continue
            solved.append((idx, inst, raw, base, t0))

    # stacked exact validation: pieces of every schedule in one sweep;
    # anything the kernel cannot prove clean re-runs the authoritative
    # scalar validator for its exact error messages
    stacked: list[tuple[int, Instance, Any, dict, float]] = []
    kernel_cells = []
    for rec in solved:
        idx, inst, raw, base, t0 = rec
        sched = raw.schedule
        norm = inst.normalized()
        if (isinstance(sched, SplittableSchedule)
                and sched.num_machines == norm.machines):
            jobs: list[int] = []
            machs: list[int] = []
            nums: list[int] = []
            dens: list[int] = []
            for i, piece in sched.iter_pieces():
                jobs.append(piece.job)
                machs.append(i)
                nums.append(piece.amount.numerator)
                dens.append(piece.amount.denominator)
            stacked.append(rec)
            kernel_cells.append((jobs, machs, nums, dens,
                                 norm.processing_times, norm.classes,
                                 norm.machines, norm.class_slots))
        else:
            _finish_scalar(rec, reports, timeout)

    makespans = splittable_ok_many(kernel_cells) if kernel_cells else []
    for rec, makespan in zip(stacked, makespans):
        idx, inst, raw, base, t0 = rec
        if makespan is not None:
            reports[idx] = _ok_report(raw, makespan, True, base,
                                      time.perf_counter() - t0)
        else:
            _finish_scalar(rec, reports, timeout)


# --------------------------------------------------------------------- #
# nonpreemptive: per-cell solve, stacked validation
# --------------------------------------------------------------------- #

def _solve_nonpreemptive_group(cells, idxs: list[int],
                               reports: list,
                               timeout: float | None) -> None:
    spec = get_solver("nonpreemptive")
    # precompute every cell's Theorem 6 guess in one lockstep pass; the
    # per-cell solver then re-derives its group counts once at the
    # hinted T instead of O(log UB) times
    keys: list[str] = []
    inputs: list[tuple] = []
    seen: set[str] = set()
    for idx in idxs:
        norm = cells[idx][1].normalized()
        if not norm.is_feasible():
            continue        # the solver rejects it before the search
        key = norm.digest()
        if key not in seen:
            seen.add(key)
            keys.append(key)
            inputs.append((norm.processing_times, norm.classes,
                           norm.machines, norm.class_slots))
    hints: dict[str, int] = {}
    if inputs:
        t_vals, skip = nonpreemptive_guess_many(inputs)
        skipped = set(skip)
        for pos, key in enumerate(keys):
            if pos not in skipped and t_vals[pos] is not None:
                hints[key] = t_vals[pos]

    solved: list[tuple[int, Instance, Any, dict, float]] = []
    with guess_hints(hints):
        for idx in idxs:
            label, inst, _, _ = cells[idx]
            base = _base_fields(spec, inst, label)
            t0 = time.perf_counter()
            try:
                raw = _call_with_timeout(lambda: spec.solve(inst),
                                         timeout)
            except BaseException as exc:  # noqa: BLE001 — to a report
                reports[idx] = _failure_report(
                    exc, base, time.perf_counter() - t0, timeout)
                continue
            solved.append((idx, inst, raw, base, t0))

    # split into cells the stacked sweep can prove clean and the rest;
    # the preconditions mirror validate_nonpreemptive's scalar prechecks
    stacked: list[tuple[int, Instance, Any, dict, float]] = []
    kernel_cells = []
    for rec in solved:
        idx, inst, raw, base, t0 = rec
        sched = raw.schedule
        norm = inst.normalized()
        if (isinstance(sched, NonPreemptiveSchedule)
                and sched.num_machines == norm.machines
                and sched.num_jobs == norm.num_jobs
                and sched.dense_machine_range()
                and min(sched.assignment, default=-1) >= 0):
            stacked.append(rec)
            kernel_cells.append((sched.assignment, norm.classes,
                                 norm.machines, norm.num_classes,
                                 norm.class_slots))
        else:
            _finish_scalar(rec, reports, timeout)

    ok = nonpreemptive_slots_ok_many(kernel_cells) if kernel_cells else []
    for rec, good in zip(stacked, ok):
        idx, inst, raw, base, t0 = rec
        if good:
            makespan = raw.schedule.makespan(inst.normalized())
            reports[idx] = _ok_report(raw, makespan, True, base,
                                      time.perf_counter() - t0)
        else:
            _finish_scalar(rec, reports, timeout)


def _finish_scalar(rec, reports: list, timeout: float | None) -> None:
    """Validate one solved cell through the authoritative scalar
    validator, with ``execute``'s exact failure mapping."""
    idx, inst, raw, base, t0 = rec
    try:
        if raw.schedule is not None:
            makespan, validated = validate(inst, raw.schedule), True
        else:
            makespan, validated = raw.makespan, False
    except BaseException as exc:        # noqa: BLE001 — mapped to a report
        reports[idx] = _failure_report(exc, base,
                                       time.perf_counter() - t0, timeout)
        return
    reports[idx] = _ok_report(raw, makespan, validated, base,
                              time.perf_counter() - t0)
