"""Unified execution engine: registry-dispatched solver runs at scale.

* :class:`~repro.engine.report.SolveReport` — the one result record.
* :func:`~repro.engine.runner.run_batch` — instances x algorithms with
  process fan-out, per-run timeouts and caching.
* :func:`~repro.engine.multicell.solve_many` — whole same-algorithm
  chunks through the stacked batch kernels, byte-identical to per-cell
  :func:`~repro.engine.runner.execute`.
* :class:`~repro.engine.cache.ReportCache` — content-hash-keyed results.
* :mod:`~repro.engine.pool` — the persistent process pool behind every
  parallel batch (:func:`~repro.engine.pool.shutdown_pool` to release).
* :mod:`~repro.engine.shm` — the shared-memory instance transport the
  pooled batches ship their work through.
"""

from ..resultcache import ReportCache, cache_key
from .multicell import solve_many
from .pool import get_pool, pool_id, shutdown_pool
from .report import SolveReport
from .runner import DEFAULT_WORKERS, execute, run_batch

__all__ = ["SolveReport", "ReportCache", "cache_key", "execute",
           "run_batch", "solve_many", "DEFAULT_WORKERS", "get_pool",
           "pool_id", "shutdown_pool"]
