"""Unified execution engine: registry-dispatched solver runs at scale.

* :class:`~repro.engine.report.SolveReport` — the one result record.
* :func:`~repro.engine.runner.run_batch` — instances x algorithms with
  process fan-out, per-run timeouts and caching.
* :class:`~repro.engine.cache.ReportCache` — content-hash-keyed results.
"""

from .cache import ReportCache, cache_key
from .report import SolveReport
from .runner import DEFAULT_WORKERS, execute, run_batch

__all__ = ["SolveReport", "ReportCache", "cache_key", "execute",
           "run_batch", "DEFAULT_WORKERS"]
