"""Compatibility shim: the result cache now lives in
:mod:`repro.resultcache`.

The engine's bounded LRU :class:`~repro.resultcache.ReportCache`, the
key/policy helpers and the hit/miss counters were unified with the
service's persistent cache into one module, so the sharded service
cache and the engine cache share a single interface and a single set of
metrics. Every name that ever lived here is re-exported; new code
should import from :mod:`repro.resultcache` directly.
"""

from __future__ import annotations

from ..resultcache import (CACHE_HITS, CACHE_MISSES, CACHE_KEY_VERSION,
                           CACHEABLE_STATUSES, DEFAULT_MAX_ENTRIES,
                           ReportCache, cache_key, is_cacheable,
                           relabel_hit)

__all__ = ["ReportCache", "cache_key", "is_cacheable", "relabel_hit",
           "CACHEABLE_STATUSES", "DEFAULT_MAX_ENTRIES",
           "CACHE_KEY_VERSION", "CACHE_HITS", "CACHE_MISSES"]
