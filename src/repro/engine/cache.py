"""Result caching for the execution engine.

Keys combine the instance content hash (:meth:`Instance.digest`), the
solver name and its canonicalised kwargs, so a cache survives relabelling
and reordering of batches. The cache is in-memory by default; give it a
directory to persist reports as one JSON file per key (safe to share
between processes — writes go through a same-directory rename).

The in-memory layer is bounded (``max_entries``, LRU eviction) and every
operation takes an internal lock, so one cache can safely back a
long-running multi-threaded service such as :mod:`repro.service` without
growing without bound or racing between threads. Disk entries are never
evicted — the directory is the durable layer, the dict is a hot set.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path
from typing import Any, Mapping

from ..core.instance import Instance
from ..obs.metrics import REGISTRY
from ..obs.trace import current_trace_id
from .report import SolveReport

__all__ = ["ReportCache", "cache_key", "is_cacheable", "relabel_hit",
           "CACHEABLE_STATUSES", "DEFAULT_MAX_ENTRIES"]

#: Default in-memory bound: large enough for any one experiment sweep,
#: small enough that a service holding ~1-2 KiB reports stays in the MBs.
DEFAULT_MAX_ENTRIES = 4096


#: Bump whenever the *meaning* of a cached report changes for an
#: unchanged (instance, algorithm, kwargs) triple, so persistent caches
#: (the service's SQLite store, on-disk ReportCache dirs) never serve
#: stale semantics across an upgrade. v2: the status taxonomy split
#: ``unsupported`` out of ``infeasible`` (mcnaughton / capacity caps).
CACHE_KEY_VERSION = "report-v2"


def cache_key(inst: Instance, algorithm: str,
              kwargs: Mapping[str, Any] | None = None) -> str:
    """Deterministic key for (instance, algorithm, kwargs)."""
    payload = json.dumps(
        {"v": CACHE_KEY_VERSION,
         "instance": inst.digest(), "algorithm": algorithm,
         "kwargs": {k: repr(v) for k, v in sorted((kwargs or {}).items())}},
        sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


#: Cache hit/miss counters, labelled by which cache answered: the
#: engine's in-memory/disk ReportCache or the service's SQLite adapter.
CACHE_HITS = REGISTRY.counter(
    "repro_cache_hits_total", "Report-cache lookups served from cache.",
    labelnames=("cache",))
CACHE_MISSES = REGISTRY.counter(
    "repro_cache_misses_total", "Report-cache lookups that missed.",
    labelnames=("cache",))

#: Outcomes worth remembering; timeouts and crashes are retried instead.
CACHEABLE_STATUSES = ("ok", "infeasible", "unsupported")


def is_cacheable(report: SolveReport) -> bool:
    """Whether a report may enter a result cache — one rule for every
    consumer (``run_batch``, the api backends, the service)."""
    return report.status in CACHEABLE_STATUSES


def relabel_hit(report: SolveReport, label: str) -> SolveReport:
    """A cached/duplicate report re-issued for a new batch cell: marked
    cached, relabelled to the requesting cell, zero solver time. When
    the caller runs under a trace context, the re-issued report is
    re-stamped with *that* trace — a cache hit belongs to the request
    that received it, not the one that originally solved it."""
    tid = current_trace_id()
    extra = report.extra
    if tid is not None and extra.get("trace_id") != tid:
        extra = {**extra, "trace_id": tid}
    return replace(report, cached=True, instance_label=label,
                   wall_time_s=0.0, extra=extra)


class ReportCache:
    """Bounded, thread-safe store of :class:`SolveReport`.

    ``max_entries`` caps the in-memory dict only (least-recently-*used*
    entry evicted first); ``None`` disables the bound for short-lived
    batch runs that want every report resident.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 max_entries: int | None = DEFAULT_MAX_ENTRIES) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._mem: OrderedDict[str, SolveReport] = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self._dir: Path | None = None
        if directory is not None:
            self._dir = Path(directory)
            self._dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def _path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.json"

    def get(self, key: str) -> SolveReport | None:
        with self._lock:
            rep = self._mem.get(key)
            if rep is not None:
                self._mem.move_to_end(key)
                self.hits += 1
        if rep is not None:
            CACHE_HITS.inc(cache="engine")
            return rep
        # Disk probe outside the lock: file IO must not serialise every
        # thread, and a racing double-read just loads the same JSON twice.
        if self._dir is not None:
            path = self._path(key)
            if path.exists():
                try:
                    rep = SolveReport.from_dict(json.loads(path.read_text()))
                except (ValueError, TypeError, json.JSONDecodeError):
                    rep = None      # corrupt entry: treat as a miss
        with self._lock:
            if rep is None:
                self.misses += 1
            else:
                self._store(key, rep)
                self.hits += 1
        if rep is None:
            CACHE_MISSES.inc(cache="engine")
        else:
            CACHE_HITS.inc(cache="engine")
        return rep

    def _store(self, key: str, report: SolveReport) -> None:
        # caller holds self._lock
        self._mem[key] = report
        self._mem.move_to_end(key)
        if self.max_entries is not None:
            while len(self._mem) > self.max_entries:
                self._mem.popitem(last=False)

    def put(self, key: str, report: SolveReport) -> None:
        with self._lock:
            self._store(key, report)
        if self._dir is not None:
            path = self._path(key)
            # per-writer tmp name: concurrent threads/processes storing the
            # same key must not interleave writes before the atomic rename
            tmp = path.with_suffix(
                f".{os.getpid()}.{threading.get_ident()}.tmp")
            tmp.write_text(json.dumps(report.to_dict(), indent=2))
            os.replace(tmp, path)
