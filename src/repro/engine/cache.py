"""Result caching for the execution engine.

Keys combine the instance content hash (:meth:`Instance.digest`), the
solver name and its canonicalised kwargs, so a cache survives relabelling
and reordering of batches. The cache is in-memory by default; give it a
directory to persist reports as one JSON file per key (safe to share
between processes — writes go through a same-directory rename).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping

from ..core.instance import Instance
from .report import SolveReport

__all__ = ["ReportCache", "cache_key"]


def cache_key(inst: Instance, algorithm: str,
              kwargs: Mapping[str, Any] | None = None) -> str:
    """Deterministic key for (instance, algorithm, kwargs)."""
    payload = json.dumps(
        {"instance": inst.digest(), "algorithm": algorithm,
         "kwargs": {k: repr(v) for k, v in sorted((kwargs or {}).items())}},
        sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


class ReportCache:
    """In-memory (and optionally on-disk) store of :class:`SolveReport`."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._mem: dict[str, SolveReport] = {}
        self._dir: Path | None = None
        if directory is not None:
            self._dir = Path(directory)
            self._dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._mem)

    def _path(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.json"

    def get(self, key: str) -> SolveReport | None:
        rep = self._mem.get(key)
        if rep is None and self._dir is not None:
            path = self._path(key)
            if path.exists():
                try:
                    rep = SolveReport.from_dict(json.loads(path.read_text()))
                except (ValueError, TypeError, json.JSONDecodeError):
                    rep = None      # corrupt entry: treat as a miss
                else:
                    self._mem[key] = rep
        if rep is None:
            self.misses += 1
        else:
            self.hits += 1
        return rep

    def put(self, key: str, report: SolveReport) -> None:
        self._mem[key] = report
        if self._dir is not None:
            path = self._path(key)
            # per-writer tmp name: concurrent processes storing the same
            # key must not interleave writes before the atomic rename
            tmp = path.with_suffix(f".{os.getpid()}.tmp")
            tmp.write_text(json.dumps(report.to_dict(), indent=2))
            os.replace(tmp, path)
