"""The unified result record every solver run produces.

A :class:`SolveReport` is frozen, picklable (it crosses process
boundaries in :mod:`repro.engine.runner`) and round-trips through JSON
exactly — fractional makespans are encoded as ``"num/den"`` strings, the
same convention :mod:`repro.io` uses for schedules.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from fractions import Fraction
from typing import Any, Mapping

from ..io import _frac_parse, _frac_str

__all__ = ["SolveReport", "STATUSES"]

#: Every status a run can end in. ``infeasible`` means the instance
#: admits no schedule (:class:`~repro.core.errors.InfeasibleInstanceError`
#: — or, for no-guarantee baselines, the heuristic dead-ended / produced a
#: schedule that failed validation); ``unsupported`` means the instance is
#: fine but this solver cannot handle it
#: (:class:`~repro.core.errors.UnsupportedInstanceError`, e.g. McNaughton
#: on a class-constrained instance) — batch consumers should *skip* such
#: reports, not count them as failures; ``error`` is an unexpected
#: failure.
STATUSES = ("ok", "timeout", "infeasible", "unsupported", "error")


def _num_str(x: Fraction | int | float | None) -> str | int | float | None:
    """Encode exactly: ints/floats stay as-is, fractions become "num/den"
    via the shared :mod:`repro.io` wire encoding."""
    if isinstance(x, Fraction):
        return _frac_str(x)
    return None if x is None else (float(x) if isinstance(x, float) else int(x))


def _num_parse(v: Any) -> Fraction | int | float | None:
    if v is None or isinstance(v, (int, float)):
        return v
    return _frac_parse(v)


@dataclass(frozen=True)
class SolveReport:
    """Outcome of running one registered algorithm on one instance.

    ``certified_ratio`` is the *a posteriori* certificate
    ``makespan / guess`` (the guess is a certified reference value, see
    the registry docs); ``proven_ratio`` is the algorithm's theorem-level
    guarantee, carried along so reports are self-describing.
    """

    algorithm: str
    instance_digest: str
    instance_label: str = ""
    variant: str = ""
    status: str = "ok"
    makespan: Fraction | int | float | None = None
    guess: Fraction | int | float | None = None
    certified_ratio: float | None = None
    proven_ratio: str = ""          # "2", "7/3", "1+eps", "1 (exact)", "-"
    wall_time_s: float = 0.0
    validated: bool = False         # schedule checked by core.validation
    cached: bool = False            # served from the result cache
    error: str = ""
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in STATUSES:
            raise ValueError(f"unknown status {self.status!r}")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        d = asdict(self)
        d["makespan"] = _num_str(self.makespan)
        d["guess"] = _num_str(self.guess)
        d["extra"] = dict(self.extra)
        return d

    @staticmethod
    def from_dict(d: Mapping[str, Any]) -> "SolveReport":
        d = dict(d)
        d["makespan"] = _num_parse(d.get("makespan"))
        d["guess"] = _num_parse(d.get("guess"))
        d["extra"] = dict(d.get("extra") or {})
        return SolveReport(**d)
