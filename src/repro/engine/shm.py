"""Shared-memory instance transport for the batch engine.

Before this module existed, every pooled ``run_batch`` chunk pickled its
``Instance`` objects into the task payload — the same instance crossed
the process boundary once per chunk, and a warm pool re-paid the
serialisation on every batch.  The engine now publishes the batch's
distinct instances *once* into a ``multiprocessing.shared_memory``
segment using the same packed integer layout the ``ccs-instance-v2``
digest hashes, and ships only ``(segment, offset, length)`` references
with each chunk.  Workers attach, decode, and cache instances by digest,
so a warm pool solving the same instances again ships essentially
nothing.

Three cooperating pieces:

* **Packing** — :func:`pack_instances` / :func:`unpack_instance`: a
  little-endian ``int64`` struct layout (magic, ``n``, ``m``, ``c``,
  then the processing times and class indices).  Values outside int64 —
  ``m`` may be exponential in ``n`` — make the instance unpackable;
  :func:`pack_instances` then returns ``None`` and the engine falls back
  to pickling, exactly like the digest's big-int fallback.
* **Parent-side segment registry** — :func:`publish` /
  :func:`release` / :func:`release_all` / :func:`active_segments`:
  every created segment is tracked until it is explicitly unlinked, an
  ``atexit`` hook reaps stragglers, and ``shutdown_pool`` sweeps the
  registry when it cancels pending work.  On top of the registry sits a
  bounded reuse cache (:func:`acquire` / :func:`unpin`): a batch whose
  distinct-instance set matches a recently published segment gets that
  segment back instead of packing and publishing again, so the warm
  steady state performs *zero* shared-memory syscalls.  Segments are
  pinned while a batch is in flight (never evicted under them) and the
  cache holds at most :data:`_SEG_CACHE_MAX` unpinned entries — a
  crashed worker or batch therefore cannot leak ``/dev/shm`` entries:
  everything on disk is registry-tracked and reaped at interpreter
  exit at the latest.
* **Worker-side decode cache** — :func:`fetch_instance`: attach the
  named segment, decode one instance, close the attachment immediately
  (decoded instances own their storage, so nothing pins the segment),
  and memoise by digest in a bounded LRU shared by every chunk the
  worker ever runs.

``shm_enabled()`` gates the whole transport: it is off automatically on
platforms without POSIX shared memory and can be forced off with the
``REPRO_DISABLE_SHM`` environment variable (or :func:`set_shm_enabled`,
which the benches use to measure the pickle fallback honestly).
"""

from __future__ import annotations

import atexit
import os
import struct
import threading
from collections import OrderedDict
from typing import Iterable, Mapping

from ..core.instance import Instance
from ..obs.metrics import REGISTRY

__all__ = ["pack_instances", "unpack_instance", "publish", "release",
           "release_all", "active_segments", "fetch_instance",
           "acquire", "reacquire", "unpin", "shm_enabled", "set_shm_enabled",
           "SegmentRef", "SEGMENT_PREFIX"]

try:  # pragma: no cover - import guard exercised on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: ``/dev/shm`` name prefix of every segment this registry creates, so
#: tests (and operators) can audit leaks with a simple glob.
SEGMENT_PREFIX = "repro-shm"

_MAGIC = 0x43435332          # "CCS2" — packed-layout version marker
_INT64_MIN, _INT64_MAX = -(2 ** 63), 2 ** 63 - 1

_enabled: bool = (_shared_memory is not None
                  and not os.environ.get("REPRO_DISABLE_SHM"))


def shm_enabled() -> bool:
    """Whether the shared-memory transport is active."""
    return _enabled and _shared_memory is not None


def set_shm_enabled(on: bool) -> bool:
    """Force the transport on/off process-wide; returns the old value.

    Turning it on has no effect where ``multiprocessing.shared_memory``
    is unavailable — :func:`shm_enabled` stays ``False`` there.
    """
    global _enabled
    old = _enabled
    _enabled = bool(on)
    if old and not _enabled:
        release_all()       # a disabled transport holds no segments
    return old


# --------------------------------------------------------------------- #
# packed layout (the ccs-instance-v2 integer encoding, addressable)
# --------------------------------------------------------------------- #

def _pack_one(inst: Instance) -> bytes | None:
    """One instance as little-endian int64 words, or ``None`` when any
    quantity exceeds int64 (huge ``m``)."""
    n = inst.num_jobs
    header = (_MAGIC, n, inst.machines, inst.class_slots)
    try:
        return struct.pack(f"<4q{n}q{n}q", *header, *inst.processing_times,
                           *inst.classes)
    except (struct.error, OverflowError):
        return None


def unpack_instance(buf: bytes | memoryview) -> Instance:
    """Decode one :func:`_pack_one` record back into an :class:`Instance`."""
    magic, n, m, c = struct.unpack_from("<4q", buf, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad shm instance record (magic {magic:#x})")
    body = struct.unpack_from(f"<{2 * n}q", buf, 32)
    return Instance(processing_times=body[:n], classes=body[n:],
                    machines=m, class_slots=c)


def pack_instances(instances: Mapping[str, Instance]
                   ) -> tuple[bytes, dict[str, tuple[int, int]]] | None:
    """Pack ``digest -> Instance`` into one buffer plus an offset index.

    Returns ``None`` when *any* instance does not fit the int64 layout —
    the caller then falls back to pickle transport for the whole batch
    (mixing transports per batch would buy nothing: the segment would
    still be created and the fallback instances still pickled per chunk).
    """
    parts: list[bytes] = []
    index: dict[str, tuple[int, int]] = {}
    offset = 0
    for digest, inst in instances.items():
        blob = _pack_one(inst)
        if blob is None:
            return None
        index[digest] = (offset, len(blob))
        parts.append(blob)
        offset += len(blob)
    return b"".join(parts), index


# --------------------------------------------------------------------- #
# parent-side segment registry
# --------------------------------------------------------------------- #

class SegmentRef:
    """A published segment: its name plus the digest -> (offset, length)
    index workers use to address individual instances."""

    __slots__ = ("name", "index")

    def __init__(self, name: str, index: dict[str, tuple[int, int]]) -> None:
        self.name = name
        self.index = index


_registry_lock = threading.Lock()
_segments: dict[str, object] = {}      # name -> SharedMemory (creator)
_counter = 0

_SHM_PUBLISHED = REGISTRY.counter(
    "repro_shm_segments_published_total",
    "Shared-memory segments created for batch instance transport.")
_SHM_REUSED = REGISTRY.counter(
    "repro_shm_segments_reused_total",
    "acquire() calls served by a live segment from the reuse cache.")
_SHM_PINNED = REGISTRY.gauge(
    "repro_shm_pinned_segments",
    "Segments currently pinned by in-flight batches.")


def publish(data: bytes,
            index: dict[str, tuple[int, int]]) -> SegmentRef | None:
    """Create a shared-memory segment holding ``data``; ``None`` when the
    transport is disabled or segment creation fails (e.g. ``/dev/shm``
    full) — callers fall back to pickle, never crash."""
    global _counter
    if not shm_enabled() or not data:
        return None
    with _registry_lock:
        _counter += 1
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{_counter}"
    try:
        seg = _shared_memory.SharedMemory(name=name, create=True,
                                          size=len(data))
    except (OSError, ValueError):
        return None
    seg.buf[: len(data)] = data
    with _registry_lock:
        _segments[seg.name] = seg
    _SHM_PUBLISHED.inc()
    return SegmentRef(seg.name, index)


def release(ref: SegmentRef | str | None) -> None:
    """Close and unlink one published segment (idempotent)."""
    if ref is None:
        return
    name = ref if isinstance(ref, str) else ref.name
    with _registry_lock:
        seg = _segments.pop(name, None)
        _pins.pop(name, None)
        _SHM_PINNED.set(len(_pins))
        for key in [k for k, r in _seg_cache.items() if r.name == name]:
            del _seg_cache[key]
    if seg is not None:
        try:
            seg.close()
            seg.unlink()
        except OSError:  # pragma: no cover - already reaped by the OS
            pass


def release_all() -> None:
    """Unlink every segment this process still owns (``atexit`` sweep and
    the ``shutdown_pool(cancel_futures=True)`` integration)."""
    with _registry_lock:
        names = list(_segments)
    for name in names:
        release(name)


def active_segments() -> list[str]:
    """Names of the segments this process currently owns — the
    introspection hook the leak tests assert through."""
    with _registry_lock:
        return sorted(_segments)


atexit.register(release_all)


# --------------------------------------------------------------------- #
# warm-batch segment reuse
# --------------------------------------------------------------------- #

#: Recently published batch segments kept alive for reuse, keyed by the
#: sorted digest tuple of their contents (digests are content hashes, so
#: equal keys mean byte-equal payloads). Bounded: a service cycling many
#: distinct workloads must not accumulate ``/dev/shm`` entries.
_SEG_CACHE_MAX = 8
_seg_cache: "OrderedDict[tuple, SegmentRef]" = OrderedDict()
_pins: dict[str, int] = {}             # segment name -> in-flight batches


def acquire(instances: Mapping[str, Instance]) -> SegmentRef | None:
    """A live segment holding exactly ``instances`` (digest -> Instance).

    Warm batches re-solving the same instances get the segment published
    by an earlier batch back — zero pack/publish/unlink syscalls on the
    steady-state path. Misses pack and publish, then enter the bounded
    reuse cache; the least recently used *unpinned* segment is unlinked
    to make room. Callers must :func:`unpin` the returned ref when their
    batch completes (a pinned segment is never evicted, so a slow batch
    cannot have its instances unlinked mid-flight by a faster sibling).

    Returns ``None`` when the transport is off or the payload does not
    fit the packed layout — callers fall back to pickle transport.
    """
    if not shm_enabled():
        return None
    key = tuple(sorted(instances))
    with _registry_lock:
        ref = _seg_cache.get(key)
        if ref is not None:
            _seg_cache.move_to_end(key)
            _pins[ref.name] = _pins.get(ref.name, 0) + 1
            _SHM_PINNED.set(len(_pins))
            _SHM_REUSED.inc()
            return ref
    packed = pack_instances(instances)
    if packed is None:
        return None
    ref = publish(*packed)
    if ref is None:
        return None
    evict: list[str] = []
    with _registry_lock:
        _seg_cache[key] = ref
        _pins[ref.name] = _pins.get(ref.name, 0) + 1
        _SHM_PINNED.set(len(_pins))
        for k in list(_seg_cache):
            if len(_seg_cache) <= _SEG_CACHE_MAX:
                break
            name = _seg_cache[k].name
            if not _pins.get(name):
                del _seg_cache[k]
                _pins.pop(name, None)
                evict.append(name)
    for name in evict:
        release(name)
    return ref


def reacquire(ref: SegmentRef | None,
              instances: Mapping[str, Instance]) -> SegmentRef | None:
    """Re-pin ``instances`` after a pool rebuild: drops ``ref``'s pin and
    acquires afresh — usually the same live cached segment, or a newly
    packed one if a sibling's sweep unlinked it while the pool was down.
    ``None`` stays ``None`` (the batch was on pickle transport)."""
    if ref is None:
        return None
    unpin(ref)
    return acquire(instances)


def unpin(ref: SegmentRef | None) -> None:
    """Drop one batch's pin on ``ref`` (no-op for ``None``). The segment
    stays alive in the reuse cache; it is unlinked only on eviction,
    :func:`release_all`, or interpreter exit."""
    if ref is None:
        return
    with _registry_lock:
        left = _pins.get(ref.name, 0) - 1
        if left > 0:
            _pins[ref.name] = left
        else:
            _pins.pop(ref.name, None)
        _SHM_PINNED.set(len(_pins))


# --------------------------------------------------------------------- #
# worker-side attach + decode cache
# --------------------------------------------------------------------- #

#: Decoded instances kept per worker process, keyed by digest. Bounded:
#: a long-lived worker must not accumulate every instance it ever saw.
_DECODE_CACHE_MAX = 256
_decoded: OrderedDict[str, Instance] = OrderedDict()
_decode_lock = threading.Lock()


def _attach(name: str):
    from ..faults import injection
    injection.maybe_raise("shm_attach")
    # Attach WITHOUT touching the resource tracker. Python < 3.13
    # registers *attaching* processes with the tracker too, which is
    # wrong for us twice over: (a) a worker's private tracker would
    # unlink the parent's live segment when the worker exits, and (b)
    # talking to the tracker takes its lock — a pool worker forked while
    # another batch thread held that lock (publishing a segment) would
    # deadlock on its very first attach. The parent owns every segment's
    # lifecycle, so workers must stay invisible to tracking entirely.
    # (Python >= 3.13 spells this ``SharedMemory(name, track=False)``.)
    try:  # pragma: no cover - signature depends on python version
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    from multiprocessing import resource_tracker
    orig = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


def fetch_instance(ref: SegmentRef, digest: str) -> Instance:
    """The instance for ``digest``: from the worker's decode cache, else
    attached, decoded, cached and detached in one go."""
    with _decode_lock:
        inst = _decoded.get(digest)
        if inst is not None:
            _decoded.move_to_end(digest)
            return inst
    offset, length = ref.index[digest]
    seg = _attach(ref.name)
    try:
        inst = unpack_instance(bytes(seg.buf[offset: offset + length]))
    finally:
        seg.close()
    with _decode_lock:
        _decoded[digest] = inst
        _decoded.move_to_end(digest)
        while len(_decoded) > _DECODE_CACHE_MAX:
            _decoded.popitem(last=False)
    return inst


def fetch_many(ref: SegmentRef,
               digests: Iterable[str]) -> dict[str, Instance]:
    """Batch form of :func:`fetch_instance`: one attach for every cache
    miss of the chunk instead of one per instance."""
    out: dict[str, Instance] = {}
    missing: list[str] = []
    with _decode_lock:
        for digest in digests:
            inst = _decoded.get(digest)
            if inst is not None:
                _decoded.move_to_end(digest)
                out[digest] = inst
            else:
                missing.append(digest)
    if not missing:
        return out
    seg = _attach(ref.name)
    try:
        fresh = {}
        for digest in missing:
            offset, length = ref.index[digest]
            fresh[digest] = unpack_instance(
                bytes(seg.buf[offset: offset + length]))
    finally:
        seg.close()
    with _decode_lock:
        for digest, inst in fresh.items():
            _decoded[digest] = inst
            _decoded.move_to_end(digest)
        while len(_decoded) > _DECODE_CACHE_MAX:
            _decoded.popitem(last=False)
    out.update(fresh)
    return out
