"""The persistent process pool shared by every batch run.

Before this module existed, every ``run_batch`` call built a fresh
``ProcessPoolExecutor`` and tore it down again — each batch paid the full
interpreter spin-up (fork/spawn, module imports) before the first solve
started.  The engine now draws workers from one lazily-created,
process-wide pool that survives across ``run_batch``/``Session`` calls:
the first parallel batch warms it up, every later batch reuses the warm
workers.

Properties:

* **Lazy** — nothing is spawned until the first parallel batch asks.
* **Grow-by-default sizing** — the pool is replaced when a caller asks
  for more workers than the current pool offers; asking for fewer just
  reuses the bigger pool (idle workers cost almost nothing, respawning
  costs a lot), unless the caller passes ``shrink=True`` to release an
  explicitly unwanted width. Callers enforce their own ``workers`` cap
  by bounding how many tasks they keep in flight — the pool's width is
  a ceiling, not a promise.
* **Swap-safe submission** — :func:`submit_task` resolves the live pool
  and submits *under the pool lock*, so a concurrent grow/replace can
  never invalidate a handle between resolution and submission.  A
  retiring pool is drained, not cancelled: futures already submitted to
  it complete normally.
* **Self-healing** — a broken pool (a worker died mid-task) is detected
  and replaced on the next use.
* **Explicit shutdown** — :func:`shutdown_pool` for the service drainers
  and the CLI; graceful by default (pending work drains in the
  background), cancellation is opt-in and used by the ``atexit`` hook so
  a runaway task cannot hang interpreter exit.  After a shutdown the
  next use transparently builds a fresh pool.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import Future, ProcessPoolExecutor

from ..obs.metrics import REGISTRY

__all__ = ["get_pool", "submit_task", "pool_id", "pool_max_workers",
           "rebuild_pool", "shutdown_pool", "batch_begin", "batch_end",
           "active_batches"]

_lock = threading.Lock()
_pool: ProcessPoolExecutor | None = None
_pool_workers: int = 0
_active_batches: int = 0

_POOL_WIDTH = REGISTRY.gauge(
    "repro_pool_width", "Max workers of the live shared process pool "
    "(0 when not running).")
_POOL_TASKS = REGISTRY.counter(
    "repro_pool_tasks_total", "Chunks/cells submitted to the shared "
    "process pool.")
_POOL_BATCHES = REGISTRY.gauge(
    "repro_pool_batches_active", "Pooled batches currently in flight.")
_POOL_REBUILDS = REGISTRY.counter(
    "repro_pool_rebuilds_total",
    "Shared-pool rebuilds after a worker death (BrokenProcessPool).")


def _broken(pool: ProcessPoolExecutor) -> bool:
    # _broken is set when a worker dies abruptly; treat a pool we cannot
    # introspect as usable and let submit() surface any real failure
    return bool(getattr(pool, "_broken", False))


def _ensure(workers: int, shrink: bool = False) -> ProcessPoolExecutor:
    """The live pool, (re)created/resized as needed. Caller holds
    ``_lock``. Width only ever grows unless ``shrink`` is set."""
    global _pool, _pool_workers
    if _pool is not None and _broken(_pool):
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
    elif _pool is not None and (_pool_workers < workers
                                or (shrink and _pool_workers > workers)):
        # resizing: retire the old pool *gracefully* — other threads may
        # hold futures on it, so already-submitted work must drain
        # (shutdown without cancel_futures finishes queued items in the
        # background and the old pool reaps itself)
        _pool.shutdown(wait=False)
        _pool = None
    if _pool is None:
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    _POOL_WIDTH.set(_pool_workers)
    return _pool


def get_pool(workers: int, *, shrink: bool = False) -> ProcessPoolExecutor:
    """The shared executor, created/resized on demand.

    ``workers`` is the width the caller wants *available*; the returned
    pool has ``max_workers >= workers``. By default a smaller ask reuses
    a wider pool (idle workers cost almost nothing, respawning costs a
    lot); ``shrink=True`` instead rebuilds the pool at exactly
    ``workers`` when it is currently wider — ``run_batch`` uses it on an
    *explicit* ``workers=`` downsize, so a one-off wide batch cannot pin
    the pool's width (and its resident worker processes) forever. The
    retiring pool drains gracefully either way. Prefer
    :func:`submit_task` for submission — a handle returned here can be
    retired by a concurrent caller's resize, after which its ``submit``
    raises ``RuntimeError``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    with _lock:
        return _ensure(workers, shrink)


def submit_task(workers: int, fn, /, *args, **kwargs) -> Future:
    """Submit ``fn(*args, **kwargs)`` to the shared pool, atomically.

    Pool resolution and submission happen under one lock, so a
    concurrent grow/replace cannot invalidate the pool in between — the
    race a bare ``get_pool().submit()`` is exposed to.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _POOL_TASKS.inc()
    with _lock:
        return _ensure(workers).submit(fn, *args, **kwargs)


def rebuild_pool(workers: int) -> None:
    """Replace a broken pool after a ``BrokenProcessPool``, at width
    ``workers``. A no-op when the live pool is healthy: with several
    batches in flight, every one of them sees the same
    ``BrokenProcessPool`` and calls in — only the first may cancel and
    rebuild, or it would cancel the fresh futures a sibling already
    resubmitted (and a ``CancelledError`` escaping ``fut.result()``
    kills the sibling's drainer thread)."""
    global _pool
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    with _lock:
        if _pool is not None and not _broken(_pool):
            return
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
            _pool = None
        _ensure(workers)
        _POOL_REBUILDS.inc()


def batch_begin() -> None:
    """Mark a pooled batch as in flight (see :func:`active_batches`)."""
    global _active_batches
    with _lock:
        _active_batches += 1
        _POOL_BATCHES.set(_active_batches)


def batch_end() -> None:
    """Mark one pooled batch as finished."""
    global _active_batches
    with _lock:
        _active_batches -= 1
        _POOL_BATCHES.set(_active_batches)


def active_batches() -> int:
    """Number of pooled batches currently in flight.

    Replacing the executor forks new workers; doing that while a sibling
    batch's threads are mid-submission is the classic fork-with-held-locks
    hazard (the child can inherit a locked queue lock and deadlock).
    ``run_batch`` therefore shrinks the pool only when it is the *sole*
    active batch — growth for correctness still happens regardless, as a
    too-narrow pool could not run the batch at all.
    """
    with _lock:
        return _active_batches


def pool_id() -> int | None:
    """Identity of the live shared pool (``None`` when not running).

    Exposed so tests — and curious operators — can assert that two batch
    calls really did reuse one warm pool.
    """
    with _lock:
        return None if _pool is None else id(_pool)


def pool_max_workers() -> int:
    """Max workers of the live shared pool (0 when not running)."""
    with _lock:
        return _pool_workers if _pool is not None else 0


def shutdown_pool(wait: bool = True, *, cancel_futures: bool = False) -> None:
    """Tear the shared pool down (idempotent).

    Graceful by default: work already submitted — possibly by *other*
    components of the process — drains before the workers exit, so a
    service shutting down cannot kill an unrelated batch mid-flight.
    ``cancel_futures=True`` abandons pending work instead (interpreter
    exit uses this). The next use lazily builds a fresh pool either way.
    """
    global _pool, _pool_workers
    with _lock:
        pool, _pool, _pool_workers = _pool, None, 0
    _POOL_WIDTH.set(0)
    if pool is not None:
        pool.shutdown(wait=wait, cancel_futures=cancel_futures)
    if cancel_futures:
        # abandoned work never reads its shared-memory segments; sweep
        # them so a cancelled shutdown cannot leak /dev/shm entries
        from . import shm
        shm.release_all()


atexit.register(shutdown_pool, wait=False, cancel_futures=True)
