"""Batch execution: many instances x many algorithms, in parallel.

:func:`run_batch` is the one run-loop in the repository — the CLI
``batch``/``compare`` subcommands, the benchmark harness and the analysis
layer all call it instead of hand-rolling instance/algorithm loops. It

* resolves algorithms through :mod:`repro.registry`,
* fans tasks out over a ``concurrent.futures`` process pool (``workers=0``
  runs inline, which the benchmarks use to keep timings honest),
* enforces a per-run wall-clock timeout via ``SIGALRM`` inside each
  worker (so a stuck MILP cannot wedge the batch),
* validates every schedule with :mod:`repro.core.validation` before
  trusting its makespan, and
* consults/fills an optional :class:`~repro.engine.cache.ReportCache`
  keyed by instance content hash.

Every run — success, timeout, infeasibility or crash — yields exactly one
:class:`~repro.engine.report.SolveReport`; a batch never raises because a
single cell failed (unknown solver names, a caller bug, still do).
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from fractions import Fraction
from typing import Any, Iterable, Mapping, Sequence

from ..core.errors import InfeasibleScheduleError, InvalidInstanceError
from ..core.instance import Instance
from ..core.validation import validate
from ..registry import get_solver
from .cache import ReportCache, cache_key
from .report import SolveReport

__all__ = ["run_batch", "execute", "DEFAULT_WORKERS"]

#: Default process fan-out; small enough not to oversubscribe CI boxes.
DEFAULT_WORKERS = min(4, os.cpu_count() or 1)


class _TimeoutExceeded(Exception):
    pass


@contextmanager
def _alarm(seconds: float | None):
    """Raise :class:`_TimeoutExceeded` after ``seconds`` of wall time.

    Uses ``SIGALRM``, so it only arms on POSIX main threads — exactly
    where it matters: the pool workers run solver code on their main
    thread. Elsewhere (Windows, nested threads) it degrades to a no-op.
    """
    if not seconds or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handle(signum, frame):
        raise _TimeoutExceeded()

    old = signal.signal(signal.SIGALRM, _handle)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


def _ratio(makespan, guess) -> float | None:
    try:
        if makespan is None or guess is None or Fraction(guess) <= 0:
            return None
        return float(Fraction(makespan) / Fraction(guess))
    except (TypeError, ValueError):
        return None


def execute(inst: Instance, algorithm: str,
            kwargs: Mapping[str, Any] | None = None, *,
            label: str = "", timeout: float | None = None) -> SolveReport:
    """Run one algorithm on one instance; never raises for solver failures."""
    spec = get_solver(algorithm)        # unknown names fail loudly, pre-run
    kwargs = dict(kwargs or {})
    base = dict(algorithm=spec.name, instance_digest=inst.digest(),
                instance_label=label, variant=spec.variant,
                proven_ratio=spec.ratio_label)
    t0 = time.perf_counter()

    def elapsed() -> float:
        return time.perf_counter() - t0

    try:
        with _alarm(timeout):
            raw = spec.solve(inst, **kwargs)
            if raw.schedule is not None:
                makespan = validate(inst, raw.schedule)
                validated = True
            else:
                makespan = raw.makespan
                validated = False
    except _TimeoutExceeded:
        return SolveReport(status="timeout", wall_time_s=elapsed(),
                           error=f"exceeded {timeout:g}s", **base)
    except (InfeasibleScheduleError, InvalidInstanceError) as exc:
        return SolveReport(status="infeasible", wall_time_s=elapsed(),
                           error=str(exc), **base)
    except Exception as exc:            # noqa: BLE001 — one cell, one report
        return SolveReport(status="error", wall_time_s=elapsed(),
                           error=f"{type(exc).__name__}: {exc}", **base)
    return SolveReport(status="ok", makespan=makespan, guess=raw.guess,
                       certified_ratio=_ratio(makespan, raw.guess),
                       wall_time_s=elapsed(), validated=validated,
                       extra=dict(raw.extra), **base)


def _execute_task(task: tuple) -> SolveReport:
    """Top-level so it pickles into pool workers."""
    label, inst, name, kwargs, timeout = task
    return execute(inst, name, kwargs, label=label, timeout=timeout)


def _normalize_instances(instances) -> list[tuple[str, Instance]]:
    out = []
    for k, item in enumerate(instances):
        if isinstance(item, Instance):
            out.append((f"instance-{k}", item))
        else:
            label, inst = item
            out.append((str(label), inst))
    if not out:
        raise ValueError("run_batch needs at least one instance")
    return out


def _normalize_algorithms(algorithms) -> list[tuple[str, dict]]:
    out = []
    for item in algorithms:
        if isinstance(item, str):
            name, kwargs = item, {}
        else:
            name, kwargs = item
        out.append((get_solver(name).name, dict(kwargs or {})))
    if not out:
        raise ValueError("run_batch needs at least one algorithm")
    return out


def run_batch(instances: Iterable[Instance | tuple[str, Instance]],
              algorithms: Sequence[str | tuple[str, Mapping[str, Any]]],
              *,
              workers: int | None = None,
              timeout: float | None = None,
              cache: ReportCache | None = None) -> list[SolveReport]:
    """Run every algorithm on every instance; one report per pair.

    Reports come back in deterministic order: instances outermost (in
    input order), algorithms innermost. ``workers`` > 1 fans out over a
    process pool; ``0``/``1`` runs inline in this process. ``timeout``
    bounds each individual run, not the batch. Cached results are
    returned with ``cached=True`` and cost no solver time; only clean
    (``ok``/``infeasible``) outcomes are cached — timeouts and crashes
    are retried on the next batch.
    """
    insts = _normalize_instances(instances)
    algos = _normalize_algorithms(algorithms)
    if workers is None:
        workers = DEFAULT_WORKERS

    tasks: list[tuple] = []
    keys: list[str | None] = []
    reports: list[SolveReport | None] = []
    for label, inst in insts:
        for name, kwargs in algos:
            key = cache_key(inst, name, kwargs) if cache is not None else None
            hit = cache.get(key) if cache is not None else None
            reports.append(hit.as_cached() if hit is not None else None)
            keys.append(key)
            tasks.append((label, inst, name, kwargs, timeout))

    pending = [i for i, r in enumerate(reports) if r is None]
    if workers > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=min(workers,
                                                 len(pending))) as pool:
            for i, rep in zip(pending,
                              pool.map(_execute_task,
                                       [tasks[i] for i in pending])):
                reports[i] = rep
    else:
        for i in pending:
            reports[i] = _execute_task(tasks[i])

    if cache is not None:
        for i in pending:
            rep = reports[i]
            if rep.status in ("ok", "infeasible"):
                cache.put(keys[i], rep)
    return reports      # type: ignore[return-value]
