"""Batch execution: many instances x many algorithms, in parallel.

:func:`run_batch` is the one run-loop in the repository — the CLI
``batch``/``compare`` subcommands, the scheduling service, the benchmark
harness and the analysis layer all call it instead of hand-rolling
instance/algorithm loops. It

* resolves algorithms through :mod:`repro.registry`,
* fans tasks out over the engine's *persistent* process pool
  (:mod:`repro.engine.pool` — warm workers survive across batches;
  ``workers=0`` runs inline, which the benchmarks use to keep timings
  honest), shipping each distinct instance to a worker once per batch
  chunk instead of once per cell,
* enforces a per-run wall-clock timeout — ``SIGALRM`` where available
  (POSIX main threads, i.e. the pool workers), a watchdog-thread fallback
  everywhere else (Windows, service queue drainers),
* validates every schedule with :mod:`repro.core.validation` before
  trusting its makespan,
* consults/fills an optional :class:`~repro.engine.cache.ReportCache`
  keyed by instance content hash, and
* solves each distinct (instance, algorithm, kwargs) cell once per batch,
  even when the grid repeats it.

Every run — success, timeout, infeasibility or crash — yields exactly one
:class:`~repro.engine.report.SolveReport`; a batch never raises because a
single cell failed (unknown solver names, a caller bug, still do).
"""

from __future__ import annotations

import ctypes
import heapq
import os
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..core.errors import (CapacityExceededError, InfeasibleInstanceError,
                           InfeasibleScheduleError, InvalidInstanceError,
                           UnsupportedInstanceError)
from ..core.fastmath import fast_paths_enabled
from ..core.instance import Instance
from ..core.validation import validate
from ..faults import injection
from ..obs.metrics import REGISTRY
from ..obs.trace import current_trace_id, trace_context
from ..registry import get_solver
from . import shm
from ..resultcache import (ReportCache, cache_key, is_cacheable,
                           relabel_hit)
from .pool import (active_batches, batch_begin, batch_end, get_pool,
                   pool_max_workers, rebuild_pool, submit_task)
from .report import SolveReport

__all__ = ["run_batch", "execute", "execute_in_worker", "DEFAULT_WORKERS"]

#: Default process fan-out; small enough not to oversubscribe CI boxes.
DEFAULT_WORKERS = min(4, os.cpu_count() or 1)

#: Per-solver latency, labelled by algorithm and outcome. Stamped where
#: the report is *built* (inline runs) and again where pooled chunks are
#: collected — worker processes have their own invisible registry, so
#: the parent observes pooled cells from the returned reports.
SOLVE_SECONDS = REGISTRY.histogram(
    "repro_solve_seconds", "Wall time of individual solver runs.",
    labelnames=("algorithm", "status"))
_BATCH_CELLS = REGISTRY.counter(
    "repro_batch_cells_total", "Batch cells by how they were satisfied: "
    "solved fresh, served from cache, or deduplicated within the batch.",
    labelnames=("outcome",))
_CHUNK_CELLS = REGISTRY.histogram(
    "repro_batch_chunk_cells", "Cells per chunk shipped to the pool.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256))


@contextmanager
def _maybe_trace(trace_id: str | None):
    """Install a *shipped* trace ID (worker side); no-op when the
    submitting batch ran without one — unlike ``trace_context()``,
    nothing is generated here."""
    if trace_id is None:
        yield
        return
    with trace_context(trace_id):
        yield


class _TimeoutExceeded(Exception):
    pass


def _alarm_usable() -> bool:
    return hasattr(signal, "SIGALRM") and \
        threading.current_thread() is threading.main_thread()


@contextmanager
def _alarm(seconds: float | None):
    """Raise :class:`_TimeoutExceeded` after ``seconds`` of wall time.

    Uses ``SIGALRM``, so it only arms on POSIX main threads — which covers
    the pool workers: they run solver code on their main thread.
    """
    if not seconds or not _alarm_usable():
        yield
        return

    def _handle(signum, frame):
        raise _TimeoutExceeded()

    old = signal.signal(signal.SIGALRM, _handle)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


def _call_with_timeout(fn: Callable[[], Any], seconds: float | None) -> Any:
    """Run ``fn()``, raising :class:`_TimeoutExceeded` after ``seconds``.

    On a POSIX main thread this is the cheap ``SIGALRM`` path. Anywhere
    signals cannot arm — Windows, and crucially the service's queue
    drainer threads running inline solves — the call moves to a daemon
    worker thread that is joined with a deadline. On expiry the caller
    gets a real timeout report immediately; the runaway solve is then
    asked to die via ``PyThreadState_SetAsyncExc`` (best effort — pure
    Python solver loops honour it at the next bytecode boundary, a solve
    stuck inside a C extension finishes its call first and the exception
    lands on return).
    """
    if not seconds:
        return fn()
    if _alarm_usable():
        with _alarm(seconds):
            return fn()

    outcome: dict[str, Any] = {}
    done = threading.Event()

    def _target() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:    # noqa: BLE001 — re-raised below
            outcome["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(target=_target, daemon=True,
                              name="repro-solve-timeout")
    worker.start()
    if not done.wait(seconds):
        if worker.ident is not None:
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(worker.ident),
                ctypes.py_object(_TimeoutExceeded))
        raise _TimeoutExceeded()
    if "error" in outcome:
        raise outcome["error"]
    return outcome["value"]


def _ratio(makespan, guess) -> float | None:
    try:
        if makespan is None or guess is None or Fraction(guess) <= 0:
            return None
        return float(Fraction(makespan) / Fraction(guess))
    except (TypeError, ValueError):
        return None


def _base_fields(spec, inst: Instance, label: str) -> dict:
    """The identifying fields every report of one cell shares."""
    return dict(algorithm=spec.name, instance_digest=inst.digest(),
                instance_label=label, variant=spec.variant,
                proven_ratio=spec.ratio_label)


def _trace_extra(base_extra: Mapping[str, Any] | None = None) -> dict:
    """A report's ``extra`` mapping, stamped with the ambient trace ID
    when one is set. This is the single stamping point for both
    ``execute`` and the batched ``solve_many`` path — with no trace
    context active (library use, golden tests, corpus replay) the
    reports stay byte-identical to pre-observability output."""
    extra = dict(base_extra) if base_extra else {}
    tid = current_trace_id()
    if tid is not None:
        extra["trace_id"] = tid
    return extra


def _failure_report(exc: BaseException, base: dict, elapsed: float,
                    timeout: float | None) -> SolveReport:
    """Map a solve/validate exception to its report — the single failure
    taxonomy :func:`execute` and the batch ``solve_many`` path share, so
    a batched cell fails byte-identically to an inline one. Non-solver
    ``BaseException``s (``KeyboardInterrupt``...) propagate."""
    if isinstance(exc, _TimeoutExceeded):
        status, error = "timeout", f"exceeded {timeout:g}s"
    elif isinstance(exc, (UnsupportedInstanceError, CapacityExceededError)):
        # the instance is fine; this solver just cannot take it — batch
        # runs skip the cell instead of mislabeling the instance
        status, error = "unsupported", str(exc)
    elif isinstance(exc, (InfeasibleInstanceError, InfeasibleScheduleError,
                          InvalidInstanceError)):
        status, error = "infeasible", str(exc)
    elif isinstance(exc, Exception):    # one cell, one report
        status, error = "error", f"{type(exc).__name__}: {exc}"
    else:
        raise exc
    SOLVE_SECONDS.observe(elapsed, algorithm=base["algorithm"],
                          status=status)
    return SolveReport(status=status, wall_time_s=elapsed, error=error,
                       extra=_trace_extra(), **base)


def _ok_report(raw, makespan, validated: bool, base: dict, elapsed: float,
               keep_schedule: bool = False) -> SolveReport:
    """Assemble the success report — shared with ``solve_many``."""
    extra = _trace_extra(raw.extra)
    if keep_schedule and raw.schedule is not None:
        from ..io import schedule_to_dict
        try:
            extra["schedule"] = schedule_to_dict(raw.schedule)
        except TypeError:
            pass    # compact schedules have no portable JSON form
    SOLVE_SECONDS.observe(elapsed, algorithm=base["algorithm"], status="ok")
    return SolveReport(status="ok", makespan=makespan, guess=raw.guess,
                       certified_ratio=_ratio(makespan, raw.guess),
                       wall_time_s=elapsed, validated=validated,
                       extra=extra, **base)


def execute(inst: Instance, algorithm: str,
            kwargs: Mapping[str, Any] | None = None, *,
            label: str = "", timeout: float | None = None,
            keep_schedule: bool = False) -> SolveReport:
    """Run one algorithm on one instance; never raises for solver failures.

    ``keep_schedule=True`` attaches the validated schedule to the report
    as ``extra["schedule"]`` (the :mod:`repro.io` JSON encoding), so the
    report stays picklable and JSON-safe; value-only solvers and
    representation-specific compact schedules simply omit it.
    """
    spec = get_solver(algorithm)        # unknown names fail loudly, pre-run
    kwargs = dict(kwargs or {})
    base = _base_fields(spec, inst, label)
    t0 = time.perf_counter()

    def elapsed() -> float:
        return time.perf_counter() - t0

    def _solve_and_validate():
        # inside the timed region on purpose: with a small timeout the
        # injected delay exercises the timeout machinery end to end
        delay = injection.should_fire("solve_delay")
        if delay is not None:
            time.sleep(delay.arg if delay.arg is not None else 0.05)
        raw = spec.solve(inst, **kwargs)
        if raw.schedule is not None:
            return raw, validate(inst, raw.schedule), True
        return raw, raw.makespan, False

    try:
        raw, makespan, validated = _call_with_timeout(_solve_and_validate,
                                                      timeout)
    except BaseException as exc:        # noqa: BLE001 — mapped to a report
        return _failure_report(exc, base, elapsed(), timeout)
    return _ok_report(raw, makespan, validated, base, elapsed(),
                      keep_schedule)


def _execute_task(task: tuple) -> SolveReport:
    """Top-level so it pickles into pool workers."""
    label, inst, name, kwargs, timeout = task
    return execute(inst, name, kwargs, label=label, timeout=timeout)


def _execute_chunk(groups: list[tuple[Instance, list[tuple]]],
                   fast_paths: bool = True,
                   trace_id: str | None = None
                   ) -> list[tuple[int, SolveReport]]:
    """Run one chunk — several cells grouped by instance — in a worker.

    Cells are grouped by instance before submission, so each distinct
    instance crosses the process boundary once per chunk — not once per
    cell — and the worker's memoized ``Instance`` quantities (class
    groupings, digest) are shared by every cell of its group.
    ``fast_paths`` carries the caller's :mod:`repro.core.fastmath`
    switch across the process boundary — workers are forked once and
    reused warm, so the flag must ride with the task, not the fork.
    ``trace_id`` rides along the same way: context variables do not
    cross the process boundary either.
    """
    injection.maybe_kill_worker()
    from ..core.fastmath import use_fast_paths
    out: list[tuple[int, SolveReport]] = []
    with use_fast_paths(fast_paths), _maybe_trace(trace_id):
        for inst, cells in groups:
            out.extend(
                (i, execute(inst, name, kwargs, label=label,
                            timeout=timeout))
                for i, label, name, kwargs, timeout in cells)
    return out


def _execute_chunk_shm(seg_name: str, index: dict, cells: list[tuple],
                       timeout: float | None,
                       fast_paths: bool = True,
                       trace_id: str | None = None
                       ) -> list[tuple[int, SolveReport]]:
    """Run one same-algorithm chunk addressed through shared memory.

    ``cells`` is a list of ``(i, label, digest, name, kwargs)``; the
    instances themselves never cross the process boundary — the worker
    reads them from the published segment (or its digest-keyed decode
    cache, which makes repeated warm batches ship nothing) and solves
    the whole chunk through :func:`~repro.engine.multicell.solve_many`.
    """
    injection.maybe_kill_worker()
    from ..core.fastmath import use_fast_paths
    from . import shm
    from .multicell import solve_many
    ref = shm.SegmentRef(seg_name, index)
    insts = shm.fetch_many(ref, {c[2] for c in cells})
    with use_fast_paths(fast_paths), _maybe_trace(trace_id):
        reps = solve_many([(label, insts[digest], name, kwargs)
                           for _, label, digest, name, kwargs in cells],
                          timeout=timeout)
    return [(c[0], rep) for c, rep in zip(cells, reps)]


def execute_in_worker(inst: Instance, name: str, kwargs: Mapping[str, Any],
                      *, label: str = "", timeout: float | None = None,
                      fast_paths: bool = True,
                      trace_id: str | None = None) -> SolveReport:
    """:func:`execute` for pool submission: applies the shipped
    :mod:`repro.core.fastmath` switch and trace ID in the worker first
    (see :func:`_execute_chunk`)."""
    injection.maybe_kill_worker()
    from ..core.fastmath import use_fast_paths
    with use_fast_paths(fast_paths), _maybe_trace(trace_id):
        return execute(inst, name, kwargs, label=label, timeout=timeout)


def _usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Chunking consults this because chunks beyond the hardware's real
    parallelism cannot overlap — they only add IPC round trips. Tests
    monkeypatch it to exercise both regimes deterministically.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:      # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _packed_chunks(groups: list[list[int]], target: int) -> list[list[int]]:
    """Merge per-group cell lists into exactly ``target`` chunks, largest
    group first into the currently lightest chunk (deterministic LPT).

    Used only when the machine cannot run the fine-grained chunks in
    parallel anyway (``_usable_cores() < workers``): on a core-starved
    box every extra chunk is a pure IPC round trip, so the engine ships
    as few chunks as the hardware can overlap."""
    bins: list[list[int]] = [[] for _ in range(target)]
    sizes = [0] * target
    for g in sorted(groups, key=len, reverse=True):
        pos = sizes.index(min(sizes))
        bins[pos].extend(g)
        sizes[pos] += len(g)
    return [b for b in bins if b]


def _balanced_chunks(groups: list[list[int]], target: int) -> list[list[int]]:
    """Split per-instance cell groups until at least ``target`` chunks
    exist (or every chunk is a single cell), largest chunk first — keeps
    a one-instance x many-algorithms batch parallel while still shipping
    each instance at most a handful of times.

    Chunks stay fine-grained on purpose: the caller bounds concurrency
    by *windowing submissions*, not by merging work up front, so a batch
    mixing cheap and expensive cells keeps its workers busy instead of
    idling behind one statically over-packed chunk."""
    heap = [(-len(g), seq, g) for seq, g in enumerate(groups)]
    heapq.heapify(heap)
    seq = len(groups)
    while len(heap) < target:
        neg, _, g = heap[0]
        if len(g) <= 1:
            break
        heapq.heappop(heap)
        mid = len(g) // 2
        for part in (g[:mid], g[mid:]):
            heapq.heappush(heap, (-len(part), seq, part))
            seq += 1
    return [g for _, _, g in heap]


def _normalize_instances(instances) -> list[tuple[str, Instance]]:
    out = []
    for k, item in enumerate(instances):
        if isinstance(item, Instance):
            out.append((f"instance-{k}", item))
        else:
            label, inst = item
            out.append((str(label), inst))
    if not out:
        raise ValueError("run_batch needs at least one instance")
    return out


def _normalize_algorithms(algorithms) -> list[tuple[str, dict]]:
    out = []
    for item in algorithms:
        if isinstance(item, str):
            name, kwargs = item, {}
        else:
            name, kwargs = item
        out.append((get_solver(name).name, dict(kwargs or {})))
    if not out:
        raise ValueError("run_batch needs at least one algorithm")
    return out


def run_batch(instances: Iterable[Instance | tuple[str, Instance]],
              algorithms: Sequence[str | tuple[str, Mapping[str, Any]]],
              *,
              workers: int | None = None,
              timeout: float | None = None,
              cache: ReportCache | None = None) -> list[SolveReport]:
    """Run every algorithm on every instance; one report per pair.

    Reports come back in deterministic order: instances outermost (in
    input order), algorithms innermost. ``workers`` > 1 fans out over the
    engine's persistent process pool (:mod:`repro.engine.pool` — warm
    across calls, shut down via
    :func:`~repro.engine.pool.shutdown_pool`); ``0``/``1`` runs inline
    in this process. ``timeout``
    bounds each individual run, not the batch. Cached results are
    returned with ``cached=True`` and cost no solver time; only clean
    (``ok``/``infeasible``) outcomes are cached — timeouts and crashes
    are retried on the next batch. Cells that repeat an identical
    (instance content, algorithm, kwargs) triple within one batch are
    solved once; the duplicates share the first cell's report (marked
    ``cached=True``, relabelled per cell).
    """
    insts = _normalize_instances(instances)
    algos = _normalize_algorithms(algorithms)
    explicit_workers = workers is not None
    if workers is None:
        workers = DEFAULT_WORKERS

    tasks: list[tuple] = []
    keys: list[Any] = []
    reports: list[SolveReport | None] = []
    first_index: dict[Any, int] = {}    # intra-batch dedup: key -> cell
    dup_of: dict[int, int] = {}
    for label, inst in insts:
        for name, kwargs in algos:
            i = len(tasks)
            if cache is not None:
                key = cache_key(inst, name, kwargs)
            else:
                # no cache to address: intra-batch dedup only needs a
                # cheap equality key, not the sha256/json cache key
                key = (inst.digest(), name,
                       tuple(sorted((k, repr(v))
                                    for k, v in kwargs.items())))
            hit = cache.get(key) if cache is not None else None
            # hits are relabelled per cell: the cache keys on content,
            # but the report belongs to this batch's row
            reports.append(relabel_hit(hit, label)
                           if hit is not None else None)
            keys.append(key)
            tasks.append((label, inst, name, kwargs, timeout))
            if hit is None:
                if key in first_index:
                    dup_of[i] = first_index[key]
                else:
                    first_index[key] = i

    pending = [i for i, r in enumerate(reports)
               if r is None and i not in dup_of]
    cached_cells = sum(1 for r in reports if r is not None)
    if cached_cells:
        _BATCH_CELLS.inc(cached_cells, outcome="cached")
    if dup_of:
        _BATCH_CELLS.inc(len(dup_of), outcome="deduped")
    if pending:
        _BATCH_CELLS.inc(len(pending), outcome="solved")
    if workers > 1 and len(pending) > 1:
        # Transport: the batch's distinct instances live in one
        # shared-memory segment so chunks ship only (digest, offset)
        # references — instances stop being pickled per chunk. acquire()
        # reuses a live segment when a recent batch already published
        # the same instance set (the warm path publishes nothing at
        # all). When shm is unavailable (platform, big-int m, /dev/shm
        # full) the batch falls back to the pickle transport below.
        distinct: dict[str, Instance] = {}
        for i in pending:
            distinct.setdefault(tasks[i][1].digest(), tasks[i][1])
        seg = shm.acquire(distinct)
        batch_begin()
        try:
            # Chunking. With the segment up, cells group by (algorithm,
            # kwargs): each chunk is one multi-cell dispatch through
            # solve_many's stacked kernels, and the instances it reads
            # are already shared. The pickle fallback keeps the old
            # by-instance grouping so each instance pickles once per
            # chunk. Either way submissions are *windowed* to
            # ``workers`` in-flight chunks: the caller's fan-out stays
            # a hard concurrency cap even when the shared pool is
            # wider. The worker ask is capped by the post-dedupe chunk
            # count, so a batch full of repeats cannot over-provision
            # pool processes (under fork the pool pre-spawns its full
            # width on first use).
            groups: dict[Any, list[int]] = {}
            for i in pending:
                gkey = (tasks[i][2], repr(sorted(tasks[i][3].items()))) \
                    if seg is not None else tasks[i][1].digest()
                groups.setdefault(gkey, []).append(i)
            parallel = min(workers, _usable_cores())
            if parallel < workers and len(groups) > parallel:
                # the hardware cannot overlap more than ``parallel``
                # chunks; merging down to that saves one full IPC round
                # trip per merged-away chunk (solve_many regroups by
                # algorithm inside the worker, so mixed chunks lose no
                # kernel batching)
                chunks = _packed_chunks(list(groups.values()), parallel)
            else:
                chunks = _balanced_chunks(list(groups.values()),
                                          min(workers, len(pending)))
            width = min(workers, len(chunks))
            if explicit_workers and pool_max_workers() > workers \
                    and active_batches() == 1:
                # explicit downsize: a one-off wide batch must not pin
                # pool width forever. Only when this is the sole batch in
                # flight — replacing the executor forks, and forking
                # while sibling batches are mid-submission risks the
                # fork-with-held-locks deadlock (see pool.active_batches)
                get_pool(width, shrink=True)
            fast = fast_paths_enabled()
            # ship the ambient trace with each chunk: contextvars do not
            # cross the process boundary (same reason fast_paths rides
            # along), and the workers' own registries are invisible here
            tid = current_trace_id()
            queue = iter(chunks)
            live: dict = {}     # Future -> chunk, for resubmission

            def submit_chunk(chunk: list[int]) -> None:
                _CHUNK_CELLS.observe(len(chunk))
                if seg is not None:
                    cells = [(i, tasks[i][0], tasks[i][1].digest(),
                              tasks[i][2], tasks[i][3]) for i in chunk]
                    index = {d: seg.index[d]
                             for d in {c[2] for c in cells}}
                    live[submit_task(width, _execute_chunk_shm,
                                     seg.name, index, cells, timeout,
                                     fast, tid)] = chunk
                    return
                by_digest: dict[str, tuple[Instance, list[tuple]]] = {}
                for i in chunk:
                    inst = tasks[i][1]
                    group = by_digest.setdefault(inst.digest(), (inst, []))
                    group[1].append((i, tasks[i][0], tasks[i][2],
                                     tasks[i][3], tasks[i][4]))
                live[submit_task(width, _execute_chunk,
                                 list(by_digest.values()), fast, tid)] = chunk

            def submit_next() -> None:
                chunk = next(queue, None)
                if chunk is not None:
                    submit_chunk(chunk)

            for _ in range(width):
                submit_next()
            rebuilt = False
            while live:
                done, _ = wait(set(live), return_when=FIRST_COMPLETED)
                for fut in done:
                    chunk = live.pop(fut)
                    try:
                        results = fut.result()
                    except BrokenProcessPool:
                        # a worker died mid-chunk. Rebuild the shared
                        # pool once per batch and resubmit everything
                        # still outstanding (chunks whose futures also
                        # broke are still in ``live`` — they ride
                        # along); a second death in the same batch is a
                        # real failure and propagates.
                        if rebuilt:
                            raise
                        rebuilt = True
                        outstanding = [chunk] + list(live.values())
                        live.clear()
                        rebuild_pool(width)
                        # the dying worker cannot have unpinned anything
                        # (segments are parent-owned), but reacquire
                        # re-pins defensively in case a sibling's sweep
                        # released the segment while the pool was down
                        seg = shm.reacquire(seg, distinct)
                        for ch in outstanding:
                            submit_chunk(ch)
                        break
                    for i, rep in results:
                        reports[i] = rep
                        # worker-side observations died with the worker's
                        # registry; re-observe from the returned report
                        SOLVE_SECONDS.observe(rep.wall_time_s,
                                              algorithm=rep.algorithm,
                                              status=rep.status)
                    submit_next()
        finally:
            batch_end()
            shm.unpin(seg)
    else:
        for i in pending:
            reports[i] = _execute_task(tasks[i])

    for i, src in dup_of.items():
        reports[i] = relabel_hit(reports[src], tasks[i][0])

    if cache is not None:
        for i in pending:
            rep = reports[i]
            if is_cacheable(rep):
                cache.put(keys[i], rep)
    return reports      # type: ignore[return-value]
