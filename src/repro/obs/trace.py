"""Trace-context propagation for the whole stack.

One ``trace_id`` identifies a unit of work end to end: generated at the
service's ``/v1`` front door (or wherever :func:`trace_context` is first
entered), carried through the job store, the queue drainers and the
engine via a :class:`contextvars.ContextVar`, shipped across process
boundaries alongside the task payload (context variables do not cross
``fork``/pickle), stamped into ``SolveReport.extra["trace_id"]`` and
echoed back in every ``/v1`` response body and ``X-Trace-Id`` header.

IDs are short hex tokens. Inbound IDs (the ``X-Trace-Id`` request
header) are accepted only when they match :data:`_VALID` — anything
else is replaced with a fresh ID so a hostile client cannot inject
log/exposition content through the trace field.
"""

from __future__ import annotations

import contextvars
import re
import uuid
from contextlib import contextmanager
from typing import Iterator

__all__ = ["TRACE_HEADER", "new_trace_id", "current_trace_id",
           "is_valid_trace_id", "set_trace_id", "reset_trace_id",
           "trace_context"]

#: The HTTP header the service reads (request) and writes (response).
TRACE_HEADER = "X-Trace-Id"

_VALID = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

_TRACE: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace ID."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace ID of the current context (``None`` outside any)."""
    return _TRACE.get()


def is_valid_trace_id(value: object) -> bool:
    """Whether ``value`` is acceptable as an externally supplied ID."""
    return isinstance(value, str) and bool(_VALID.match(value))


def set_trace_id(trace_id: str | None) -> contextvars.Token:
    """Install ``trace_id`` on the current context; pair with
    :func:`reset_trace_id` (the server's per-request plumbing)."""
    return _TRACE.set(trace_id)


def reset_trace_id(token: contextvars.Token) -> None:
    _TRACE.reset(token)


@contextmanager
def trace_context(trace_id: str | None = None) -> Iterator[str]:
    """Run a block under one trace ID (a fresh one when not given)."""
    tid = trace_id if trace_id else new_trace_id()
    token = _TRACE.set(tid)
    try:
        yield tid
    finally:
        _TRACE.reset(token)
