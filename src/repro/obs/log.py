"""Structured JSON logging: one line per event, machine-parseable.

:func:`get_logger` hands out cheap named loggers that emit::

    {"ts": 1754500000.123456, "level": "info", "logger": "repro.service",
     "event": "http_request", "trace_id": "9f2c...", ...fields}

one JSON object per line, to a process-wide stream (``sys.stderr`` by
default). The ``trace_id`` is read from the ambient
:mod:`repro.obs.trace` context at emit time, so any code running under
a request/job/campaign trace stamps its lines without threading the ID
through call signatures.

The module is intentionally global-state simple — a level threshold and
an output stream — because that is exactly what the CLI needs
(``--quiet`` is just a level) and what tests need (swap in a StringIO
via :func:`set_stream`, restore after).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, TextIO

from .trace import current_trace_id

__all__ = ["StructuredLogger", "get_logger", "set_level", "get_level",
           "set_stream", "LEVELS"]

#: Level names to numeric thresholds (stdlib ``logging`` scale).
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_state_lock = threading.Lock()
# library default: warnings only — the ``serve`` CLI raises this to
# "info" (or "warning" under --quiet), and tests pick their own level
_level = LEVELS["warning"]
_stream: TextIO | None = None       # None -> sys.stderr at emit time
_loggers: dict[str, "StructuredLogger"] = {}


def set_level(level: str | int) -> int:
    """Set the global threshold; returns the previous numeric level."""
    global _level
    value = LEVELS[level] if isinstance(level, str) else int(level)
    with _state_lock:
        previous, _level = _level, value
    return previous


def get_level() -> int:
    with _state_lock:
        return _level


def set_stream(stream: TextIO | None) -> TextIO | None:
    """Redirect output (``None`` restores stderr); returns the previous
    stream setting — tests swap in a StringIO and restore after."""
    global _stream
    with _state_lock:
        previous, _stream = _stream, stream
    return previous


class StructuredLogger:
    """A named emitter of structured JSON log lines."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def _emit(self, level: str, event: str,
              fields: dict[str, Any]) -> None:
        if LEVELS[level] < get_level():
            return
        record: dict[str, Any] = {
            "ts": round(time.time(), 6), "level": level,
            "logger": self.name, "event": event,
            "trace_id": current_trace_id(),
        }
        for key in sorted(fields):
            record[key] = fields[key]
        line = json.dumps(record, default=str, separators=(",", ":"))
        with _state_lock:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except ValueError:  # pragma: no cover - stream closed late
                pass

    def log(self, level: str, event: str, **fields: Any) -> None:
        self._emit(level, event, fields)

    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)


def get_logger(name: str) -> StructuredLogger:
    """The (cached) logger for ``name``."""
    with _state_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger
