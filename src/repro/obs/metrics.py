"""Dependency-free metrics: counters, gauges, histograms, exposition.

The process-global :data:`REGISTRY` is the one place every layer of the
stack records into — the HTTP server, the job queue, the report caches,
the shared-memory transport, the process pool and the solver runner all
get-or-create their instruments here, and ``GET /v1/metrics`` renders
the whole registry in the Prometheus text exposition format (0.0.4).

Everything is stdlib: per-metric locks make increments/observations
thread-safe (handler threads, queue drainers and batch collectors all
write concurrently), and :func:`parse_exposition` is a tiny in-repo
parser so tests and CI can assert on the rendered output without a
Prometheus client library.

Instruments are *families*: one name + help + fixed label names, with
one child time series per distinct label-value tuple. Children are
created on first use; reading an untouched child yields 0.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator, Mapping, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
           "DEFAULT_BUCKETS", "CONTENT_TYPE", "parse_exposition"]

#: The content type ``GET /v1/metrics`` answers with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Latency buckets (seconds) sized for this stack: sub-millisecond cache
#: hits up to multi-second PTAS solves.
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_INF = float("inf")


def _escape(value: object) -> str:
    """Escape a label value for the exposition format."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    """Render a sample value: integral floats without the trailing .0."""
    if value == _INF:
        return "+Inf"
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def _labelset(labelnames: Sequence[str],
              values: Sequence[str], extra: str = "") -> str:
    parts = [f'{n}="{_escape(v)}"' for n, v in zip(labelnames, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared family plumbing: name, help, label names, child map."""

    kind = ""

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[n]) for n in self.labelnames)

    def clear(self) -> None:
        """Drop every child series (tests)."""
        with self._lock:
            self._children.clear()

    # subclasses: _zero(), render_samples()


class Counter(_Metric):
    """A monotonically increasing sum."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._children.get(key, 0.0)

    def total(self) -> float:
        """Sum over every child series."""
        with self._lock:
            return sum(self._children.values())

    def render_samples(self) -> Iterator[str]:
        with self._lock:
            items = sorted(self._children.items())
        for key, val in items:
            yield (f"{self.name}{_labelset(self.labelnames, key)} "
                   f"{_fmt(val)}")


class Gauge(_Metric):
    """A value that can go up and down (depths, widths, pin counts)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._children.get(key, 0.0)

    render_samples = Counter.render_samples


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket")
        self.buckets = tuple(bounds)

    def _zero(self) -> list:
        # per-bucket (non-cumulative) counts, +Inf overflow, sum, count
        return [[0] * (len(self.buckets) + 1), 0.0, 0]

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        idx = bisect_left(self.buckets, float(value))
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._zero()
            child[0][idx] += 1
            child[1] += float(value)
            child[2] += 1

    def snapshot(self, **labels: Any) -> dict:
        """One child's state: cumulative bucket counts, sum, count."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key) or self._zero()
            counts, total, count = list(child[0]), child[1], child[2]
        out: dict[str, Any] = {"buckets": {}, "sum": total, "count": count}
        acc = 0
        for bound, n in zip((*self.buckets, _INF), counts):
            acc += n
            out["buckets"][_fmt(bound)] = acc
        return out

    def render_samples(self) -> Iterator[str]:
        with self._lock:
            items = sorted((k, (list(v[0]), v[1], v[2]))
                           for k, v in self._children.items())
        for key, (counts, total, count) in items:
            acc = 0
            for bound, n in zip((*self.buckets, _INF), counts):
                acc += n
                labels = _labelset(self.labelnames, key,
                                   f'le="{_fmt(bound)}"')
                yield f"{self.name}_bucket{labels} {acc}"
            labels = _labelset(self.labelnames, key)
            yield f"{self.name}_sum{labels} {_fmt(total)}"
            yield f"{self.name}_count{labels} {count}"


class MetricsRegistry:
    """Get-or-create home for every metric family in the process.

    Re-asking for an existing name returns the existing instrument
    (help text is kept from the first non-empty registration); asking
    with a different kind or label set is a programming error and
    raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(
                    name, help, labelnames, **kwargs)
            else:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"{name} is a {metric.kind}, not a {cls.kind}")
                if metric.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"{name} has labels {metric.labelnames}, "
                        f"not {tuple(labelnames)}")
                if help and not metric.help:
                    metric.help = help
            return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def families(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        for metric in metrics:
            help_text = metric.help.replace("\\", "\\\\").replace("\n",
                                                                  "\\n")
            lines.append(f"# HELP {metric.name} {help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render_samples())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every child series, keep the families (tests)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.clear()


#: The process-global registry every layer records into and
#: ``GET /v1/metrics`` renders.
REGISTRY = MetricsRegistry()


# --------------------------------------------------------------------- #
# exposition parsing (tests / CI)
# --------------------------------------------------------------------- #

def _parse_labels(body: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(body):
        eq = body.index("=", i)
        name = body[i:eq].strip()
        if body[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {body!r}")
        j = eq + 2
        out: list[str] = []
        while body[j] != '"':
            if body[j] == "\\":
                nxt = body[j + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                j += 2
            else:
                out.append(body[j])
                j += 1
        labels[name] = "".join(out)
        i = j + 1
        if i < len(body) and body[i] == ",":
            i += 1
    return labels


def parse_exposition(text: str) -> tuple[dict[str, str],
                                         dict[tuple[str, frozenset],
                                              float]]:
    """Parse the text exposition format back into data.

    Returns ``(families, samples)``: ``families`` maps family name to
    its TYPE, ``samples`` maps ``(sample_name, frozenset(labels))`` to
    the value — histogram families contribute ``*_bucket``/``*_sum``/
    ``*_count`` sample names. Raises ``ValueError`` on malformed lines,
    which is what makes it a format-validity check for the renderer.
    """
    families: dict[str, str] = {}
    samples: dict[tuple[str, frozenset], float] = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind.strip() not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                raise ValueError(f"bad TYPE line: {line!r}")
            families[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue        # HELP / comments
        brace = line.find("{")
        space = line.find(" ")
        if brace != -1 and (space == -1 or brace < space):
            name = line[:brace]
            end = line.rindex("}")
            labels = _parse_labels(line[brace + 1:end])
            value = float(line[end + 1:].strip())
        else:
            name, _, rest = line.partition(" ")
            labels = {}
            value = float(rest.strip())
        if not name:
            raise ValueError(f"sample line without a name: {line!r}")
        samples[(name, frozenset(labels.items()))] = value
    return families, samples
