"""Observability: metrics registry, structured logs, trace propagation.

Dependency-free (stdlib only), so every layer of the stack — core
engine, service, CLI — can instrument itself without gating on optional
packages. See :mod:`repro.obs.metrics`, :mod:`repro.obs.log` and
:mod:`repro.obs.trace`; the metric-name catalogue lives in the README's
Observability section.
"""

from .log import get_logger, set_level, set_stream
from .metrics import (CONTENT_TYPE, DEFAULT_BUCKETS, REGISTRY, Counter,
                      Gauge, Histogram, MetricsRegistry, parse_exposition)
from .trace import (TRACE_HEADER, current_trace_id, is_valid_trace_id,
                    new_trace_id, trace_context)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "REGISTRY",
    "CONTENT_TYPE", "DEFAULT_BUCKETS", "parse_exposition",
    "get_logger", "set_level", "set_stream",
    "TRACE_HEADER", "current_trace_id", "is_valid_trace_id",
    "new_trace_id", "trace_context",
]
