"""Adversarial instance generators for the differential fuzzer.

Each generator targets a regime where the solvers' case analyses are
known to be delicate — slot budgets exactly at the feasibility border,
``c = 1`` pure partitions, single-class degenerate inputs, machine
counts engineered to produce pathological ``Fraction`` denominators,
heavy-tailed job sizes, and astronomically large ``m`` (the digest's
big-int fallback and the compact splittable representation).

All generators take a ``numpy.random.Generator`` and are deterministic
given it. :func:`draw_case` picks one by weight; the weights favour
small instances because those are the ones the differential oracle can
check against exact optima.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..workloads.generators import _ensure_all_classes

__all__ = ["FuzzCase", "GENERATORS", "draw_case"]


@dataclass(frozen=True)
class FuzzCase:
    """One generated fuzz input: the instance plus its provenance."""

    generator: str
    instance: Instance

    @property
    def tiny(self) -> bool:
        """Small enough for exact ground truth (the differential oracle)."""
        inst = self.instance
        return inst.num_jobs <= 9 and inst.machines <= 4


def _small_shape(rng: np.random.Generator) -> tuple[int, int, int, int]:
    """A (n, C, m, c) shape in the exactly-checkable regime."""
    n = int(rng.integers(2, 9))
    C = int(rng.integers(1, n + 1))
    m = int(rng.integers(1, 5))
    c = int(rng.integers(1, C + 2))
    return n, C, m, c


def _classes(rng: np.random.Generator, n: int, C: int) -> tuple[int, ...]:
    cls = _ensure_all_classes(rng.integers(0, C, size=n), C, rng)
    return tuple(int(u) for u in cls)


def near_infeasible(rng: np.random.Generator) -> Instance:
    """``C`` within one of the slot budget ``c * m`` — feasible-but-tight,
    exactly tight, and provably infeasible shapes in one family (the
    infeasible ones exist on purpose: the taxonomy oracle asserts every
    solver reports them identically)."""
    m = int(rng.integers(1, 4))
    c = int(rng.integers(1, 4))
    C = max(1, c * m + int(rng.integers(-1, 2)))    # budget - 1 .. budget + 1
    n = C + int(rng.integers(0, 4))
    p = tuple(int(x) for x in rng.integers(1, 20, size=n))
    return Instance(p, _classes(rng, n, C), m, c)


def single_slot_partition(rng: np.random.Generator) -> Instance:
    """``c = 1``: every machine runs exactly one class — scheduling
    degenerates to partitioning classes onto machines, the regime where
    greedy class-slot commitments hurt the most."""
    n, C, m, _ = _small_shape(rng)
    C = min(C, m)                                   # keep it feasible
    p = tuple(int(x) for x in rng.integers(1, 30, size=n))
    return Instance(p, _classes(rng, n, C), m, 1)


def single_class(rng: np.random.Generator) -> Instance:
    """``C = 1``: class constraints never bind; every solver must match
    classical makespan scheduling (and McNaughton applies)."""
    n = int(rng.integers(1, 9))
    m = int(rng.integers(1, 5))
    c = int(rng.integers(1, 4))
    p = tuple(int(x) for x in rng.integers(1, 40, size=n))
    return Instance(p, (0,) * n, m, c)


def fraction_stress(rng: np.random.Generator) -> Instance:
    """Prime machine counts and co-prime job sizes so every area bound,
    border and split piece carries an awkward denominator — the shapes
    where exact-rational and scaled-integer arithmetic can drift."""
    m = int(rng.choice([3, 5, 7, 11, 13]))
    n = int(rng.integers(2, 8))
    C = int(rng.integers(1, n + 1))
    c = int(rng.integers(1, 3))
    primes = np.array([1, 2, 3, 5, 7, 11, 13, 17, 19, 23])
    p = tuple(int(x) for x in rng.choice(primes[1:], size=n))
    return Instance(p, _classes(rng, n, C), m, c)


def heavy_tailed(rng: np.random.Generator) -> Instance:
    """Pareto-style job sizes spanning five orders of magnitude: one
    giant job dominating ``pmax`` next to dust-sized fillers."""
    n = int(rng.integers(4, 30))
    C = int(rng.integers(1, min(n, 6) + 1))
    m = int(rng.integers(1, 6))
    c = int(rng.integers(1, C + 1))
    raw = (1.0 / (1.0 - rng.random(size=n))) ** 2.5
    p = tuple(int(min(10**6, max(1, round(x)))) for x in raw)
    return Instance(p, _classes(rng, n, C), m, c)


def huge_m(rng: np.random.Generator) -> Instance:
    """Machine counts past int64: exercises the digest's big-int
    fallback and the splittable solver's compact output mode (the
    paper's ``m`` exponential in ``n`` regime)."""
    m = int(rng.choice(np.array([0, 1, 2])) * 7 + 2) ** 67 \
        + int(rng.integers(0, 1000))
    n = int(rng.integers(1, 7))
    C = int(rng.integers(1, n + 1))
    c = int(rng.integers(1, C + 1))
    p = tuple(int(x) for x in rng.integers(1, 50, size=n))
    return Instance(p, _classes(rng, n, C), m, c)


def tight_budget(rng: np.random.Generator) -> Instance:
    """``C = c * m`` exactly: class slots are maximally scarce; every
    feasible schedule must pack classes perfectly."""
    m = int(rng.integers(1, 4))
    c = int(rng.integers(1, 3))
    C = c * m
    per = int(rng.integers(1, 3))
    n = C * per
    p = tuple(int(x) for x in rng.integers(1, 25, size=n))
    cls = tuple(int(u) for u in np.repeat(np.arange(C), per))
    return Instance(p, cls, m, c)


def large_m_overlap(rng: np.random.Generator) -> Instance:
    """Machine counts in 65..512 with small class structure: past the
    ``milp-*`` machine cap (64) yet inside the ``nfold-*`` solvers'
    class/slot caps — the regime the n-fold path exists for. Kept at
    tiny ``n`` so per-case cost stays bounded even though every guess
    builds and solves a block ILP."""
    m = int(rng.integers(65, 513))
    n = int(rng.integers(2, 7))
    C = int(rng.integers(1, min(n, 3) + 1))
    c = int(rng.integers(1, 3))
    p = tuple(int(x) for x in rng.integers(1, 30, size=n))
    return Instance(p, _classes(rng, n, C), m, c)


def uniform_tiny(rng: np.random.Generator) -> Instance:
    """Unstructured tiny instances — the bread and butter the
    differential oracle checks against exact optima."""
    n, C, m, c = _small_shape(rng)
    p = tuple(int(x) for x in rng.integers(1, 12, size=n))
    return Instance(p, _classes(rng, n, C), m, c)


#: Name -> (generator, draw weight). Weights favour exactly-checkable
#: shapes; the expensive/huge families stay rare but guaranteed.
GENERATORS = {
    "uniform-tiny": (uniform_tiny, 5),
    "near-infeasible": (near_infeasible, 4),
    "single-slot": (single_slot_partition, 3),
    "single-class": (single_class, 2),
    "fraction-stress": (fraction_stress, 3),
    "tight-budget": (tight_budget, 3),
    "heavy-tailed": (heavy_tailed, 2),
    "huge-m": (huge_m, 1),
    "large-m-overlap": (large_m_overlap, 1),
}

_NAMES = list(GENERATORS)
_WEIGHTS = np.array([w for _, w in GENERATORS.values()], dtype=float)
_WEIGHTS /= _WEIGHTS.sum()


def draw_case(rng: np.random.Generator,
              only: tuple[str, ...] | None = None) -> FuzzCase:
    """One weighted-random adversarial case (deterministic given rng).

    ``only`` restricts the draw to the named generator families (relative
    weights preserved) — how the nightly matrix dedicates a leg to one
    regime, e.g. ``("large-m-overlap",)``.
    """
    if only is None:
        names, weights = _NAMES, _WEIGHTS
    else:
        unknown = sorted(set(only) - set(GENERATORS))
        if unknown:
            raise ValueError(f"unknown generator(s) {unknown}; "
                             f"known: {', '.join(GENERATORS)}")
        names = [n for n in _NAMES if n in set(only)]
        weights = np.array([GENERATORS[n][1] for n in names], dtype=float)
        weights /= weights.sum()
    name = names[int(rng.choice(len(names), p=weights))]
    return FuzzCase(name, GENERATORS[name][0](rng))
