"""The committed regression corpus: fuzz findings frozen as JSON files.

Every counterexample the fuzzer ever finds — minimised by
:mod:`repro.fuzz.shrinker` — gets committed under ``tests/corpus/`` and
replayed by ``tests/test_fuzz_corpus.py`` on every CI run, forever. The
file format is deliberately plain::

    {"format": "repro-fuzz-corpus-v1",
     "note": "why this case exists",
     "source": "fuzz --seed 7 (shrunk) | hand-written",
     "oracles": ["reports", "differential"],
     "solvers": ["splittable", "milp-nonpreemptive", ...],
     "seed": 7,
     "instance": {"processing_times": [...], "classes": [...],
                  "machines": 1, "class_slots": 2}}

``oracles`` names entries of :data:`repro.fuzz.oracles.ORACLES`
(``metamorphic-*`` sub-relations replay the whole family); ``solvers``
defaults to the standard fuzz sweep filtered by
:func:`~repro.fuzz.oracles.eligible_solvers`. Replay is deterministic:
the metamorphic transforms draw from ``seed`` — for a fuzzer-found
witness, ``repro fuzz`` records the campaign seed its shrinker
validated under, so replay re-draws the exact failing transform — and
fall back to an instance-digest-derived seed for hand-written cases.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..core.instance import Instance
from ..io import instance_from_dict, instance_to_dict
from .oracles import (DEFAULT_SOLVERS, Violation, eligible_solvers,
                      run_oracle)

__all__ = ["CORPUS_FORMAT", "CorpusCase", "load_corpus_file",
           "replay_case", "replay_corpus_dir", "save_corpus_file"]

CORPUS_FORMAT = "repro-fuzz-corpus-v1"


@dataclass(frozen=True)
class CorpusCase:
    """One committed regression case."""

    instance: Instance
    oracles: tuple[str, ...]
    solvers: tuple[str, ...] = ()       # () = the default sweep
    note: str = ""
    source: str = ""
    seed: int | None = None             # None = derive from the digest
    path: str = ""                      # where it was loaded from

    def to_dict(self) -> dict:
        return {"format": CORPUS_FORMAT, "note": self.note,
                "source": self.source, "oracles": list(self.oracles),
                "solvers": list(self.solvers), "seed": self.seed,
                "instance": instance_to_dict(self.instance)}


def save_corpus_file(path: str, case: CorpusCase) -> str:
    """Write one corpus JSON file (pretty-printed: these get reviewed)."""
    with open(path, "w") as fh:
        json.dump(case.to_dict(), fh, indent=2)
        fh.write("\n")
    return path


def load_corpus_file(path: str) -> CorpusCase:
    with open(path) as fh:
        d = json.load(fh)
    if d.get("format") != CORPUS_FORMAT:
        raise ValueError(f"{path}: not a {CORPUS_FORMAT} file "
                         f"(format={d.get('format')!r})")
    if not d.get("oracles"):
        raise ValueError(f"{path}: corpus case names no oracles")
    seed = d.get("seed")
    return CorpusCase(instance=instance_from_dict(d["instance"]),
                      oracles=tuple(d["oracles"]),
                      solvers=tuple(d.get("solvers") or ()),
                      note=str(d.get("note", "")),
                      source=str(d.get("source", "")),
                      seed=None if seed is None else int(seed), path=path)


def replay_case(case: CorpusCase, session=None) -> list[Violation]:
    """Run the case's oracles; an empty list means the regression stays
    fixed. Deterministic: metamorphic randomness comes from the case's
    recorded seed (the one the fuzzer's shrinker validated the witness
    under), falling back to an instance-digest-derived seed."""
    names = case.solvers or DEFAULT_SOLVERS
    specs = eligible_solvers(case.instance, names)
    seed = case.seed if case.seed is not None \
        else int(case.instance.digest()[:8], 16)
    out: list[Violation] = []
    for oracle in case.oracles:
        out.extend(run_oracle(oracle, case.instance, specs, session,
                              np.random.default_rng(seed)))
    return out


def replay_corpus_dir(dirpath: str,
                      session=None) -> dict[str, list[Violation]]:
    """Replay every ``*.json`` corpus file under ``dirpath``; maps file
    path to its violations (all values empty = corpus green)."""
    results: dict[str, list[Violation]] = {}
    for name in sorted(os.listdir(dirpath)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(dirpath, name)
        results[path] = replay_case(load_corpus_file(path), session)
    return results
