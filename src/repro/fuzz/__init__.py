"""``repro.fuzz`` — the seeded differential-testing subsystem.

Where :mod:`repro.workloads` generates *plausible* instances, this
package generates *adversarial* ones and hunts for the three classes of
bug a certified-approximation library can have:

* **oracle violations** — a solver's makespan beats the optimum, exceeds
  its proven ratio, fails validation, or mislabels an instance
  (:mod:`repro.fuzz.oracles`);
* **path divergence** — the exact-integer fast paths or the process-pool
  backend disagree with the pure-Fraction inline reference;
* **metamorphic breaks** — adding a machine makes the certified bound
  worse, permuting jobs or relabeling classes changes a makespan,
  scaling processing times does not scale the result.

Everything is deterministic given a seed. Counterexamples are minimised
by :mod:`repro.fuzz.shrinker` before being reported, and can be frozen
into :mod:`repro.fuzz.corpus` files that the tier-1 suite replays
forever (``tests/corpus/``). Drive it via ``repro fuzz --seed 7
--count 200`` or :func:`repro.fuzz.runner.run_campaign`.
"""

from .corpus import (CORPUS_FORMAT, CorpusCase, load_corpus_file,
                     replay_case, replay_corpus_dir, save_corpus_file)
from .generators import GENERATORS, FuzzCase, draw_case
from .oracles import ORACLES, Violation, run_oracle
from .runner import FuzzResult, run_campaign
from .shrinker import shrink_instance

__all__ = [
    "CORPUS_FORMAT",
    "CorpusCase",
    "FuzzCase",
    "FuzzResult",
    "GENERATORS",
    "ORACLES",
    "Violation",
    "draw_case",
    "load_corpus_file",
    "replay_case",
    "replay_corpus_dir",
    "run_campaign",
    "run_oracle",
    "save_corpus_file",
    "shrink_instance",
]
