"""The seeded fuzz campaign: generate, check, shrink, report.

:func:`run_campaign` is what ``repro fuzz`` drives. Per case it draws an
adversarial instance (:mod:`repro.fuzz.generators`), runs the solver
sweep once through the caller's :class:`repro.api.Session` — so a
``workers > 0`` session fuzzes the process-pool backend with the same
instances — and feeds the reports to every applicable oracle. The first
failure of each distinct (oracle, solver) pair is minimised by
:mod:`repro.fuzz.shrinker` before it is reported, so what reaches a
human (or a CI artifact) is the smallest known witness.

Determinism: case ``i`` of seed ``s`` draws its *instance* from
``np.random.default_rng([s, i])`` and its oracle transforms from a
fresh ``default_rng(_case_seed(s, i))`` — re-running with the same seed
and count reproduces every instance, transform and violation exactly,
and a recorded witness replays under its single per-case seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..api import Session
from ..obs.log import get_logger
from ..obs.metrics import REGISTRY
from ..obs.trace import trace_context
from .generators import draw_case
from .oracles import (DEFAULT_SOLVERS, ORACLES, PTAS_SOLVERS, Violation,
                      _run_reports, batch_oracle, differential_oracle,
                      eligible_solvers, fastpath_oracle, faults_oracle,
                      metamorphic_oracle, reports_oracle)
from .shrinker import shrink_instance

__all__ = ["FuzzResult", "run_campaign"]

#: Cases above these sizes skip the double-run oracles (fastpath and
#: metamorphic re-solve everything 2-5x).
_DOUBLE_RUN_MAX_JOBS = 64

#: The faults oracle spins up a private store+queue and replays the case
#: under injected faults — expensive, so only every Nth small case.
_FAULTS_EVERY = 5

_log = get_logger("repro.fuzz")

_FUZZ_CASES = REGISTRY.counter(
    "repro_fuzz_cases_total", "Adversarial fuzz cases executed.")
_FUZZ_VIOLATIONS = REGISTRY.counter(
    "repro_fuzz_violations_total", "Oracle violations found, by oracle.",
    labelnames=("oracle",))


@dataclass
class FuzzResult:
    """Outcome of one campaign."""

    seed: int
    cases_run: int = 0
    violations: list[Violation] = field(default_factory=list)
    shrunk: list[Violation] = field(default_factory=list)
    elapsed_s: float = 0.0
    out_of_budget: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations


def _case_seed(seed: int, index: int) -> int:
    """One deterministic integer seed per case. The oracles draw their
    transforms from a *fresh* rng over this value (not the progressed
    generation rng), so a violation found at case ``i`` reproduces under
    ``default_rng(_case_seed(seed, i))`` — which is exactly what the
    shrinker validates with and what corpus replay re-draws from."""
    return seed * 1_000_003 + index


def _shrink_violation(violation: Violation, specs_names, session
                      ) -> Violation:
    """Minimise the violating instance: a candidate still fails when the
    same oracle reports the same (oracle, solver) pair on it, under the
    same per-case seed the violation was found with."""
    oracle = violation.oracle.split("-")[0] \
        if violation.oracle.startswith("metamorphic") else violation.oracle
    check = ORACLES[oracle]
    seed = violation.seed or 0

    def still_fails(cand) -> bool:
        try:
            specs = eligible_solvers(cand, specs_names)
            if not any(s.name == violation.solver for s in specs):
                return False
            found = check(cand, specs, session,
                          np.random.default_rng(seed))
            return any(v.solver == violation.solver
                       and v.oracle == violation.oracle for v in found)
        except Exception:               # noqa: BLE001 — shrink must not die
            return False

    small = shrink_instance(violation.instance, still_fails)
    if small == violation.instance:
        return violation
    # re-derive the violation on the minimised witness so the reported
    # message/details describe what gets committed to the corpus
    for v in check(small, eligible_solvers(small, specs_names), session,
                   np.random.default_rng(seed)):
        if v.solver == violation.solver and v.oracle == violation.oracle:
            return replace(v, seed=violation.seed)
    return violation                    # pragma: no cover - defensive


def run_campaign(seed: int = 0, count: int = 100, *,
                 solvers=None, include_ptas: bool = False,
                 generators=None,
                 session: Session | None = None,
                 time_budget: float | None = None,
                 shrink: bool = True,
                 progress=None) -> FuzzResult:
    """Run ``count`` seeded adversarial cases through every oracle.

    ``session`` carries the execution backend under test (defaults to a
    fresh in-process one; pass ``Session(workers=4)`` to fuzz the
    process-pool fan-out). ``time_budget`` (seconds) stops the campaign
    early — whatever ran is still fully deterministic. ``solvers``
    restricts the sweep to a subset of registry names; ``generators``
    restricts case drawing to the named generator families (how the
    nightly matrix dedicates a leg to e.g. ``large-m-overlap``).
    """
    t0 = time.monotonic()
    session = session or Session()
    names = tuple(solvers) if solvers else DEFAULT_SOLVERS
    if include_ptas:
        names += tuple(s for s in PTAS_SOLVERS if s not in names)
    only = tuple(generators) if generators else None
    result = FuzzResult(seed=seed)
    seen: set[tuple[str, str]] = set()

    # one trace spans the campaign: every solve report and log line it
    # produces carries the same id (both halves of a double-run oracle
    # stamp identically, so report comparisons are unaffected)
    with trace_context():
        _log.info("fuzz_campaign_started", seed=seed, count=count,
                  solvers=len(names))
        for i in range(count):
            if time_budget is not None \
                    and time.monotonic() - t0 > time_budget:
                result.out_of_budget = True
                break
            case = draw_case(np.random.default_rng([seed, i]), only=only)
            case_seed = _case_seed(seed, i)
            inst = case.instance
            specs = eligible_solvers(inst, names)
            if not specs:           # pragma: no cover - names all filtered
                continue

            def rng():
                # every oracle gets a *fresh* generator over the case
                # seed — matching what shrink validation and corpus
                # replay draw from
                return np.random.default_rng(case_seed)

            found: list[Violation] = []
            reports = _run_reports(inst, specs, session)
            found += reports_oracle(inst, specs, session, rng(),
                                    reports=reports)
            found += differential_oracle(inst, specs, session, rng(),
                                         reports=reports)
            if inst.num_jobs <= _DOUBLE_RUN_MAX_JOBS:
                fast_specs = [s for s in specs if s.kind != "exact"]
                found += fastpath_oracle(inst, fast_specs, session, rng())
                found += batch_oracle(inst, fast_specs, session, rng())
                found += metamorphic_oracle(inst, specs, session, rng(),
                                            reports=reports)
                if i % _FAULTS_EVERY == 0 and inst.num_jobs <= 32:
                    found += faults_oracle(inst, fast_specs, session, rng())
            found = [replace(v, seed=case_seed) for v in found]

            result.cases_run += 1
            _FUZZ_CASES.inc()
            if not found:
                if progress is not None and (i + 1) % 25 == 0:
                    progress(f"[fuzz] {i + 1}/{count} cases, "
                             f"{len(result.violations)} violation(s)")
                continue
            result.violations += found
            for violation in found:
                _FUZZ_VIOLATIONS.inc(oracle=violation.oracle)
                _log.warning("fuzz_violation", case=i, oracle=violation.oracle,
                             solver=violation.solver, seed=case_seed)
            for violation in found:
                key = (violation.oracle, violation.solver)
                if key in seen:
                    continue
                seen.add(key)
                if progress is not None:
                    progress(f"[fuzz] case {i} ({case.generator}): "
                             f"{violation}")
                if shrink:
                    small = _shrink_violation(violation, names, session)
                    result.shrunk.append(small)
                    if progress is not None and \
                            small.instance != violation.instance:
                        si = small.instance
                        progress(f"[fuzz]   shrunk to n={si.num_jobs} "
                                 f"C={si.num_classes} m={si.machines} "
                                 f"c={si.class_slots}")
                else:
                    result.shrunk.append(violation)

        result.elapsed_s = time.monotonic() - t0
        _log.info("fuzz_campaign_finished", cases=result.cases_run,
                  violations=len(result.violations),
                  out_of_budget=result.out_of_budget,
                  elapsed_s=round(result.elapsed_s, 6))
    return result
