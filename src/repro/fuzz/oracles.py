"""The fuzzer's oracles: what must *always* hold, for every instance.

Six families, each cheap enough to run thousands of times:

``reports``
    Universal report invariants. A provably infeasible instance
    (``C > c * m``) yields status ``infeasible`` from every solver — the
    uniform taxonomy, the bug class PR 5 unified. A feasible instance
    never yields ``error``/``infeasible`` from a guaranteed solver.
    Every ``ok`` schedule passed the authoritative validator, beats its
    own certified lower bound, and stays within its proven ratio.

``differential``
    Cross-solver ground truth: exact optima (``brute-force`` and the
    ``milp-*`` solvers) sandwich every approximation — ``OPT <=
    makespan <= ratio * OPT`` — and certified guesses never exceed OPT.

``fastpath``
    ``use_fast_paths(False)`` golden equivalence on *random* instances,
    not just committed goldens: the scaled-integer kernels must produce
    byte-identical reports to the pure-Fraction reference.

``batch``
    ``solve_many`` (the engine's stacked multi-cell kernels) must be
    byte-identical to per-cell ``execute`` on random same-algorithm
    chunks built from the case instance and rng-drawn mutations of it.

``metamorphic``
    Structure-preserving transformations with known effect: adding a
    machine never worsens a certified bound, permuting jobs or
    relabeling classes changes nothing, scaling processing times scales
    results exactly (for the solvers whose search is scale-exact; the
    integral binary searches of ``nonpreemptive``/``ffd`` are documented
    exceptions and excluded).

``faults``
    Crash-safety: the case replayed through a job queue under injected
    ``store_commit``/``drainer_loop`` faults must end terminal (never
    stuck) and, when it completes, with reports byte-identical to a
    fault-free run — retries may never change exact Fraction results.

Oracles return :class:`Violation` records (JSON-safe, shrinkable)
instead of raising, so one campaign surfaces every distinct failure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..core.fastmath import use_fast_paths
from ..core.instance import Instance
from ..engine.report import SolveReport
from ..engine.runner import execute
from ..io import instance_to_dict
from ..registry import SolverSpec, get_solver

__all__ = ["Violation", "ORACLES", "run_oracle", "eligible_solvers",
           "DEFAULT_SOLVERS", "ground_truth"]

#: Relative slack for comparisons against float-valued MILP optima.
FLOAT_TOL = 1e-6

#: The default fuzz sweep: every registry solver without an accuracy
#: knob. PTASes join via ``--include-ptas`` (they are MILP-backed and
#: dominate the runtime budget).
DEFAULT_SOLVERS = ("splittable", "preemptive", "nonpreemptive",
                   "milp-nonpreemptive", "milp-splittable",
                   "milp-preemptive", "brute-force",
                   "lpt", "greedy", "ffd", "round-robin", "mcnaughton",
                   "nfold-splittable", "nfold-preemptive",
                   "nfold-nonpreemptive")

PTAS_SOLVERS = ("ptas-splittable", "ptas-preemptive", "ptas-nonpreemptive")

#: Makespan is invariant under job permutation: these solvers place by
#: per-class loads or per-class sorted sizes, where permuting jobs
#: changes nothing observable. ``greedy`` (input-order dependent by
#: design) and ``lpt``/``ffd`` are excluded: their global LPT orders
#: break ties by job index, and two equal-size jobs of *different
#: classes* swapping rank changes the class-slot dynamics — the fuzzer
#: demonstrated an infeasible-to-ok status flip for ``lpt`` on exactly
#: such a tie.
PERMUTATION_INVARIANT = frozenset(
    {"splittable", "preemptive", "nonpreemptive",
     "round-robin", "mcnaughton", "brute-force",
     "nfold-splittable", "nfold-preemptive", "nfold-nonpreemptive"})

#: Makespan is invariant under a bijective relabeling of classes
#: (solvers only ever test class *equality*, never class order; the
#: job-order-sensitive heuristics qualify here because relabeling
#: leaves the job sequence untouched).
RELABEL_INVARIANT = PERMUTATION_INVARIANT | {"greedy", "lpt", "ffd"}

#: Makespan scales exactly when every p_j is multiplied by k. The
#: integral binary searches (``nonpreemptive``, ``ffd``,
#: ``nfold-nonpreemptive``) are excluded: their accepted guess for k*p
#: may legitimately differ from k times the guess for p (the scaled grid
#: is finer), changing the schedule. The fractional n-fold searches
#: qualify: their guess grids anchor at scale-equivariant warm bounds
#: and the rounded IPs are built from size/budget *ratios*, so the
#: accepted guess scales exactly.
SCALING_EXACT = frozenset({"splittable", "preemptive", "lpt", "greedy",
                           "round-robin", "mcnaughton", "brute-force",
                           "nfold-splittable", "nfold-preemptive"})

#: The certified guess T (a lower bound that only improves with more
#: machines) must be non-increasing in m.
GUESS_MONOTONE = frozenset({"splittable", "preemptive", "nonpreemptive"})

#: Exact optima are non-increasing in m.
MAKESPAN_MONOTONE = frozenset({"brute-force", "milp-nonpreemptive",
                               "milp-splittable", "milp-preemptive"})


@dataclass(frozen=True)
class Violation:
    """One oracle failure, carrying everything needed to reproduce it.

    ``seed`` is the rng seed the oracle drew its transforms from when it
    found (and re-validated) this witness — recorded into corpus files
    so replay re-draws exactly the failing transform.
    """

    oracle: str
    solver: str
    message: str
    instance: Instance
    details: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None

    def to_dict(self) -> dict:
        return {"oracle": self.oracle, "solver": self.solver,
                "message": self.message,
                "instance": instance_to_dict(self.instance),
                "details": dict(self.details), "seed": self.seed}

    def __str__(self) -> str:    # pragma: no cover - cosmetic
        inst = self.instance
        return (f"[{self.oracle}] {self.solver} on n={inst.num_jobs} "
                f"C={inst.num_classes} m={inst.machines} "
                f"c={inst.class_slots}: {self.message}")


def eligible_solvers(inst: Instance,
                     names: Sequence[str]) -> list[SolverSpec]:
    """The subset of ``names`` worth running on ``inst``: exponential
    and MILP-backed solvers only at sizes where they terminate promptly;
    ``supports()``-rejected solvers stay in (their ``unsupported``
    reports are themselves under test)."""
    out = []
    for name in names:
        spec = get_solver(name)
        if spec.name == "brute-force" and not (
                inst.num_jobs <= 9 and min(inst.machines,
                                           inst.num_jobs) <= 4):
            continue
        if spec.needs_milp and not (inst.num_jobs <= 12
                                    and min(inst.machines,
                                            inst.num_jobs) <= 8):
            continue
        if spec.needs_nfold and not (inst.num_jobs <= 10
                                     and inst.num_classes <= 3
                                     and inst.class_slots <= 2):
            # every guess builds + solves a block ILP whose size is
            # exponential in (C, c); machine count is deliberately NOT
            # bounded here — large m is the regime these solvers claim
            continue
        out.append(spec)
    return out


def _frac(x) -> Fraction | None:
    return None if x is None else Fraction(x)


def _close_enough(lhs: Fraction, rhs: Fraction, exact: bool) -> bool:
    """``lhs <= rhs``, with relative slack when a float optimum is in
    play (the MILP values for the fractional regimes)."""
    if exact:
        return lhs <= rhs
    return float(lhs) <= float(rhs) * (1 + FLOAT_TOL) + FLOAT_TOL


def ground_truth(inst: Instance, variant: str,
                 session=None) -> tuple[Fraction, bool] | None:
    """``(OPT, exact)`` for ``inst`` in ``variant``, or ``None`` when no
    exact solver can take it. ``exact`` is ``False`` for the fractional
    MILP optima, which carry float rounding."""
    if variant == "nonpreemptive":
        specs = eligible_solvers(inst, ("brute-force",))
        if specs:
            rep = execute(inst, "brute-force")
            if rep.ok:
                return Fraction(rep.makespan), True
        specs = eligible_solvers(inst, ("milp-nonpreemptive",))
        if specs and specs[0].supports(inst):
            rep = execute(inst, "milp-nonpreemptive")
            if rep.ok:
                return Fraction(rep.makespan), True    # integral optimum
        return None
    name = f"milp-{variant}"
    specs = eligible_solvers(inst, (name,))
    if specs and specs[0].supports(inst):
        rep = execute(inst, name)
        if rep.ok:
            return Fraction(rep.makespan), False
    return None


# --------------------------------------------------------------------- #
# oracle: universal report invariants (the taxonomy oracle)
# --------------------------------------------------------------------- #

def _run_reports(inst: Instance, specs: Sequence[SolverSpec],
                 session) -> list[SolveReport]:
    """One report per solver, through the caller's Session (so a
    pool-backed session fuzzes the process-pool fan-out too)."""
    if session is not None:
        return session.solve_batch([inst],
                                   algorithms=[s.name for s in specs])
    return [execute(inst, s.name) for s in specs]


def reports_oracle(inst: Instance, specs: Sequence[SolverSpec],
                   session=None,
                   rng: np.random.Generator | None = None,
                   reports: Sequence[SolveReport] | None = None
                   ) -> list[Violation]:
    """Universal invariants over one report per solver."""
    if reports is None:
        reports = _run_reports(inst, specs, session)
    feasible = inst.is_feasible()
    out: list[Violation] = []
    for spec, rep in zip(specs, reports):
        viol = _check_one_report(inst, spec, rep, feasible)
        if viol is not None:
            out.append(viol)
    return out


def _check_one_report(inst: Instance, spec: SolverSpec, rep: SolveReport,
                      feasible: bool) -> Violation | None:
    def bad(message, **details):
        return Violation("reports", spec.name, message, inst,
                         {"status": rep.status, "error": rep.error,
                          **details})

    if not feasible:
        # the one uniform answer: the *instance* is infeasible — never a
        # crash, never a solver-specific exception leaking through. A
        # solver that cannot even take the instance (mcnaughton when
        # C > c) may say so, but only when its predicate agrees.
        if rep.status == "unsupported" and not spec.supports(inst):
            return None
        if rep.status != "infeasible":
            return bad(f"provably infeasible instance (C > c*m) reported "
                       f"{rep.status!r} instead of 'infeasible'")
        return None
    if rep.status == "timeout":
        return None                     # budget artefact, not a bug
    if rep.status == "unsupported":
        if spec.supports(inst):
            return bad("reported unsupported although supports() accepts "
                       "the instance")
        return None
    if rep.status == "error":
        # no solver — baseline or not — may *crash* on a feasible
        # instance; dead-ending is a status, crashing is a bug
        return bad("solver crashed on a feasible instance")
    if spec.supports(inst) and spec.kind != "baseline" \
            and rep.status != "ok":
        # guaranteed solvers must schedule every feasible instance;
        # only no-guarantee baselines may dead-end
        return bad(f"feasible instance reported {rep.status!r}")
    if rep.status != "ok":
        return None
    if rep.makespan is None:
        return bad("ok report without a makespan")
    schedule_producing = spec.name not in ("milp-nonpreemptive",
                                           "milp-splittable",
                                           "milp-preemptive",
                                           "nfold-splittable",
                                           "nfold-preemptive",
                                           "nfold-nonpreemptive")
    if schedule_producing and not rep.validated:
        return bad("ok schedule skipped the authoritative validator")
    if rep.guess is not None and spec.kind != "ptas":
        # the certified reference value is a lower bound on what the
        # solver achieved (for exact solvers they are equal)
        if Fraction(rep.makespan) < Fraction(rep.guess) * (
                1 - FLOAT_TOL) - FLOAT_TOL:
            return bad(f"makespan {rep.makespan} beat the certified "
                       f"reference value {rep.guess}",
                       makespan=str(rep.makespan), guess=str(rep.guess))
    if spec.ratio is not None and rep.certified_ratio is not None:
        if rep.certified_ratio > float(spec.ratio) + FLOAT_TOL:
            return bad(f"certified ratio {rep.certified_ratio:.6f} "
                       f"exceeds the proven {spec.ratio_label}",
                       certified_ratio=rep.certified_ratio)
    return None


# --------------------------------------------------------------------- #
# oracle: cross-solver differential vs exact ground truth
# --------------------------------------------------------------------- #

def differential_oracle(inst: Instance, specs: Sequence[SolverSpec],
                        session=None,
                        rng: np.random.Generator | None = None,
                        reports: Sequence[SolveReport] | None = None
                        ) -> list[Violation]:
    """Exact optima sandwich every solver of the same variant."""
    if not inst.is_feasible():
        return []                       # the reports oracle owns this case
    opts: dict[str, tuple[Fraction, bool]] = {}
    for variant in {s.variant for s in specs}:
        gt = ground_truth(inst, variant)
        if gt is not None:
            opts[variant] = gt
    if not opts:
        return []
    out: list[Violation] = []
    if reports is None:
        reports = _run_reports(inst, specs, session)
    for spec, rep in zip(specs, reports):
        if spec.variant not in opts or not rep.ok or rep.makespan is None:
            continue
        opt, exact = opts[spec.variant]
        makespan = Fraction(rep.makespan)

        def bad(message, **details):
            out.append(Violation(
                "differential", spec.name, message, inst,
                {"opt": str(opt), "makespan": str(rep.makespan),
                 **details}))

        if not _close_enough(opt, makespan, exact):
            bad(f"makespan {rep.makespan} beats the optimum {opt} "
                f"({spec.variant})")
        if spec.ratio is not None \
                and not _close_enough(makespan, spec.ratio * opt, exact):
            bad(f"makespan {rep.makespan} exceeds {spec.ratio_label} * "
                f"OPT = {spec.ratio * opt}")
        if spec.kind == "ptas":
            eps = Fraction(rep.extra.get("epsilon", "0"))
            if not _close_enough(makespan, (1 + eps) * opt, False):
                bad(f"PTAS makespan {rep.makespan} exceeds (1+eps) * OPT "
                    f"with eps={eps}")
        if rep.guess is not None and spec.kind in ("approx", "exact",
                                                   "baseline"):
            if not _close_enough(Fraction(rep.guess), opt, exact):
                bad(f"certified lower bound {rep.guess} exceeds the "
                    f"optimum {opt}", guess=str(rep.guess))
    return out


# --------------------------------------------------------------------- #
# oracle: fast paths vs pure-Fraction reference
# --------------------------------------------------------------------- #

def _stripped(rep: SolveReport) -> dict:
    d = rep.to_dict()
    d.pop("wall_time_s", None)
    # trace ids are per-run observability metadata, not solver output;
    # both halves of a double-run normally stamp the same ambient id,
    # but never let a context boundary masquerade as a solver mismatch
    if isinstance(d.get("extra"), dict):
        d["extra"] = {k: v for k, v in d["extra"].items()
                      if k != "trace_id"}
    return d


def fastpath_oracle(inst: Instance, specs: Sequence[SolverSpec],
                    session=None,
                    rng: np.random.Generator | None = None
                    ) -> list[Violation]:
    """The scaled-integer fast paths must match the pure-Fraction
    reference byte for byte — on freshly generated instances, not just
    the committed goldens."""
    out: list[Violation] = []
    for spec in specs:
        with use_fast_paths(True):
            fast = _stripped(execute(inst, spec.name))
        with use_fast_paths(False):
            ref = _stripped(execute(inst, spec.name))
        if fast != ref:
            diff = {k: (fast.get(k), ref.get(k))
                    for k in set(fast) | set(ref)
                    if fast.get(k) != ref.get(k)}
            out.append(Violation(
                "fastpath", spec.name,
                f"fast-path report diverges from reference on "
                f"{sorted(diff)}", inst,
                {"diff": {k: [repr(a), repr(b)]
                          for k, (a, b) in diff.items()}}))
    return out


# --------------------------------------------------------------------- #
# oracle: batched solve_many vs per-cell execute
# --------------------------------------------------------------------- #

def batch_oracle(inst: Instance, specs: Sequence[SolverSpec],
                 session=None,
                 rng: np.random.Generator | None = None
                 ) -> list[Violation]:
    """``solve_many`` must be byte-identical to per-cell ``execute``.

    Builds a random same-algorithm chunk — the case instance plus
    rng-drawn mutations of it (permutation, class relabeling, an extra
    machine) — and runs it through the stacked multi-cell kernels and
    through the scalar per-cell path. Any divergence in any report
    field (status, makespan, guess, extras, ...) is a violation: the
    batch transport must be invisible.
    """
    from ..engine.multicell import MULTI_CELL_ALGOS, solve_many
    rng = rng if rng is not None else np.random.default_rng(0)
    variants = [inst, _permuted(inst, rng), _relabeled(inst, rng),
                inst.with_machines(inst.machines + 1)]
    names = [spec.name for spec in specs]
    batched = [n for n in names if n in MULTI_CELL_ALGOS]
    # one foreign algorithm rides along to exercise the per-cell
    # fallback inside the same chunk
    foreign = [n for n in names if n not in MULTI_CELL_ALGOS]
    chunk_names = batched + ([str(rng.choice(foreign))] if foreign else [])
    cells = [(f"cell-{k}-{v}", variant, name, {})
             for v, variant in enumerate(variants)
             for k, name in enumerate(chunk_names)]
    if not cells:
        return []
    many = solve_many(cells)
    out: list[Violation] = []
    for (label, variant, name, kwargs), rep in zip(cells, many):
        ref = _stripped(execute(variant, name, kwargs, label=label))
        got = _stripped(rep)
        if got != ref:
            diff = {k: (got.get(k), ref.get(k))
                    for k in set(got) | set(ref)
                    if got.get(k) != ref.get(k)}
            out.append(Violation(
                "batch", name,
                f"solve_many report diverges from per-cell execute on "
                f"{sorted(diff)} (cell {label})", variant,
                {"diff": {k: [repr(a), repr(b)]
                          for k, (a, b) in diff.items()}}))
    return out


# --------------------------------------------------------------------- #
# oracle: metamorphic properties
# --------------------------------------------------------------------- #

def _permuted(inst: Instance, rng: np.random.Generator) -> Instance:
    perm = rng.permutation(inst.num_jobs)
    return Instance.create(
        [inst.processing_times[j] for j in perm],
        [inst.classes[j] for j in perm],
        inst.machines, inst.class_slots)


def _relabeled(inst: Instance, rng: np.random.Generator) -> Instance:
    relabel = rng.permutation(inst.num_classes)
    return Instance.create(
        list(inst.processing_times),
        [int(relabel[u]) for u in inst.classes],
        inst.machines, inst.class_slots)


def _scaled(inst: Instance, k: int) -> Instance:
    return Instance(tuple(p * k for p in inst.processing_times),
                    inst.classes, inst.machines, inst.class_slots,
                    inst.class_labels)


def metamorphic_oracle(inst: Instance, specs: Sequence[SolverSpec],
                       session=None,
                       rng: np.random.Generator | None = None,
                       reports: Sequence[SolveReport] | None = None
                       ) -> list[Violation]:
    """All four metamorphic relations on one instance. Pass the sweep's
    existing ``reports`` as the baseline to avoid re-solving (and to
    keep the baseline on the session's backend); the transformed twins
    always run inline."""
    rng = rng if rng is not None else np.random.default_rng(0)
    out: list[Violation] = []
    if reports is not None:
        base = {spec.name: rep for spec, rep in zip(specs, reports)}
    else:
        base = {spec.name: execute(inst, spec.name) for spec in specs}

    def compare(relation, other_inst, names, field_of):
        others = {spec.name: execute(other_inst, spec.name)
                  for spec in specs if spec.name in names}
        for name, other in others.items():
            a, b = base[name], other
            if a.status != b.status:
                out.append(Violation(
                    relation, name,
                    f"status changed {a.status!r} -> {b.status!r}", inst,
                    {"transformed": instance_to_dict(other_inst)}))
                continue
            if not a.ok:
                continue
            va, vb = field_of(a), field_of(b)
            if va != vb:
                out.append(Violation(
                    relation, name,
                    f"{relation} violated: {va} -> {vb}", inst,
                    {"transformed": instance_to_dict(other_inst),
                     "before": str(va), "after": str(vb)}))

    # (1) job-permutation invariance
    compare("metamorphic-permutation", _permuted(inst, rng),
            PERMUTATION_INVARIANT, lambda r: _frac(r.makespan))
    # (2) class-relabel invariance
    compare("metamorphic-relabel", _relabeled(inst, rng),
            RELABEL_INVARIANT, lambda r: _frac(r.makespan))
    # (3) processing-time scaling: makespan scales exactly by k
    k = int(rng.choice([2, 3, 7]))
    scaled = {spec.name: execute(_scaled(inst, k), spec.name)
              for spec in specs if spec.name in SCALING_EXACT}
    for name, other in scaled.items():
        a, b = base[name], other
        if a.status != b.status:
            out.append(Violation(
                "metamorphic-scaling", name,
                f"status changed {a.status!r} -> {b.status!r} under "
                f"p *= {k}", inst, {"k": k}))
        elif a.ok and _frac(a.makespan) * k != _frac(b.makespan):
            out.append(Violation(
                "metamorphic-scaling", name,
                f"makespan {a.makespan} * {k} != {b.makespan}", inst,
                {"k": k, "before": str(a.makespan),
                 "after": str(b.makespan)}))
    # (4) machine-count monotonicity: certified bounds never worsen
    more = inst.with_machines(inst.machines + 1)
    grown = {spec.name: execute(more, spec.name) for spec in specs
             if spec.name in GUESS_MONOTONE | MAKESPAN_MONOTONE}
    for name, other in grown.items():
        a = base[name]
        if not (a.ok and other.ok):
            continue
        if name in GUESS_MONOTONE \
                and _frac(other.guess) > _frac(a.guess):
            out.append(Violation(
                "metamorphic-machines", name,
                f"certified guess grew with an extra machine: "
                f"{a.guess} -> {other.guess}", inst,
                {"before": str(a.guess), "after": str(other.guess)}))
        if name in MAKESPAN_MONOTONE and not _close_enough(
                _frac(other.makespan), _frac(a.makespan),
                name == "brute-force"):
            out.append(Violation(
                "metamorphic-machines", name,
                f"optimum grew with an extra machine: "
                f"{a.makespan} -> {other.makespan}", inst,
                {"before": str(a.makespan), "after": str(other.makespan)}))
    return out


# --------------------------------------------------------------------- #
# oracle: retries under injected faults change nothing
# --------------------------------------------------------------------- #

def faults_oracle(inst: Instance, specs: Sequence[SolverSpec],
                  session=None,
                  rng: np.random.Generator | None = None
                  ) -> list[Violation]:
    """Replaying the instance through a faulting job queue must yield
    reports byte-identical to a clean inline run.

    Spins up an in-memory :class:`~repro.service.store.JobStore` +
    :class:`~repro.service.queue.JobQueue` with a short lease and an
    rng-seeded ``store_commit`` + ``drainer_loop`` fault plan, submits
    the case, and lets supervision (reclaim, backoff, drainer respawn)
    carry the job to a terminal state. A job that ends ``done`` must
    match the fault-free reports exactly — a crashed-and-retried solve
    may never change an exact Fraction result; quarantined/failed ends
    are legitimate under injected faults. A job still non-terminal at
    the deadline is the violation this oracle exists to catch.
    """
    from ..faults import injection
    from ..service.queue import JobQueue
    from ..service.store import TERMINAL_STATUSES, JobStore

    rng = rng if rng is not None else np.random.default_rng(0)
    names = [spec.name for spec in specs
             if not spec.needs_milp and not spec.needs_nfold
             and spec.name != "brute-force"][:3]
    if not names or not inst.is_feasible():
        return []

    def canon(rep: SolveReport) -> dict:
        d = _stripped(rep)
        d.pop("cached", None)   # a retry may hit the cache a prior
        return d                # attempt filled; the clean run cannot

    with injection.disabled():
        clean = [canon(execute(inst, name, label="faults"))
                 for name in names]

    seed = int(rng.integers(2 ** 31))
    prev = injection.configure("store_commit:0.4,drainer_loop:0.25",
                               seed=seed)
    store = JobStore(":memory:")
    queue = JobQueue(store, drainers=1, lease_seconds=0.2,
                     reclaim_interval=0.02, retry_backoff_base=0.01,
                     retry_backoff_cap=0.05, max_attempts=8)
    out: list[Violation] = []
    try:
        queue.start()
        job = queue.submit(inst, [(n, {}) for n in names], label="faults")
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            rec = store.get_job(job.id)
            if rec.status in TERMINAL_STATUSES:
                break
            time.sleep(0.01)
        else:
            rec = store.get_job(job.id)
        if rec.status not in TERMINAL_STATUSES:
            out.append(Violation(
                "faults", names[0],
                f"job stuck {rec.status!r} after 30s under injected "
                f"faults (attempts {rec.attempts}/{rec.max_attempts})",
                inst, {"seed": seed, "status": rec.status}))
        elif rec.status == "done":
            got = [canon(rep) for rep in store.reports_for(job.id)]
            for name, g, c in zip(names, got, clean):
                if g != c:
                    diff = {k: (g.get(k), c.get(k))
                            for k in set(g) | set(c)
                            if g.get(k) != c.get(k)}
                    out.append(Violation(
                        "faults", name,
                        f"retried report diverges from the clean run on "
                        f"{sorted(diff)}", inst,
                        {"seed": seed,
                         "diff": {k: [repr(a), repr(b)]
                                  for k, (a, b) in diff.items()}}))
        # quarantined/failed: legitimate under a 40% commit-fault plan
    finally:
        queue.stop(wait=True, grace=5.0)
        injection.configure(prev)
        store.close()
    return out


#: Oracle registry: what ``repro fuzz``, the corpus replayer and the
#: tests dispatch through. Metamorphic sub-relations share one entry —
#: a corpus case recorded under any ``metamorphic-*`` name replays the
#: whole family.
ORACLES: dict[str, Callable[..., list[Violation]]] = {
    "reports": reports_oracle,
    "differential": differential_oracle,
    "fastpath": fastpath_oracle,
    "batch": batch_oracle,
    "metamorphic": metamorphic_oracle,
    "faults": faults_oracle,
}


def run_oracle(name: str, inst: Instance, specs: Sequence[SolverSpec],
               session=None,
               rng: np.random.Generator | None = None) -> list[Violation]:
    """Run one oracle (family) by name."""
    key = name.split("-")[0] if name.startswith("metamorphic") else name
    try:
        oracle = ORACLES[key]
    except KeyError:
        raise ValueError(f"unknown oracle {name!r}; one of: "
                         f"{', '.join(sorted(ORACLES))}") from None
    return oracle(inst, specs, session, rng)
