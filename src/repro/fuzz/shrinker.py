"""Counterexample minimisation.

A raw fuzz failure is a 30-job instance with six-digit processing times;
the committed regression corpus wants the 3-job essence. The shrinker
greedily applies structure-preserving reductions — drop jobs, merge
classes, shrink processing times, remove machines, tighten slots — and
keeps any reduction under which the caller's predicate (\"does the
violation still reproduce?\") holds, until a fixpoint.

Deterministic: candidates are tried in a fixed order, so the same
failure always shrinks to the same witness.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..core.errors import InvalidInstanceError
from ..core.instance import Instance

__all__ = ["shrink_instance"]


def _cost(inst: Instance) -> tuple:
    """Lexicographic size: fewer jobs beats everything, then smaller
    loads, machines, classes, slots."""
    return (inst.num_jobs, inst.total_load, inst.machines,
            inst.num_classes, inst.class_slots)


def _rebuild(processing_times, classes, machines,
             class_slots) -> Instance | None:
    """Build a candidate, re-canonicalising class labels; ``None`` when
    the reduction produced an invalid shape (e.g. no jobs left)."""
    if not processing_times or machines < 1 or class_slots < 1:
        return None
    try:
        return Instance.create(list(processing_times), list(classes),
                               machines, class_slots)
    except InvalidInstanceError:    # pragma: no cover - defensive
        return None


def _candidates(inst: Instance) -> Iterator[Instance]:
    """All one-step reductions of ``inst``, most aggressive first."""
    p, cls = inst.processing_times, inst.classes
    n, m, c = inst.num_jobs, inst.machines, inst.class_slots

    # drop half the jobs (front / back), then single jobs
    if n > 1:
        half = n // 2
        for keep in ((slice(half, None)), (slice(None, half))):
            cand = _rebuild(p[keep], cls[keep], m, c)
            if cand is not None:
                yield cand
        for j in range(n):
            cand = _rebuild(p[:j] + p[j + 1:], cls[:j] + cls[j + 1:], m, c)
            if cand is not None:
                yield cand

    # shrink the machine count (big steps first)
    for target in (1, m // 2, m - 1):
        if 1 <= target < m:
            cand = _rebuild(p, cls, target, c)
            if cand is not None:
                yield cand

    # tighten the class-slot count
    for target in (1, c - 1):
        if 1 <= target < c:
            cand = _rebuild(p, cls, m, target)
            if cand is not None:
                yield cand

    # merge each class into class 0 (halves the label space quickly)
    for u in range(1, inst.num_classes):
        merged = [0 if x == u else x for x in cls]
        cand = _rebuild(p, merged, m, c)
        if cand is not None:
            yield cand

    # shrink processing times: all-to-1, then halve the largest
    if any(x > 1 for x in p):
        cand = _rebuild([1] * n, cls, m, c)
        if cand is not None:
            yield cand
        j = max(range(n), key=lambda i: p[i])
        cand = _rebuild(p[:j] + (max(1, p[j] // 2),) + p[j + 1:], cls, m, c)
        if cand is not None:
            yield cand


def shrink_instance(inst: Instance,
                    still_fails: Callable[[Instance], bool],
                    max_checks: int = 400) -> Instance:
    """The smallest instance (by :func:`_cost`) reachable from ``inst``
    through reductions under which ``still_fails`` keeps returning True.

    ``still_fails`` is called at most ``max_checks`` times; it must be
    deterministic and must never raise (wrap oracle re-runs in a
    try/except that returns False).
    """
    current = inst
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for cand in _candidates(current):
            if checks >= max_checks:
                break
            if _cost(cand) >= _cost(current):
                continue
            checks += 1
            if still_fails(cand):
                current = cand
                improved = True
                break                   # restart from the smaller witness
    return current
