"""Empirical approximation-ratio measurement.

The ratio experiments (T4, T5, T6, P1-P3 in DESIGN.md) sweep workloads,
run an algorithm, and divide its makespan by ground truth — the exact
optimum where instances are small enough, a certified lower bound
otherwise (which can only over-estimate the ratio, keeping the check
conservative).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.instance import Instance

__all__ = ["RatioObservation", "RatioReport", "measure_ratios"]


@dataclass(frozen=True)
class RatioObservation:
    instance_label: str
    makespan: float
    baseline: float          # OPT or a certified lower bound

    @property
    def ratio(self) -> float:
        return self.makespan / self.baseline if self.baseline else float("inf")


@dataclass
class RatioReport:
    algorithm: str
    bound: float                      # the paper's guaranteed ratio
    observations: list[RatioObservation] = field(default_factory=list)
    baseline_is_exact: bool = True

    def add(self, obs: RatioObservation) -> None:
        self.observations.append(obs)

    @property
    def max_ratio(self) -> float:
        return max((o.ratio for o in self.observations), default=0.0)

    @property
    def mean_ratio(self) -> float:
        if not self.observations:
            return 0.0
        return sum(o.ratio for o in self.observations) / len(self.observations)

    def within_bound(self, tol: float = 1e-9) -> bool:
        return self.max_ratio <= self.bound + tol

    def summary(self) -> str:
        kind = "OPT" if self.baseline_is_exact else "LB"
        return (f"{self.algorithm}: n={len(self.observations)} vs {kind}  "
                f"max={self.max_ratio:.4f}  mean={self.mean_ratio:.4f}  "
                f"bound={self.bound:.4f}  "
                f"{'OK' if self.within_bound() else 'VIOLATED'}")


def measure_ratios(algorithm: str, bound: float,
                   instances: Iterable[tuple[str, Instance]],
                   run: Callable[[Instance], float],
                   baseline: Callable[[Instance], float],
                   baseline_is_exact: bool = True) -> RatioReport:
    """Run ``run`` over labelled instances, dividing by ``baseline``."""
    report = RatioReport(algorithm=algorithm, bound=bound,
                         baseline_is_exact=baseline_is_exact)
    for label, inst in instances:
        mk = float(run(inst))
        base = float(baseline(inst))
        report.add(RatioObservation(label, mk, base))
    return report
