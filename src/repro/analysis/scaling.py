"""Running-time scaling measurement (experiments R1 / R2).

The paper claims O(n^2 log n) for the splittable/preemptive constant-factor
algorithms, O(n^2 log^2 n) for the non-preemptive one, and only
*logarithmic* dependence on the machine count ``m`` in the splittable
case. These helpers time an algorithm over a grid and fit the polynomial
exponent on a log-log scale so the benches can report "measured exponent
vs. paper exponent".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["ScalingPoint", "ScalingFit", "time_over_grid", "fit_exponent"]


@dataclass(frozen=True)
class ScalingPoint:
    x: float           # problem size (n, or log m)
    seconds: float


@dataclass(frozen=True)
class ScalingFit:
    exponent: float    # slope of log(time) vs log(x)
    intercept: float
    points: tuple[ScalingPoint, ...]

    def summary(self, claimed: float) -> str:
        return (f"measured exponent {self.exponent:.2f} "
                f"(paper: ~{claimed:g}, log factors blur the fit) over "
                f"{len(self.points)} sizes")


def time_over_grid(sizes: Sequence[int],
                   make_input: Callable[[int], object],
                   run: Callable[[object], object],
                   repeats: int = 3) -> list[ScalingPoint]:
    """Best-of-``repeats`` wall time of ``run`` for each size.

    Input construction is excluded from the timing.
    """
    points = []
    for size in sizes:
        arg = make_input(size)
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run(arg)
            best = min(best, time.perf_counter() - t0)
        points.append(ScalingPoint(float(size), best))
    return points


def fit_exponent(points: Sequence[ScalingPoint]) -> ScalingFit:
    """Least-squares slope of log(seconds) against log(x)."""
    xs = np.log([p.x for p in points])
    ys = np.log([max(p.seconds, 1e-9) for p in points])
    slope, intercept = np.polyfit(xs, ys, 1)
    return ScalingFit(exponent=float(slope), intercept=float(intercept),
                      points=tuple(points))
