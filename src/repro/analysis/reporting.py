"""Fixed-width table rendering for benchmark and engine output.

The bench files print paper-vs-measured tables in a uniform format so that
EXPERIMENTS.md can quote them verbatim; :func:`render_reports` and
:func:`reports_to_csv` render the execution engine's
:class:`~repro.engine.report.SolveReport` batches for the CLI.
"""

from __future__ import annotations

import csv
import io
import json
from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine.report import SolveReport

__all__ = ["format_table", "experiment_header", "render_reports",
           "reports_to_csv"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    cols = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != cols:
            raise ValueError("row width mismatch")
        cells.append([f"{v:.4f}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[k]) for r in cells) for k in range(cols)]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for r in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def experiment_header(exp_id: str, paper_artifact: str, expectation: str) -> str:
    return (f"=== {exp_id}: {paper_artifact} ===\n"
            f"expected shape: {expectation}")


def _num(x) -> str:
    if x is None:
        return "-"
    return f"{float(Fraction(x)):.6g}"


def render_reports(reports: Sequence["SolveReport"],
                   title: str | None = None) -> str:
    """One fixed-width row per :class:`SolveReport` in a batch."""
    rows = []
    for r in reports:
        note = "cached" if r.cached else (r.error[:40] if r.error else "")
        rows.append([r.instance_label or r.instance_digest[:8], r.algorithm,
                     r.status, _num(r.makespan),
                     "-" if r.certified_ratio is None
                     else f"{r.certified_ratio:.4f}",
                     r.proven_ratio or "-", f"{r.wall_time_s * 1e3:.1f}",
                     note])
    return format_table(["instance", "algorithm", "status", "makespan",
                         "ratio", "proven", "ms", "note"], rows, title=title)


#: Flat column order for CSV export (``extra`` is JSON-encoded last).
CSV_FIELDS = ("instance_label", "algorithm", "variant", "status", "makespan",
              "guess", "certified_ratio", "proven_ratio", "wall_time_s",
              "validated", "cached", "error", "instance_digest", "extra")


def reports_to_csv(reports: Sequence["SolveReport"]) -> str:
    """CSV export of a batch; fractions use the exact "num/den" encoding."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(CSV_FIELDS)
    for r in reports:
        d = r.to_dict()
        writer.writerow([json.dumps(d[k]) if k == "extra" else d[k]
                         for k in CSV_FIELDS])
    return buf.getvalue()
