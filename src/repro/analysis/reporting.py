"""Fixed-width table rendering for benchmark output.

The bench files print paper-vs-measured tables in a uniform format so that
EXPERIMENTS.md can quote them verbatim.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "experiment_header"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    cols = len(headers)
    cells = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != cols:
            raise ValueError("row width mismatch")
        cells.append([f"{v:.4f}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[k]) for r in cells) for k in range(cols)]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for r in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def experiment_header(exp_id: str, paper_artifact: str, expectation: str) -> str:
    return (f"=== {exp_id}: {paper_artifact} ===\n"
            f"expected shape: {expectation}")
