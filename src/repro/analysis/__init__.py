"""Empirical analysis: ratios, scaling fits, figure regeneration, tables."""

from .figures import (figure1_layout, figure2_repacking, figure3_exchange,
                      render_preemptive, render_rows)
from .ratio import RatioObservation, RatioReport, measure_ratios
from .reporting import experiment_header, format_table
from .scaling import ScalingFit, ScalingPoint, fit_exponent, time_over_grid

__all__ = [
    "figure1_layout",
    "figure2_repacking",
    "figure3_exchange",
    "render_rows",
    "render_preemptive",
    "RatioObservation",
    "RatioReport",
    "measure_ratios",
    "ScalingPoint",
    "ScalingFit",
    "time_over_grid",
    "fit_exponent",
    "experiment_header",
    "format_table",
]
