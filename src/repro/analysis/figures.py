"""Regeneration of the paper's figures as ASCII art / structural traces.

The paper contains five figures, all illustrative rather than empirical:

* Figure 1 — round robin example (10 classes, 4 machines),
* Figure 2 — the preemptive repacking shift of Algorithm 2,
* Figure 3 — the class-pair exchange for huge machine counts,
* Figure 4 — dissolving a configuration into modules and jobs,
* Figure 5 — the flow network of Lemma 16.

This module regenerates 1–3 from the actual algorithms (the bench files
assert the structural properties each figure illustrates); 4 and 5 are
exercised by their bench files via the PTAS internals.
"""

from __future__ import annotations

from fractions import Fraction

from ..approx.round_robin import round_robin_rows
from ..core.instance import Instance
from ..core.schedule import PreemptiveSchedule, SplittableSchedule

__all__ = ["figure1_layout", "render_rows", "figure2_repacking",
           "figure3_exchange", "render_preemptive"]


def figure1_layout(num_classes: int = 10, num_machines: int = 4,
                   sizes: list[int] | None = None
                   ) -> tuple[list[list[int]], str]:
    """The round robin layout of Figure 1.

    The paper numbers classes 1..10 by non-ascending total processing time
    and shows machine 1 receiving classes 1, 5, 9; machine 2: 2, 6, 10; etc.
    Returns the per-round rows plus an ASCII rendering.
    """
    if sizes is None:
        # strictly decreasing sizes so the numbering is unambiguous
        sizes = list(range(2 * num_classes, 0, -2))[:num_classes]
    rows = round_robin_rows(sizes, num_machines)
    lines = []
    header = "".join(f"  m{k+1:<4}" for k in range(num_machines))
    lines.append(header)
    for row in rows:
        cells = []
        for k in range(num_machines):
            if k < len(row):
                cells.append(f"  {row[k] + 1:<4} ")
            else:
                cells.append("       ")
        lines.append("".join(cells))
    return rows, "\n".join(lines)


def render_rows(schedule: SplittableSchedule, inst: Instance,
                width: int = 40) -> str:
    """ASCII bars of machine loads with class annotations."""
    makespan = schedule.makespan()
    if makespan == 0:
        return "(empty schedule)"
    lines = []
    for i in schedule.used_machines:
        load = schedule.load(i)
        bar = "#" * max(1, int(width * load / makespan))
        classes = sorted(schedule.classes_on(i, inst))
        lines.append(f"m{i:<3} |{bar:<{width}}| load={float(load):8.2f} "
                     f"classes={classes}")
    return "\n".join(lines)


def render_preemptive(schedule: PreemptiveSchedule, inst: Instance) -> str:
    """Timeline rendering: each machine lists its pieces in time order."""
    lines = []
    for i in schedule.used_machines:
        segs = [f"[{float(p.start):.1f},{float(p.end):.1f})j{p.job}"
                for p in schedule.pieces_on(i)]
        lines.append(f"m{i}: " + " ".join(segs))
    return "\n".join(lines)


def figure2_repacking() -> tuple[Instance, PreemptiveSchedule, str]:
    """An instance exhibiting Algorithm 2's repacking (Figure 2).

    One heavy class is cut into pieces of size exactly ``T``; the pieces
    above the first class of each machine are shifted to start at ``T``.
    Returns the instance, the produced schedule and a timeline rendering.
    """
    from ..approx.preemptive import solve_preemptive
    # heavy class 0 (load 40 across jobs of size 10 <= T), plus 7 smaller
    # classes; m = 4, c = 2: class 0 must be cut, triggering the shift.
    p = [10, 10, 10, 10] + [9, 8, 7, 6, 5, 4, 3]
    cls = [0, 0, 0, 0] + list(range(1, 8))
    inst = Instance(tuple(p), tuple(cls), machines=4, class_slots=2)
    res = solve_preemptive(inst)
    return inst, res.schedule, render_preemptive(res.schedule, inst)


def figure3_exchange(load_u1_i1: Fraction, load_u2_i1: Fraction,
                     load_u1_i2: Fraction, load_u2_i2: Fraction
                     ) -> dict[str, dict[str, Fraction]]:
    """The exchange of Figure 3 / Theorem 11.

    Two machines ``i1``, ``i2`` run the same class pair ``(u1, u2)``. Move
    *all* of ``u1`` from the machine where it is smallest (w.l.o.g. ``i1``)
    to ``i2`` and move ``p(i1, u1)`` units of ``u2`` back. Afterwards both
    machines keep their loads, ``u1`` vanishes from ``i1``, and no machine
    uses more class slots than before. Returns the new per-machine loads.
    """
    loads = {("i1", "u1"): Fraction(load_u1_i1),
             ("i1", "u2"): Fraction(load_u2_i1),
             ("i2", "u1"): Fraction(load_u1_i2),
             ("i2", "u2"): Fraction(load_u2_i2)}
    # w.l.o.g. p(i1, u1) minimal — otherwise relabel
    key = min(loads, key=lambda k: loads[k])
    src_m = key[0]
    src_u = key[1]
    dst_m = "i2" if src_m == "i1" else "i1"
    oth_u = "u2" if src_u == "u1" else "u1"
    moved = loads[(src_m, src_u)]
    new = dict(loads)
    new[(dst_m, src_u)] += moved
    new[(src_m, src_u)] = Fraction(0)
    new[(dst_m, oth_u)] -= moved
    new[(src_m, oth_u)] += moved
    return {
        "before": {f"{m}.{u}": loads[(m, u)] for m, u in loads},
        "after": {f"{m}.{u}": new[(m, u)] for m, u in new},
    }
