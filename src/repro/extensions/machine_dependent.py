"""Machine-dependent class slots (the paper's Section 5 open direction).

The paper closes by pointing at the variant where each machine ``i`` has
its own slot count ``c_i`` (Chen et al. give an EPTAS for the one-job-per-
class case). This module implements the natural generalisations of the
paper's machinery to heterogeneous slot vectors:

* :class:`HeterogeneousInstance` — an instance with a slot vector.
* :func:`solve_splittable_hetero` — the Algorithm-1 framework generalised:
  the guess test compares the sub-class count against ``sum_i c_i`` and the
  allotment fills machines by descending slot count, preserving the
  2-approximation argument (Lemma 3 is slot-oblivious; the counting bound
  ``sum_u ceil(P_u/T) <= sum_i c_i`` remains the exact feasibility
  obstruction for cutting classes).
* :func:`solve_nonpreemptive_hetero` — the 7/3 framework with the same
  change plus slot-aware round robin.
* :func:`opt_nonpreemptive_hetero` — exact MILP ground truth.

These are *extensions beyond the paper's theorems*; tests certify
feasibility always and measure ratios empirically against the exact MILP.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from ..approx.lpt import lpt_partition
from ..approx.splitting import split_classes
from ..core.bounds import nonpreemptive_class_count
from ..core.errors import InvalidInstanceError, SolverError
from ..core.instance import Instance
from ..core.schedule import NonPreemptiveSchedule, SplittableSchedule

__all__ = [
    "HeterogeneousInstance",
    "solve_splittable_hetero",
    "solve_nonpreemptive_hetero",
    "opt_nonpreemptive_hetero",
]


@dataclass(frozen=True)
class HeterogeneousInstance:
    """CCS with a per-machine class-slot vector ``c_0..c_{m-1}``."""

    base: Instance            # machines/class_slots of base are ignored
    slot_vector: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.slot_vector) < 1:
            raise InvalidInstanceError("need at least one machine")
        if any(c < 1 for c in self.slot_vector):
            raise InvalidInstanceError("every machine needs >= 1 class slot")

    @staticmethod
    def create(processing_times, classes, slot_vector) -> \
            "HeterogeneousInstance":
        slot_vector = tuple(int(c) for c in slot_vector)
        if not slot_vector:
            raise InvalidInstanceError("need at least one machine")
        base = Instance.create(processing_times, classes,
                               machines=len(slot_vector),
                               class_slots=max(slot_vector))
        return HeterogeneousInstance(base, slot_vector)

    @property
    def machines(self) -> int:
        return len(self.slot_vector)

    @property
    def total_slots(self) -> int:
        return sum(self.slot_vector)

    def homogeneous(self) -> Instance:
        """The relaxation with every machine at the maximum slot count."""
        return self.base.with_machines(self.machines)


def _slot_aware_round_robin(sizes: list[Fraction | int],
                            slot_vector: tuple[int, ...]) -> list[list[int]]:
    """Fill machines in descending slot order, one item per remaining slot
    per round. With equal slot vectors this degenerates to plain round
    robin, and Lemma 3's proof carries over round by round."""
    order = sorted(range(len(sizes)), key=lambda i: (-Fraction(sizes[i]), i))
    machine_order = sorted(range(len(slot_vector)),
                           key=lambda i: -slot_vector[i])
    remaining = list(slot_vector)
    assign: list[list[int]] = [[] for _ in slot_vector]
    it = iter(order)
    done = False
    while not done:
        progressed = False
        for i in machine_order:
            if remaining[i] <= 0:
                continue
            item = next(it, None)
            if item is None:
                done = True
                break
            assign[i].append(item)
            remaining[i] -= 1
            progressed = True
        if not progressed:
            if next(it, None) is not None:
                raise InvalidInstanceError(
                    "not enough class slots for all sub-classes")
            done = True
    return assign


def solve_splittable_hetero(hinst: HeterogeneousInstance
                            ) -> tuple[SplittableSchedule, Fraction]:
    """2-approximation framework with a heterogeneous slot budget.

    Returns ``(schedule, guess)`` with makespan at most
    ``area + T <= 2 T`` whenever every round places at most one sub-class
    per machine pass (as in Lemma 3).
    """
    inst = hinst.base
    loads = inst.class_loads()
    budget = hinst.total_slots
    if inst.num_classes > budget:
        raise InvalidInstanceError("infeasible: C exceeds the slot budget")
    area = Fraction(inst.total_load, hinst.machines)

    # smallest feasible border against the *summed* budget
    from ..approx.borders import smallest_feasible_border
    border = smallest_feasible_border(loads, hinst.machines, budget)
    if border is None:
        raise InvalidInstanceError("infeasible: no border fits the budget")
    T = max(area, border)

    subs = split_classes(inst, T)
    if len(subs) > budget:
        # the counting bound uses ceil(P_u/T) <= per-machine availability;
        # with heterogeneous slots the bound can be loose — fall back to
        # one size up (doubling preserves the 2T argument on the guess)
        while len(subs) > budget:
            T *= 2
            subs = split_classes(inst, T)
    sizes = [s.load for s in subs]
    assign = _slot_aware_round_robin(sizes, hinst.slot_vector)
    sched = SplittableSchedule(hinst.machines)
    for i, items in enumerate(assign):
        for item in items:
            for job, amount in subs[item].pieces:
                sched.assign(i, job, amount)
    return sched, T


def solve_nonpreemptive_hetero(hinst: HeterogeneousInstance
                               ) -> tuple[NonPreemptiveSchedule, int]:
    """7/3-framework generalised to a slot vector; returns (schedule, T)."""
    inst = hinst.base
    budget = hinst.total_slots
    if inst.num_classes > budget:
        raise InvalidInstanceError("infeasible: C exceeds the slot budget")
    per_class = [[inst.processing_times[j] for j in inst.jobs_of_class(u)]
                 for u in range(inst.num_classes)]

    def counts(T: int) -> list[int] | None:
        out = []
        total = 0
        for pjs in per_class:
            cu = nonpreemptive_class_count(pjs, T)
            out.append(cu)
            total += cu
            if total > budget:
                return None
        return out

    lo = max(inst.pmax, ceil(Fraction(inst.total_load, hinst.machines)))
    hi = inst.total_load
    if counts(hi) is None:  # pragma: no cover - budget >= C guarantees this
        raise InvalidInstanceError("no feasible guess")
    while lo < hi:
        mid = (lo + hi) // 2
        if counts(mid) is not None:
            hi = mid
        else:
            lo = mid + 1
    T = hi
    cu = counts(T)
    assert cu is not None

    groups: list[list[int]] = []
    group_loads: list[int] = []
    for u, pjs in enumerate(per_class):
        jobs = inst.jobs_of_class(u)
        for part in lpt_partition(pjs, cu[u]):
            if part:
                groups.append([jobs[i] for i in part])
                group_loads.append(sum(pjs[i] for i in part))
    assign = _slot_aware_round_robin(group_loads, hinst.slot_vector)
    sched = NonPreemptiveSchedule(inst.num_jobs, hinst.machines)
    for i, items in enumerate(assign):
        for item in items:
            for j in groups[item]:
                sched.assign(j, i)
    return sched, T


def validate_hetero_nonpreemptive(hinst: HeterogeneousInstance,
                                  sched: NonPreemptiveSchedule) -> int:
    """Feasibility check honouring the per-machine slot vector."""
    inst = hinst.base
    if sched.num_jobs != inst.num_jobs:
        raise InvalidInstanceError("job count mismatch")
    for j, i in enumerate(sched.assignment):
        if i < 0:
            raise InvalidInstanceError(f"job {j} unassigned")
    for i, classes in sched.classes_per_machine(inst).items():
        if len(classes) > hinst.slot_vector[i]:
            raise InvalidInstanceError(
                f"machine {i} uses {len(classes)} classes but has "
                f"{hinst.slot_vector[i]} slots")
    return sched.makespan(inst)


def opt_nonpreemptive_hetero(hinst: HeterogeneousInstance) -> int:
    """Exact optimum via MILP (small instances only)."""
    inst = hinst.base
    n, m, C = inst.num_jobs, hinst.machines, inst.num_classes
    if m > 16 or n > 40:
        raise SolverError("exact hetero MILP limited to small instances")
    p = inst.processing_times
    nz, ny = n * m, C * m
    nvar = nz + ny + 1
    Tix = nvar - 1

    def z(j, i):
        return j * m + i

    def y(u, i):
        return nz + u * m + i

    rows = []
    for j in range(n):
        rows.append(({z(j, i): 1.0 for i in range(m)}, 1.0, 1.0))
    for i in range(m):
        coeffs = {z(j, i): float(p[j]) for j in range(n)}
        coeffs[Tix] = -1.0
        rows.append((coeffs, -np.inf, 0.0))
    for j in range(n):
        for i in range(m):
            rows.append(({z(j, i): 1.0, y(inst.classes[j], i): -1.0},
                         -np.inf, 0.0))
    for i in range(m):
        rows.append(({y(u, i): 1.0 for u in range(C)}, -np.inf,
                     float(hinst.slot_vector[i])))

    A = lil_matrix((len(rows), nvar))
    lo = np.empty(len(rows))
    hi = np.empty(len(rows))
    for r, (coeffs, a, b) in enumerate(rows):
        for k, v in coeffs.items():
            A[r, k] = v
        lo[r], hi[r] = a, b
    c_vec = np.zeros(nvar)
    c_vec[Tix] = 1.0
    integrality = np.ones(nvar)
    integrality[Tix] = 0
    vlo = np.zeros(nvar)
    vhi = np.ones(nvar)
    vhi[Tix] = float(sum(p))
    vlo[Tix] = float(max(p))
    res = milp(c=c_vec, constraints=LinearConstraint(A.tocsr(), lo, hi),
               integrality=integrality, bounds=Bounds(vlo, vhi))
    if res.status != 0 or res.x is None:
        raise SolverError(f"hetero MILP failed: {res.message!r}")
    return int(round(res.x[Tix]))
