"""Extensions beyond the paper's theorems (its Section 5 directions)."""

from .machine_dependent import (HeterogeneousInstance,
                                opt_nonpreemptive_hetero,
                                solve_nonpreemptive_hetero,
                                solve_splittable_hetero,
                                validate_hetero_nonpreemptive)

__all__ = [
    "HeterogeneousInstance",
    "solve_splittable_hetero",
    "solve_nonpreemptive_hetero",
    "opt_nonpreemptive_hetero",
    "validate_hetero_nonpreemptive",
]
