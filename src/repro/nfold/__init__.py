"""N-fold integer programming substrate (Section 2 of the paper)."""

from .milp_backend import milp_available, solve_milp
from .solvers import augment, brick_solutions, kernel_candidates, solve_dp
from .structure import NFold
from .theory import NFoldParameters, parameters_of, theorem1_log10_bound

__all__ = [
    "NFold",
    "milp_available",
    "solve_milp",
    "solve_dp",
    "augment",
    "brick_solutions",
    "kernel_candidates",
    "NFoldParameters",
    "parameters_of",
    "theorem1_log10_bound",
]
