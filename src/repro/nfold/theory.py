"""Symbolic parameter and running-time bounds for N-folds (Theorem 1).

The paper solves its configuration ILPs with the algorithm of
Jansen–Lassota–Rohwedder [15]:

    ``(r s Δ)^{O(r^2 s + s^2)} * L * N t * log^{O(1)}(N t)``

We cannot know the hidden constants, so :func:`theorem1_log10_bound`
instantiates the bound with all O(.) constants set to 1 — a *shape*
indicator used by ``benchmarks/bench_nfold.py`` to report measured solve
times next to how the theoretical bound scales. Values are returned in
log10 because they overflow floats quickly.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log10

from .structure import NFold

__all__ = ["NFoldParameters", "parameters_of", "theorem1_log10_bound"]


@dataclass(frozen=True)
class NFoldParameters:
    """The quantities Theorem 1 depends on."""

    N: int
    r: int
    s: int
    t: int
    delta: int
    L: int  # encoding length of the largest input number

    def describe(self) -> str:
        return (f"N={self.N} r={self.r} s={self.s} t={self.t} "
                f"Δ={self.delta} L={self.L}")


def parameters_of(nf: NFold) -> NFoldParameters:
    """Extract Theorem 1's parameters from a concrete N-fold."""
    largest = max(
        [nf.delta,
         int(abs(nf.b_global).max()) if nf.r else 1,
         max((int(abs(v).max()) for v in nf.b_local if v.size), default=1),
         int(abs(nf.lower).max()) if nf.num_variables else 1,
         int(abs(nf.upper).max()) if nf.num_variables else 1,
         int(abs(nf.w).max()) if nf.num_variables else 1])
    L = max(1, int(largest).bit_length())
    return NFoldParameters(N=nf.N, r=nf.r, s=nf.s, t=nf.t, delta=nf.delta,
                           L=L)


def theorem1_log10_bound(params: NFoldParameters) -> float:
    """log10 of ``(r s Δ)^(r^2 s + s^2) * L * N t * log(N t)`` (all hidden
    constants set to 1)."""
    r, s, d = max(params.r, 1), max(params.s, 1), max(params.delta, 1)
    nt = max(params.N * params.t, 2)
    exponent = r * r * s + s * s
    return (exponent * log10(r * s * d)
            + log10(params.L)
            + log10(nt)
            + log10(log10(nt) + 1))
