"""The N-fold integer program data structure (Section 2 of the paper).

An N-fold ILP is ``min { w x | A x = b, l <= x <= u, x integral }`` where

::

        [ A_1  A_2 ... A_N ]
    A = [ B_1   0  ...  0  ]
        [  0   B_2 ...  0  ]
        [  0    0  ... B_N ]

with ``A_i`` of size ``r x t`` (globally uniform constraints) and ``B_i`` of
size ``s x t`` (locally uniform constraints). Variables split into ``N``
bricks of length ``t``.

This module holds the structure itself plus validation and assembly;
solvers live in :mod:`repro.nfold.solvers` (block-structure dynamic
programming and Graver-style augmentation) and
:mod:`repro.nfold.milp_backend` (HiGHS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import InvalidInstanceError

__all__ = ["NFold"]


def _as_int_matrix(M, rows_name: str) -> np.ndarray:
    arr = np.asarray(M, dtype=np.int64)
    if arr.ndim != 2:
        raise InvalidInstanceError(f"{rows_name} must be a 2-D matrix")
    return arr


@dataclass
class NFold:
    """An N-fold integer linear program.

    Parameters
    ----------
    A_blocks, B_blocks:
        Length-``N`` lists of integer matrices of shapes ``r x t`` and
        ``s x t`` respectively. ``r`` or ``s`` may be zero.
    b_global:
        Right-hand side for the ``r`` globally uniform constraints.
    b_local:
        Length-``N`` list of right-hand sides (length ``s`` each).
    lower, upper:
        Variable bounds, length ``N * t`` (brick-major). The paper's
        Theorem 1 requires finite bounds; we enforce that.
    w:
        Objective, length ``N * t``; minimised.
    """

    A_blocks: list[np.ndarray]
    B_blocks: list[np.ndarray]
    b_global: np.ndarray
    b_local: list[np.ndarray]
    lower: np.ndarray
    upper: np.ndarray
    w: np.ndarray

    def __post_init__(self) -> None:
        self.A_blocks = [_as_int_matrix(M, "A block") for M in self.A_blocks]
        self.B_blocks = [_as_int_matrix(M, "B block") for M in self.B_blocks]
        if len(self.A_blocks) != len(self.B_blocks) or not self.A_blocks:
            raise InvalidInstanceError(
                "need the same positive number of A and B blocks")
        r, t = self.A_blocks[0].shape
        s = self.B_blocks[0].shape[0]
        for M in self.A_blocks:
            if M.shape != (r, t):
                raise InvalidInstanceError("inconsistent A block shapes")
        for M in self.B_blocks:
            if M.shape != (s, t):
                raise InvalidInstanceError("inconsistent B block shapes")
        self.b_global = np.asarray(self.b_global, dtype=np.int64).reshape(r)
        self.b_local = [np.asarray(v, dtype=np.int64).reshape(s)
                        for v in self.b_local]
        if len(self.b_local) != self.N:
            raise InvalidInstanceError("need one local rhs per block")
        nvar = self.N * t
        self.lower = np.asarray(self.lower, dtype=np.int64).reshape(nvar)
        self.upper = np.asarray(self.upper, dtype=np.int64).reshape(nvar)
        self.w = np.asarray(self.w, dtype=np.int64).reshape(nvar)
        if np.any(self.lower > self.upper):
            raise InvalidInstanceError("lower bound exceeds upper bound")

    # ------------------------------------------------------------------ #
    # uniform constructor
    # ------------------------------------------------------------------ #

    @staticmethod
    def uniform(A: np.ndarray, B: np.ndarray, N: int, b_global, b_local,
                lower, upper, w) -> "NFold":
        """N-fold with identical blocks ``A_i = A`` and ``B_i = B``.

        ``b_local`` may be a single vector (shared) or a list of ``N``
        vectors; ``lower``/``upper``/``w`` may be single bricks (length
        ``t``, tiled) or full vectors.
        """
        A = _as_int_matrix(A, "A")
        B = _as_int_matrix(B, "B")
        t = A.shape[1]

        def tile(v, name):
            arr = np.asarray(v, dtype=np.int64).ravel()
            if arr.size == t:
                return np.tile(arr, N)
            if arr.size == N * t:
                return arr
            raise InvalidInstanceError(f"{name} must have length t or N*t")

        bl = np.asarray(b_local, dtype=np.int64)
        if bl.ndim == 1:
            b_local_list = [bl.copy() for _ in range(N)]
        else:
            b_local_list = [bl[i] for i in range(N)]
        return NFold([A.copy() for _ in range(N)],
                     [B.copy() for _ in range(N)],
                     b_global, b_local_list,
                     tile(lower, "lower"), tile(upper, "upper"),
                     tile(w, "w"))

    # ------------------------------------------------------------------ #
    # parameters
    # ------------------------------------------------------------------ #

    @property
    def N(self) -> int:
        return len(self.A_blocks)

    @property
    def r(self) -> int:
        return self.A_blocks[0].shape[0]

    @property
    def s(self) -> int:
        return self.B_blocks[0].shape[0]

    @property
    def t(self) -> int:
        return self.A_blocks[0].shape[1]

    @property
    def num_variables(self) -> int:
        return self.N * self.t

    @property
    def delta(self) -> int:
        """Largest absolute entry of the constraint matrix (the paper's Δ)."""
        d = 1
        for M in self.A_blocks + self.B_blocks:
            if M.size:
                d = max(d, int(np.abs(M).max()))
        return d

    def brick(self, x: np.ndarray, i: int) -> np.ndarray:
        """View of brick ``i`` of a solution vector."""
        return x[i * self.t:(i + 1) * self.t]

    # ------------------------------------------------------------------ #
    # assembly & checking
    # ------------------------------------------------------------------ #

    def assemble_dense(self) -> tuple[np.ndarray, np.ndarray]:
        """Full constraint matrix and rhs (for small problems / MILP)."""
        N, r, s, t = self.N, self.r, self.s, self.t
        A = np.zeros((r + N * s, N * t), dtype=np.int64)
        for i in range(N):
            A[:r, i * t:(i + 1) * t] = self.A_blocks[i]
            A[r + i * s: r + (i + 1) * s, i * t:(i + 1) * t] = self.B_blocks[i]
        b = np.concatenate([self.b_global] + self.b_local) if (r + N * s) \
            else np.zeros(0, dtype=np.int64)
        return A, b

    def residual(self, x: np.ndarray) -> np.ndarray:
        """``A x - b`` (zero iff the equality constraints hold)."""
        x = np.asarray(x, dtype=np.int64).reshape(self.num_variables)
        parts = [sum(self.A_blocks[i] @ self.brick(x, i)
                     for i in range(self.N)) - self.b_global]
        for i in range(self.N):
            parts.append(self.B_blocks[i] @ self.brick(x, i) - self.b_local[i])
        return np.concatenate(parts)

    def is_feasible(self, x: np.ndarray) -> bool:
        x = np.asarray(x, dtype=np.int64).reshape(self.num_variables)
        if np.any(x < self.lower) or np.any(x > self.upper):
            return False
        return not np.any(self.residual(x))

    def objective(self, x: np.ndarray) -> int:
        x = np.asarray(x, dtype=np.int64).reshape(self.num_variables)
        return int(self.w @ x)
