"""HiGHS (via scipy) backend for N-fold ILPs.

The production path of the PTAS and the ``nfold-*`` registry solvers:
exact, robust, and fast for the block sizes a laptop run produces.
Returns ``None`` for proven infeasibility — the binary searches use that
to reject makespan guesses.

SciPy is imported lazily on the first solve, never at module import:
a container without the MILP backend can still import the registry,
probe ``supports()`` and run the structure-exploiting DP solvers. A
solve attempted without the backend raises
:class:`~repro.core.errors.UnsupportedInstanceError`, which the engine
taxonomy maps to the ``unsupported`` report status.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from ..core.errors import SolverError, UnsupportedInstanceError
from .structure import NFold

__all__ = ["solve_milp", "milp_available"]

#: Lazy backend cache: the imported (Bounds, LinearConstraint, milp,
#: csr_matrix) tuple, or ``None`` before the first solve. ``_BACKEND_ERROR``
#: records a failed import so we neither retry it per guess nor lie in
#: :func:`milp_available`.
_BACKEND: tuple | None = None
_BACKEND_ERROR: str | None = None


def _load_backend() -> tuple:
    global _BACKEND, _BACKEND_ERROR
    from ..faults import injection
    if injection.should_fire("milp_probe") is not None:
        # fault site: the backend flakes for this one solve — maps to the
        # ``unsupported`` report status, like a container without scipy
        raise UnsupportedInstanceError(
            "N-fold MILP backend unavailable: injected fault (milp_probe)")
    if _BACKEND is None and _BACKEND_ERROR is None:
        try:
            from scipy.optimize import Bounds, LinearConstraint, milp
            from scipy.sparse import csr_matrix
            _BACKEND = (Bounds, LinearConstraint, milp, csr_matrix)
        except ImportError as exc:      # pragma: no cover - env-dependent
            _BACKEND_ERROR = str(exc)
    if _BACKEND is None:
        raise UnsupportedInstanceError(
            "N-fold MILP backend unavailable: scipy could not be "
            f"imported ({_BACKEND_ERROR})")
    return _BACKEND


def milp_available() -> bool:
    """Whether the HiGHS/scipy backend can be loaded, without loading it.

    Cheap enough for ``supports()`` predicates: after a failed import it
    answers from the recorded error; before any import it only probes the
    module finder.
    """
    if _BACKEND is not None:
        return True
    if _BACKEND_ERROR is not None:
        return False
    return importlib.util.find_spec("scipy") is not None


def solve_milp(nf: NFold) -> np.ndarray | None:
    """Solve an N-fold ILP exactly; ``None`` iff infeasible."""
    Bounds, LinearConstraint, milp, csr_matrix = _load_backend()
    A, b = nf.assemble_dense()
    nvar = nf.num_variables
    if A.shape[0] == 0:
        # no equality constraints: box-minimise the objective directly
        x = np.where(nf.w >= 0, nf.lower, nf.upper)
        return x.astype(np.int64)
    constraints = LinearConstraint(csr_matrix(A), b.astype(float),
                                   b.astype(float))
    res = milp(c=nf.w.astype(float), constraints=constraints,
               integrality=np.ones(nvar),
               bounds=Bounds(nf.lower.astype(float), nf.upper.astype(float)))
    if res.status == 2:  # infeasible
        return None
    if res.status != 0 or res.x is None:
        raise SolverError(f"HiGHS failed on N-fold: status={res.status} "
                          f"message={res.message!r}")
    x = np.round(res.x).astype(np.int64)
    if not nf.is_feasible(x):
        raise SolverError("HiGHS returned a non-integral/infeasible point "
                          "after rounding")
    return x
