"""HiGHS (via scipy) backend for N-fold ILPs.

The production path of the PTAS: exact, robust, and fast for the block
sizes a laptop PTAS run produces. Returns ``None`` for proven infeasibility
— the PTAS binary search uses that to reject makespan guesses.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from ..core.errors import SolverError
from .structure import NFold

__all__ = ["solve_milp"]


def solve_milp(nf: NFold) -> np.ndarray | None:
    """Solve an N-fold ILP exactly; ``None`` iff infeasible."""
    A, b = nf.assemble_dense()
    nvar = nf.num_variables
    if A.shape[0] == 0:
        # no equality constraints: box-minimise the objective directly
        x = np.where(nf.w >= 0, nf.lower, nf.upper)
        return x.astype(np.int64)
    constraints = LinearConstraint(csr_matrix(A), b.astype(float),
                                   b.astype(float))
    res = milp(c=nf.w.astype(float), constraints=constraints,
               integrality=np.ones(nvar),
               bounds=Bounds(nf.lower.astype(float), nf.upper.astype(float)))
    if res.status == 2:  # infeasible
        return None
    if res.status != 0 or res.x is None:
        raise SolverError(f"HiGHS failed on N-fold: status={res.status} "
                          f"message={res.message!r}")
    x = np.round(res.x).astype(np.int64)
    if not nf.is_feasible(x):
        raise SolverError("HiGHS returned a non-integral/infeasible point "
                          "after rounding")
    return x
