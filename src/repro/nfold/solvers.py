"""Structure-exploiting N-fold solvers.

Two solvers that use the block structure directly, independent of any MILP
library — they are the reproduction of the paper's algorithmic substrate
(De Loera et al. / Hemmecke–Onn–Romanchuk line of work) at laptop scale:

* :func:`solve_dp` — exact dynamic programming over bricks. The global
  constraints couple bricks only through the running sum
  ``sum_{i<=k} A_i x^(i) in Z^r``; enumerate each brick's local solution
  set ``{x : B_i x = b_i, l <= x <= u}`` once and sweep a DP whose states
  are reachable running sums. Time ``O(N * states * brick_solutions)`` —
  linear in ``N`` like the real N-fold algorithms, exponential only in the
  small block dimensions. This is the solver the PTAS uses when asked for
  the faithful N-fold path.

* :func:`augment` — Graver-style best-step augmentation: given a feasible
  ``x``, repeatedly find an augmenting step ``g`` (``A g = 0``, bricks from
  the kernel candidates of the ``B_i`` with bounded norm) and a step length
  ``lam`` maximising the improvement ``lam * w g``, until no improving step
  exists. With exact Graver candidate sets this converges to the optimum
  (Graver-best augmentation theory); we enumerate kernel vectors up to a
  configurable infinity-norm bound ``rho`` and certify optimality in tests
  by comparison against :func:`solve_dp`.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ..core.errors import CapacityExceededError, SolverError
from .structure import NFold

__all__ = ["solve_dp", "augment", "brick_solutions", "kernel_candidates"]


def brick_solutions(nf: NFold, i: int, cap: int = 2_000_000
                    ) -> list[np.ndarray]:
    """Enumerate all integral ``x`` with ``B_i x = b_i`` and brick bounds.

    Enumeration is a depth-first search over coordinates with interval
    pruning on the remaining achievable range of each local constraint row.
    """
    t = nf.t
    B = nf.B_blocks[i]
    bl = nf.b_local[i]
    lo = nf.lower[i * t:(i + 1) * t]
    hi = nf.upper[i * t:(i + 1) * t]
    s = nf.s

    # Precompute, per suffix, the min/max achievable contribution to each
    # local row so we can prune partial assignments.
    suf_min = np.zeros((t + 1, s), dtype=np.int64)
    suf_max = np.zeros((t + 1, s), dtype=np.int64)
    for k in range(t - 1, -1, -1):
        col = B[:, k] if s else np.zeros(0, dtype=np.int64)
        a = col * lo[k]
        b2 = col * hi[k]
        suf_min[k] = suf_min[k + 1] + np.minimum(a, b2)
        suf_max[k] = suf_max[k + 1] + np.maximum(a, b2)

    out: list[np.ndarray] = []
    x = np.zeros(t, dtype=np.int64)

    def rec(k: int, acc: np.ndarray) -> None:
        if len(out) > cap:
            raise CapacityExceededError("brick solutions", len(out), cap)
        if k == t:
            if s == 0 or np.array_equal(acc, bl):
                out.append(x.copy())
            return
        for v in range(int(lo[k]), int(hi[k]) + 1):
            x[k] = v
            nacc = acc + (B[:, k] * v if s else 0)
            if s:
                rem_lo = nacc + suf_min[k + 1]
                rem_hi = nacc + suf_max[k + 1]
                if np.any(bl < rem_lo) or np.any(bl > rem_hi):
                    continue
            rec(k + 1, nacc if s else acc)

    rec(0, np.zeros(s, dtype=np.int64))
    return out


def solve_dp(nf: NFold, state_cap: int = 5_000_000) -> np.ndarray | None:
    """Exact N-fold solve by DP over bricks; ``None`` iff infeasible.

    States after brick ``i`` are the reachable values of
    ``sum_{k<=i} A_k x^(k)``; each maps to the cheapest prefix achieving it
    (plus a back-pointer for reconstruction).
    """
    N, t = nf.N, nf.t
    # state -> (cost, prev_state, brick_solution_index)
    states: dict[tuple[int, ...], tuple[int, tuple[int, ...] | None, int]] = {
        tuple([0] * nf.r): (0, None, -1)}
    all_bricks: list[list[np.ndarray]] = []
    back: list[dict[tuple[int, ...], tuple[int, tuple[int, ...] | None, int]]] = []

    for i in range(N):
        sols = brick_solutions(nf, i)
        all_bricks.append(sols)
        if not sols:
            return None
        contribs = [nf.A_blocks[i] @ sol for sol in sols]
        costs = [int(nf.w[i * t:(i + 1) * t] @ sol) for sol in sols]
        new_states: dict[tuple[int, ...],
                         tuple[int, tuple[int, ...] | None, int]] = {}
        for st, (cost, _, _) in states.items():
            base = np.array(st, dtype=np.int64)
            for idx, (contrib, dcost) in enumerate(zip(contribs, costs)):
                nst = tuple(base + contrib)
                ncost = cost + dcost
                cur = new_states.get(nst)
                if cur is None or ncost < cur[0]:
                    new_states[nst] = (ncost, st, idx)
        if len(new_states) > state_cap:
            raise CapacityExceededError("DP states", len(new_states),
                                        state_cap)
        back.append(new_states)
        states = new_states

    target = tuple(int(v) for v in nf.b_global)
    if target not in states:
        return None
    # reconstruct
    x = np.zeros(nf.num_variables, dtype=np.int64)
    st: tuple[int, ...] | None = target
    for i in range(N - 1, -1, -1):
        cost, prev, idx = back[i][st]  # type: ignore[index]
        x[i * t:(i + 1) * t] = all_bricks[i][idx]
        st = prev
    return x


def kernel_candidates(B: np.ndarray, lower_brick: np.ndarray,
                      upper_brick: np.ndarray, rho: int,
                      cap: int = 2_000_000) -> list[np.ndarray]:
    """Nonzero integral ``v`` with ``B v = 0`` and ``||v||_inf <= rho``.

    These serve as per-brick building blocks of augmenting steps. For true
    Graver-best augmentation ``rho`` must dominate the Graver norm bound of
    ``B``; callers pick ``rho`` and tests certify against the DP optimum.
    """
    t = B.shape[1]
    s = B.shape[0]
    out: list[np.ndarray] = []
    span = range(-rho, rho + 1)
    for combo in product(span, repeat=t):
        if all(v == 0 for v in combo):
            continue
        v = np.array(combo, dtype=np.int64)
        if s == 0 or not np.any(B @ v):
            out.append(v)
            if len(out) > cap:
                raise CapacityExceededError("kernel candidates", len(out), cap)
    return out


def augment(nf: NFold, x0: np.ndarray, rho: int = 1,
            max_rounds: int = 10_000,
            stats: dict | None = None) -> np.ndarray:
    """Graver-style best-step augmentation from a feasible point ``x0``.

    Each round searches for a step ``g`` with ``A g = 0`` (bricks drawn from
    ``kernel_candidates`` plus the zero brick, combined through a DP over
    the running global sum, which must return to zero) and a step length,
    taking the pair maximising the total improvement. Stops when no
    improving step exists.

    ``stats``, when given, receives ``rounds`` (augmentation rounds run,
    counting the final no-improvement round) and ``improvement`` (total
    objective gain) — the observability hook the ``nfold-*`` registry
    solvers feed into the augmentation-iterations histogram.
    """
    x = np.asarray(x0, dtype=np.int64).copy()
    if not nf.is_feasible(x):
        raise SolverError("augment() requires a feasible starting point")
    N, t, r = nf.N, nf.t, nf.r
    cands = [kernel_candidates(nf.B_blocks[i],
                               nf.lower[i * t:(i + 1) * t],
                               nf.upper[i * t:(i + 1) * t], rho)
             for i in range(N)]
    if stats is not None:
        stats.setdefault("rounds", 0)
        stats.setdefault("improvement", 0)

    spread = int((nf.upper - nf.lower).max()) if nf.num_variables else 0
    for _ in range(max_rounds):
        if stats is not None:
            stats["rounds"] += 1
        best_gain = 0
        best_step: np.ndarray | None = None
        # try step lengths lam = 1, 2, 4, ... (geometric; Graver-best style)
        lam = 1
        while lam <= max(spread, 1):
            g = _best_cycle(nf, x, cands, lam)
            if g is not None:
                gain = -lam * int(nf.w @ g)
                if gain > best_gain:
                    best_gain = gain
                    best_step = lam * g
            lam *= 2
        if best_step is None or best_gain <= 0:
            return x
        if stats is not None:
            stats["improvement"] += best_gain
        x = x + best_step
        if not nf.is_feasible(x):  # pragma: no cover - defensive
            raise SolverError("augmentation produced an infeasible point")
    raise SolverError("augmentation did not converge")  # pragma: no cover


def _best_cycle(nf: NFold, x: np.ndarray,
                cands: list[list[np.ndarray]], lam: int) -> np.ndarray | None:
    """Cheapest ``g`` with ``A g = 0`` and ``l <= x + lam*g <= u``, bricks
    from ``cands[i] + {0}``; ``None`` if only the zero step is returned or
    no cycle closes. DP over the running global sum."""
    N, t = nf.N, nf.t
    zero = tuple([0] * nf.r)
    states: dict[tuple[int, ...], tuple[int, tuple[int, ...] | None, int]] = {
        zero: (0, None, -1)}
    back = []
    for i in range(N):
        lo = nf.lower[i * t:(i + 1) * t]
        hi = nf.upper[i * t:(i + 1) * t]
        xi = x[i * t:(i + 1) * t]
        options: list[tuple[np.ndarray, np.ndarray, int]] = [
            (np.zeros(t, dtype=np.int64), np.zeros(nf.r, dtype=np.int64), 0)]
        for v in cands[i]:
            nxt = xi + lam * v
            if np.all(nxt >= lo) and np.all(nxt <= hi):
                options.append((v, nf.A_blocks[i] @ v,
                                int(nf.w[i * t:(i + 1) * t] @ v)))
        new_states: dict[tuple[int, ...],
                         tuple[int, tuple[int, ...] | None, int]] = {}
        for st, (cost, _, _) in states.items():
            base = np.array(st, dtype=np.int64)
            for idx, (v, contrib, dcost) in enumerate(options):
                nst = tuple(base + contrib)
                ncost = cost + dcost
                cur = new_states.get(nst)
                if cur is None or ncost < cur[0]:
                    new_states[nst] = (ncost, st, idx)
        back.append((new_states, options))
        states = new_states
    if zero not in states or states[zero][0] >= 0:
        return None
    g = np.zeros(nf.num_variables, dtype=np.int64)
    st: tuple[int, ...] | None = zero
    for i in range(N - 1, -1, -1):
        new_states, options = back[i]
        cost, prev, idx = new_states[st]  # type: ignore[index]
        g[i * t:(i + 1) * t] = options[idx][0]
        st = prev
    return g if np.any(g) else None
