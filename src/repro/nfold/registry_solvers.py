"""The ``nfold-*`` registry solvers: the paper's n-fold path, end to end.

Each solver runs a warm-started dual-approximation search on makespan
guesses. The warm start is the matching constant-factor algorithm
(Theorems 4/5/6), whose certified guess and achieved makespan bracket
``OPT`` — so the n-fold search begins with a window of width at most the
warm ratio instead of ``[bound, trivial upper bound]``. Every guess ``T``
is turned into the *faithful* Section-4 n-fold IP by
:mod:`repro.ptas.nfold_builders` and solved for feasibility; rejection is
one-sided (IP infeasible at ``T`` proves ``OPT > T``), acceptance yields
a schedule of makespan at most the rounded budget ``T-bar``.

These are *value-only* solvers (``RawSolve.schedule is None``, like the
``milp-*`` family): the certificate is the pair ``(guess, makespan)``
with ``guess <= OPT <= makespan``, plus the achieved accuracy
``extra["epsilon"] = makespan/guess - 1``. What makes them worth having
is the regime they claim: the IP dimensions depend on ``(C, c, q)`` and
the *rounded* size profile — never on the machine count — so they keep
working where the ``milp-*`` solvers cap at ``m <= 64`` and the explicit
preemptive PTAS at ``m <= 12``.

Backend selection per guess: the structure-exploiting DP
(:func:`repro.nfold.solvers.solve_dp`) runs when the estimated brick
enumeration volume is small; otherwise the HiGHS backend solves the
assembled ILP. Builder outputs carry wide slack columns, so HiGHS is the
production path and the DP engages only on micro programs — the same
split the paper makes between the Theorem-1 algorithm and what is
practical to run. Graver augmentation (:func:`repro.nfold.solvers.augment`)
certifies accepted points whenever its candidate enumeration
(``(2 rho + 1)^t`` per brick) is tractable, feeding the
``repro_nfold_augment_rounds`` histogram.

If the n-fold search dead-ends on a shape its enumeration caps cannot
afford (:class:`~repro.core.errors.CapacityExceededError`), the solver
degrades to the warm start's certificate — still sound, honestly labelled
in ``extra["fallback"]`` — instead of reporting a feasible instance
``unsupported``. A missing HiGHS backend is different: that *is*
``unsupported`` (and ``supports()`` says so up front).
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

import numpy as np

from ..core.bounds import pmax_bound
from ..core.errors import (CapacityExceededError, InfeasibleGuessError,
                           UnsupportedInstanceError)
from ..core.instance import Instance
from ..obs.metrics import REGISTRY
from ..ptas.common import (delta_for_epsilon, geometric_guess_search,
                           integral_guess_search)
from ..ptas.nfold_builders import (build_nonpreemptive_nfold,
                                   build_splittable_nfold)
from ..registry import RawSolve
from .milp_backend import solve_milp
from .solvers import augment, solve_dp
from .structure import NFold
from .theory import parameters_of, theorem1_log10_bound

__all__ = [
    "run_nfold_splittable",
    "run_nfold_preemptive",
    "run_nfold_nonpreemptive",
    "reference_theorem1_bound",
]

#: Prefer the exact brick DP when the estimated per-brick enumeration
#: volume stays below this; everything larger goes to HiGHS.
_DP_BRICK_VOLUME_CAP = 100_000

#: Run the Graver-augmentation certification pass only when the brick
#: dimension keeps ``(2 rho + 1)^t`` candidate enumeration tractable.
_AUGMENT_MAX_COLUMNS = 9

#: Machine counts past this overflow the builders' int64 right-hand
#: sides and bounds. Mirrored by ``repro.registry._NFOLD_MACHINE_CAP``
#: so ``supports()`` and the run-time rejection agree.
_MACHINE_CAP = 10**15


def _require_machine_cap(inst: Instance) -> None:
    if inst.machines > _MACHINE_CAP:
        raise UnsupportedInstanceError(
            f"machine count {inst.machines} exceeds the n-fold builders' "
            f"int64 bound {_MACHINE_CAP}")

AUGMENT_ROUNDS = REGISTRY.histogram(
    "repro_nfold_augment_rounds",
    "Graver augmentation rounds per n-fold augment() call "
    "(final no-improvement round included).",
    labelnames=("algorithm",),
    buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 100.0, 1000.0))

GUESSES_TRIED = REGISTRY.histogram(
    "repro_nfold_guesses_tried",
    "Makespan guesses probed per nfold-* solver run (one n-fold "
    "build+solve each).",
    labelnames=("algorithm",),
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0))


def _resolve_q(epsilon, delta) -> int:
    """``q = 1/delta`` from exactly one of ``epsilon``/``delta`` — the
    same convention as the explicit PTASes."""
    if (epsilon is None) == (delta is None):
        raise ValueError("pass exactly one of epsilon or delta")
    if epsilon is not None:
        return delta_for_epsilon(epsilon).denominator
    if isinstance(delta, int):
        if delta < 2:
            raise ValueError("q = 1/delta must be at least 2")
        return delta
    d = Fraction(delta)
    if d.numerator != 1 or d.denominator < 2:
        raise ValueError("delta must be 1/q for an integer q >= 2")
    return d.denominator


def _estimated_brick_volume(nf: NFold) -> float:
    """Worst per-brick box volume — the DP's brick enumeration cost."""
    worst = 1.0
    t = nf.t
    for i in range(nf.N):
        lo = nf.lower[i * t:(i + 1) * t]
        hi = nf.upper[i * t:(i + 1) * t]
        vol = 1.0
        for a, b in zip(lo, hi):
            vol *= int(b) - int(a) + 1
            if vol > 1e18:
                return vol
        worst = max(worst, vol)
    return worst


def _solve_feasibility(nf: NFold, meta: dict) -> np.ndarray | None:
    """One guess's IP: brick DP when tractable, HiGHS otherwise."""
    if _estimated_brick_volume(nf) <= _DP_BRICK_VOLUME_CAP:
        meta["backend"] = "dp"
        return solve_dp(nf)
    meta["backend"] = "highs"
    return solve_milp(nf)


def _certify(nf: NFold, x: np.ndarray, algorithm: str) -> int | None:
    """Augmentation pass over an accepted point: with ``w = 0`` it must
    terminate without an improving step; the rounds it ran feed the
    histogram. Skipped (``None``) when candidate enumeration would not
    be tractable for the brick dimension."""
    if nf.t > _AUGMENT_MAX_COLUMNS:
        return None
    stats: dict = {}
    augment(nf, x, stats=stats)
    AUGMENT_ROUNDS.observe(stats["rounds"], algorithm=algorithm)
    return stats["rounds"]


def _nfold_extra(nf: NFold, meta: dict, *, q: int, tried: int,
                 epsilon: Fraction, augment_rounds: int | None) -> dict:
    params = parameters_of(nf)
    extra = {
        "epsilon": str(epsilon),
        "delta": str(Fraction(1, q)),
        "guesses_tried": tried,
        "backend": meta.get("backend", "dp"),
        "nfold": {"N": params.N, "r": params.r, "s": params.s,
                  "t": params.t, "delta": params.delta, "L": params.L,
                  "theorem1_log10": round(theorem1_log10_bound(params), 3)},
    }
    if augment_rounds is not None:
        extra["augment_rounds"] = augment_rounds
    return extra


def _warm_fallback(guess, makespan, *, q: int, tried: int,
                   reason: str) -> RawSolve:
    """Sound degradation when the n-fold enumeration caps trip: the warm
    start's own certificate, with the honestly measured accuracy."""
    guess, makespan = Fraction(guess), Fraction(makespan)
    eps = makespan / guess - 1 if guess > 0 else Fraction(0)
    return RawSolve(None, guess, makespan=makespan,
                    extra={"epsilon": str(eps),
                           "delta": str(Fraction(1, q)),
                           "guesses_tried": tried,
                           "backend": "warm-start",
                           "fallback": reason})


# --------------------------------------------------------------------- #
# the three solvers
# --------------------------------------------------------------------- #

def run_nfold_splittable(inst: Instance, epsilon=None, delta=None) -> RawSolve:
    """Splittable CCS via the Section-4.1 n-fold IP.

    Search grid ``lb * (1+delta)^k`` over the warm window; acceptance at
    ``T`` certifies a schedule of makespan ``(1+4 delta) T`` (the rounded
    budget), rejection certifies ``OPT > T``.
    """
    from ..approx.splittable import solve_splittable
    inst = inst.normalized()
    inst.require_feasible()
    _require_machine_cap(inst)
    q = _resolve_q(epsilon, delta)
    dlt = Fraction(1, q)
    warm = solve_splittable(inst)
    lb, ub = Fraction(warm.guess), Fraction(warm.makespan)
    meta: dict = {}

    def try_guess(T: Fraction):
        nf = build_splittable_nfold(inst, T, q)
        x = _solve_feasibility(nf, meta)
        if x is None:
            raise InfeasibleGuessError(
                f"splittable n-fold IP infeasible at T={T}")
        return nf, x

    try:
        T, (nf, x), tried = geometric_guess_search(lb, ub, dlt, try_guess)
    except (CapacityExceededError, InfeasibleGuessError) as exc:
        return _warm_fallback(lb, ub, q=q, tried=0, reason=str(exc))
    GUESSES_TRIED.observe(tried, algorithm="nfold-splittable")
    rounds = _certify(nf, x, "nfold-splittable")
    # the accepted IP packs the rounded loads into budget
    # T-bar = (1+4 delta) T; un-rounding only shrinks pieces
    makespan = min(Fraction(q + 4, q) * T, ub)
    # the grid point below T was rejected (or was the certified warm
    # lower bound itself), so OPT > T / (1+delta)
    guess = max(lb, T / (1 + dlt))
    eps = makespan / guess - 1 if guess > 0 else Fraction(0)
    return RawSolve(None, guess, makespan=makespan,
                    extra=_nfold_extra(nf, meta, q=q, tried=tried,
                                       epsilon=eps, augment_rounds=rounds))


def run_nfold_preemptive(inst: Instance, epsilon=None, delta=None) -> RawSolve:
    """Preemptive CCS via splittable n-fold feasibility plus wrap-around
    legalisation.

    The splittable IP is a relaxation of preemptive scheduling, so
    rejection at ``T`` proves ``OPT_pre > T``. An accepted splittable
    layout of machine loads at most ``B = (1+4 delta) T`` legalises into
    a preemptive timetable of makespan ``max(B, pmax)`` with the *same*
    job-to-machine assignments (Gonzalez–Sahni wrap-around: per-job
    totals and per-machine loads both fit in ``max(B, pmax)``, and class
    slots are untouched because no job changes machines).
    """
    from ..approx.preemptive import solve_preemptive
    inst = inst.normalized()
    inst.require_feasible()
    q = _resolve_q(epsilon, delta)
    dlt = Fraction(1, q)
    warm = solve_preemptive(inst)
    if warm.optimal:
        # m >= n: one job per machine is optimal (makespan = pmax);
        # no IP can improve on an exact closed form
        guess, makespan = Fraction(warm.guess), Fraction(warm.makespan)
        eps = makespan / guess - 1 if guess > 0 else Fraction(0)
        return RawSolve(None, guess, makespan=makespan,
                        extra={"epsilon": str(eps), "delta": str(dlt),
                               "guesses_tried": 0, "backend": "closed-form",
                               "optimal": True})
    _require_machine_cap(inst)
    pmax = Fraction(pmax_bound(inst))
    lb = max(Fraction(warm.guess), pmax)
    ub = Fraction(warm.makespan)
    meta: dict = {}

    def try_guess(T: Fraction):
        nf = build_splittable_nfold(inst, T, q)
        x = _solve_feasibility(nf, meta)
        if x is None:
            raise InfeasibleGuessError(
                f"splittable relaxation infeasible at T={T}")
        return nf, x

    try:
        T, (nf, x), tried = geometric_guess_search(lb, ub, dlt, try_guess)
    except (CapacityExceededError, InfeasibleGuessError) as exc:
        return _warm_fallback(warm.guess, ub, q=q, tried=0, reason=str(exc))
    GUESSES_TRIED.observe(tried, algorithm="nfold-preemptive")
    rounds = _certify(nf, x, "nfold-preemptive")
    makespan = min(max(Fraction(q + 4, q) * T, pmax), ub)
    guess = max(lb, T / (1 + dlt))
    eps = makespan / guess - 1 if guess > 0 else Fraction(0)
    return RawSolve(None, guess, makespan=makespan,
                    extra=_nfold_extra(nf, meta, q=q, tried=tried,
                                       epsilon=eps, augment_rounds=rounds))


def run_nfold_nonpreemptive(inst: Instance, epsilon=None,
                            delta=None) -> RawSolve:
    """Non-preemptive CCS via the Section-4.2 n-fold IP.

    Integral guess search: the optimum is integral and rejection at ``T``
    proves ``OPT > T``, so the smallest accepted guess is a certified
    lower bound. Acceptance packs the grouped, rounded jobs into budget
    ``T-bar = (1+3 delta)(1+2 delta) T``.
    """
    from ..approx.nonpreemptive import solve_nonpreemptive
    inst = inst.normalized()
    inst.require_feasible()
    _require_machine_cap(inst)
    q = _resolve_q(epsilon, delta)
    warm = solve_nonpreemptive(inst)
    lb, ub = int(warm.guess), int(warm.makespan)
    meta: dict = {}

    def try_guess(T: int):
        nf = build_nonpreemptive_nfold(inst, int(T), q)
        x = _solve_feasibility(nf, meta)
        if x is None:
            raise InfeasibleGuessError(
                f"non-preemptive n-fold IP infeasible at T={T}")
        return nf, x

    try:
        T, (nf, x), tried = integral_guess_search(lb, ub, try_guess)
    except (CapacityExceededError, InfeasibleGuessError) as exc:
        return _warm_fallback(lb, ub, q=q, tried=0, reason=str(exc))
    GUESSES_TRIED.observe(tried, algorithm="nfold-nonpreemptive")
    rounds = _certify(nf, x, "nfold-nonpreemptive")
    # T-bar in units is exactly (q+3)(q+2)c, so the budget un-rounds to
    # T (q+3)(q+2)/q^2 — the builder's tbar_factor
    makespan = min(Fraction(T * (q + 3) * (q + 2), q * q), Fraction(ub))
    guess = Fraction(T)
    eps = makespan / guess - 1 if guess > 0 else Fraction(0)
    return RawSolve(None, guess, makespan=makespan,
                    extra=_nfold_extra(nf, meta, q=q, tried=tried,
                                       epsilon=eps, augment_rounds=rounds))


# --------------------------------------------------------------------- #
# Theorem-1 reference bounds (the `repro list` column)
# --------------------------------------------------------------------- #

#: The canonical large-m shape the `repro list` Theorem-1 column is
#: quoted at: past every MILP machine cap, small class structure.
_REFERENCE_INSTANCE = ((7, 5, 4, 3, 3, 2), (0, 0, 1, 1, 2, 2), 128, 2)


@lru_cache(maxsize=None)
def reference_theorem1_bound(variant: str) -> float:
    """``log10`` of the Theorem-1 running-time bound for the n-fold
    program ``variant`` builds at the reference shape (m=128, C=3, c=2,
    default grid q=2) — a comparable scale indicator per solver, not a
    measurement."""
    from ..core.bounds import nonpreemptive_lower_bound, splittable_lower_bound
    p, classes, m, c = _REFERENCE_INSTANCE
    inst = Instance(p, classes, m, c)
    q = 2
    if variant == "nonpreemptive":
        nf = build_nonpreemptive_nfold(inst, int(nonpreemptive_lower_bound(inst)), q)
    else:
        nf = build_splittable_nfold(inst, splittable_lower_bound(inst), q)
    return theorem1_log10_bound(parameters_of(nf))
