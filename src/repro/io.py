"""JSON serialisation for instances and schedules, powering the CLI.

Formats are intentionally plain so other tools can produce/consume them:

Instance::

    {"processing_times": [5, 3, 8],
     "classes": ["db-a", "db-a", "db-b"],
     "machines": 4,
     "class_slots": 2}

Schedules serialise to per-machine piece lists; fractional amounts and
start times are encoded as ``"num/den"`` strings to stay exact.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any

from .core.instance import Instance
from .core.schedule import (NonPreemptiveSchedule, PreemptiveSchedule,
                            SplittableSchedule)

__all__ = [
    "instance_to_dict", "instance_from_dict",
    "load_instance", "dump_instance",
    "schedule_to_dict", "schedule_from_dict",
]


def _frac_str(x: Fraction) -> str | int:
    """The repository-wide exact-rational wire encoding ("num/den").

    Shared by the schedule serialisers here and the engine's
    :class:`~repro.engine.report.SolveReport` — keep the two formats
    identical by changing only this pair of helpers.
    """
    x = Fraction(x)
    return int(x) if x.denominator == 1 else f"{x.numerator}/{x.denominator}"


def _frac_parse(v: Any) -> Fraction:
    if isinstance(v, str):
        num, den = v.split("/")
        return Fraction(int(num), int(den))
    return Fraction(v)


def instance_to_dict(inst: Instance) -> dict:
    labels = inst.class_labels or tuple(range(inst.num_classes))
    return {
        "processing_times": list(inst.processing_times),
        "classes": [labels[u] for u in inst.classes],
        "machines": inst.machines,
        "class_slots": inst.class_slots,
    }


def instance_from_dict(d: dict) -> Instance:
    classes = d["classes"]
    # Contiguous integer labels are preserved verbatim so that
    # serialisation round-trips exactly; anything else goes through the
    # canonicalising constructor.
    if all(isinstance(u, int) and not isinstance(u, bool) for u in classes) \
            and classes and set(classes) == set(range(max(classes) + 1)):
        return Instance(tuple(int(p) for p in d["processing_times"]),
                        tuple(classes), int(d["machines"]),
                        int(d["class_slots"]))
    return Instance.create(d["processing_times"], classes,
                           d["machines"], d["class_slots"])


def load_instance(path: str) -> Instance:
    with open(path) as fh:
        return instance_from_dict(json.load(fh))


def dump_instance(inst: Instance, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(instance_to_dict(inst), fh, indent=2)


def schedule_to_dict(sched) -> dict:
    if isinstance(sched, NonPreemptiveSchedule):
        return {"kind": "nonpreemptive",
                "num_machines": sched.num_machines,
                "assignment": list(sched.assignment)}
    if isinstance(sched, PreemptiveSchedule):
        return {"kind": "preemptive",
                "num_machines": sched.num_machines,
                "machines": {
                    str(i): [{"job": p.job, "start": _frac_str(p.start),
                              "amount": _frac_str(p.amount)}
                             for p in sched.pieces_on(i)]
                    for i in sched.used_machines}}
    if isinstance(sched, SplittableSchedule):
        return {"kind": "splittable",
                "num_machines": sched.num_machines,
                "machines": {
                    str(i): [{"job": p.job, "amount": _frac_str(p.amount)}
                             for p in sched.pieces_on(i)]
                    for i in sched.used_machines}}
    raise TypeError(f"cannot serialise {type(sched)!r} "
                    "(compact schedules are representation-specific)")


def schedule_from_dict(d: dict):
    kind = d["kind"]
    if kind == "nonpreemptive":
        return NonPreemptiveSchedule.from_assignment(d["assignment"],
                                                     d["num_machines"])
    if kind == "preemptive":
        sched = PreemptiveSchedule(d["num_machines"])
        for i, pieces in d["machines"].items():
            for p in pieces:
                sched.assign(int(i), p["job"], _frac_parse(p["start"]),
                             _frac_parse(p["amount"]))
        return sched
    if kind == "splittable":
        sched = SplittableSchedule(d["num_machines"])
        for i, pieces in d["machines"].items():
            for p in pieces:
                sched.assign(int(i), p["job"], _frac_parse(p["amount"]))
        return sched
    raise ValueError(f"unknown schedule kind {kind!r}")
