"""Synthetic workload generators and named benchmark suites."""

from .generators import (adversarial_splittable_instance,
                         data_placement_instance, enumerate_tiny_instances,
                         tight_slots_instance, uniform_instance,
                         video_on_demand_instance, zipf_instance)
from .suites import (large_ratio_suite, ptas_suite, scaling_suite,
                     small_ratio_suite)

__all__ = [
    "uniform_instance",
    "zipf_instance",
    "data_placement_instance",
    "video_on_demand_instance",
    "adversarial_splittable_instance",
    "tight_slots_instance",
    "enumerate_tiny_instances",
    "small_ratio_suite",
    "large_ratio_suite",
    "scaling_suite",
    "ptas_suite",
]
