"""Synthetic workload generators.

The paper motivates CCS with product planning and data placement (databases
that must be resident on the machine running a job). There is no public
trace for the problem, so we generate synthetic instances spanning the
regimes the theory distinguishes:

* :func:`uniform_instance` — baseline random workloads.
* :func:`zipf_instance` — skewed class popularity (few hot classes), the
  shape that arises in data placement / video-on-demand settings.
* :func:`data_placement_instance` — operations against a catalogue of
  databases; machines hold a bounded number of databases (= class slots).
* :func:`video_on_demand_instance` — streaming requests against movies with
  Zipf popularity; mirrors the CCBP motivation of Xavier & Miyazawa cited
  by the paper.
* :func:`adversarial_splittable_instance` — classes engineered so the
  splittable algorithm's guess sits right at a border, pushing the observed
  ratio toward its bound.
* :func:`tight_slots_instance` — C close to ``c*m`` so class slots are the
  binding resource.
* :func:`enumerate_tiny_instances` — exhaustive micro-instances for
  cross-checking approximation algorithms against exact solvers.

All generators take a ``numpy.random.Generator`` and are deterministic
given it.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

import numpy as np

from ..core.instance import Instance

__all__ = [
    "uniform_instance",
    "zipf_instance",
    "data_placement_instance",
    "video_on_demand_instance",
    "adversarial_splittable_instance",
    "tight_slots_instance",
    "enumerate_tiny_instances",
]


def _ensure_all_classes(classes: np.ndarray, C: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Re-map class draws so every class 0..C-1 occurs at least once
    (instances must not contain empty classes). Only positions whose class
    occurs more than once are overwritten, so no class is erased."""
    classes = np.asarray(classes).copy()
    counts = np.bincount(classes, minlength=C)
    missing = [u for u in range(C) if counts[u] == 0]
    if not missing:
        return classes
    order = rng.permutation(len(classes))
    it = iter(order)
    for u in missing:
        for pos in it:
            cur = int(classes[pos])
            if counts[cur] > 1:
                counts[cur] -= 1
                classes[pos] = u
                counts[u] += 1
                break
        else:  # pragma: no cover - n >= C guarantees enough duplicates
            raise ValueError("not enough jobs to cover all classes")
    return classes


def uniform_instance(rng: np.random.Generator, n: int, C: int, m: int,
                     c: int, p_lo: int = 1, p_hi: int = 100) -> Instance:
    """Jobs with uniform sizes and uniform class membership."""
    if C > n:
        raise ValueError("cannot have more classes than jobs")
    p = rng.integers(p_lo, p_hi + 1, size=n)
    cls = _ensure_all_classes(rng.integers(0, C, size=n), C, rng)
    return Instance(tuple(int(x) for x in p), tuple(int(u) for u in cls), m, c)


def zipf_instance(rng: np.random.Generator, n: int, C: int, m: int, c: int,
                  alpha: float = 1.2, p_lo: int = 1,
                  p_hi: int = 100) -> Instance:
    """Class membership follows a (truncated) Zipf law with exponent
    ``alpha``: class 0 is hottest. Sizes uniform."""
    if C > n:
        raise ValueError("cannot have more classes than jobs")
    weights = 1.0 / np.arange(1, C + 1) ** alpha
    weights /= weights.sum()
    cls = _ensure_all_classes(
        rng.choice(C, size=n, p=weights), C, rng)
    p = rng.integers(p_lo, p_hi + 1, size=n)
    return Instance(tuple(int(x) for x in p), tuple(int(u) for u in cls), m, c)


def data_placement_instance(rng: np.random.Generator, n_ops: int,
                            n_databases: int, m: int,
                            disk_slots: int) -> Instance:
    """Database operations: classes are databases, class slots model the
    bounded disk capacity of each machine. Operation costs are lognormal
    (a heavy right tail of expensive analytical queries over cheap lookups),
    database popularity is Zipf(1.1)."""
    if n_databases > n_ops:
        raise ValueError("cannot have more databases than operations")
    weights = 1.0 / np.arange(1, n_databases + 1) ** 1.1
    weights /= weights.sum()
    cls = _ensure_all_classes(
        rng.choice(n_databases, size=n_ops, p=weights), n_databases, rng)
    cost = np.maximum(1, np.round(rng.lognormal(2.0, 0.8, size=n_ops))
                      ).astype(int)
    return Instance(tuple(int(x) for x in cost), tuple(int(u) for u in cls),
                    m, disk_slots)


def video_on_demand_instance(rng: np.random.Generator, n_requests: int,
                             n_movies: int, m: int,
                             cache_slots: int) -> Instance:
    """Video-on-demand: classes are movies, a server streams only movies in
    its cache (class slots). Movie popularity Zipf(0.8); stream durations
    cluster around a typical length (movies have similar runtimes)."""
    if n_movies > n_requests:
        raise ValueError("cannot have more movies than requests")
    weights = 1.0 / np.arange(1, n_movies + 1) ** 0.8
    weights /= weights.sum()
    cls = _ensure_all_classes(
        rng.choice(n_movies, size=n_requests, p=weights), n_movies, rng)
    dur = np.clip(np.round(rng.normal(90, 20, size=n_requests)), 30, 180
                  ).astype(int)
    return Instance(tuple(int(x) for x in dur), tuple(int(u) for u in cls),
                    m, cache_slots)


def adversarial_splittable_instance(k: int, m: int) -> Instance:
    """A family where the splittable guess lands exactly on a border.

    One heavy class of load ``k * m`` plus ``(c*m - m)`` unit filler classes
    with ``c = 2``: the heavy class must be cut into exactly ``m`` pieces of
    size ``k`` (using one slot per machine), and the fillers occupy the rest.
    The round robin bound ``sum/m + T`` is then nearly tight.
    """
    if k < 2 or m < 2:
        raise ValueError("need k >= 2 and m >= 2")
    c = 2
    fillers = c * m - m
    p = [1] * (k * m) + [1] * fillers       # heavy class as k*m unit jobs
    cls = [0] * (k * m) + list(range(1, fillers + 1))
    return Instance(tuple(p), tuple(cls), m, c)


def tight_slots_instance(rng: np.random.Generator, m: int, c: int,
                         p_lo: int = 1, p_hi: int = 50,
                         jobs_per_class: int = 3) -> Instance:
    """Exactly ``C = c * m`` classes — class slots are maximally scarce;
    every feasible schedule must pack classes perfectly."""
    C = c * m
    n = C * jobs_per_class
    p = rng.integers(p_lo, p_hi + 1, size=n)
    cls = np.repeat(np.arange(C), jobs_per_class)
    return Instance(tuple(int(x) for x in p), tuple(int(u) for u in cls), m, c)


def enumerate_tiny_instances(max_n: int = 4, max_p: int = 3,
                             max_m: int = 3,
                             max_C: int = 3) -> Iterator[Instance]:
    """Exhaustively enumerate tiny instances (for exact cross-checks).

    Yields every instance with ``n <= max_n`` jobs, processing times in
    ``1..max_p``, contiguous class labels with ``C <= max_C`` classes, every
    class non-empty, ``m <= max_m`` machines and ``c <= C`` class slots such
    that ``C <= c * m`` (i.e. feasible instances only).
    """
    for n in range(1, max_n + 1):
        for ps in product(range(1, max_p + 1), repeat=n):
            for cls in product(range(min(n, max_C)), repeat=n):
                # classes must be contiguous 0..C-1 and each non-empty
                C = max(cls) + 1
                if set(cls) != set(range(C)):
                    continue
                for m in range(1, max_m + 1):
                    for c in range(1, C + 1):
                        if C > c * m:
                            continue
                        yield Instance(tuple(ps), tuple(cls), m, c)
