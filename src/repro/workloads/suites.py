"""Named workload suites used by the benchmark harness.

Each suite is a deterministic list of labelled instances. ``small`` suites
stay within the exact solvers' reach (ratios against true optima); ``large``
suites are for scaling and LB-based ratio measurements.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.instance import Instance
from .generators import (adversarial_splittable_instance,
                         data_placement_instance, tight_slots_instance,
                         uniform_instance, video_on_demand_instance,
                         zipf_instance)

__all__ = ["small_ratio_suite", "large_ratio_suite", "scaling_suite",
           "ptas_suite"]


def small_ratio_suite(seeds: int = 10) -> Iterator[tuple[str, Instance]]:
    """Micro instances solvable exactly (n <= 10, m <= 3)."""
    for seed in range(seeds):
        rng = np.random.default_rng(1000 + seed)
        yield (f"uniform-{seed}",
               uniform_instance(rng, n=9, C=4, m=3, c=2, p_hi=25))
        rng = np.random.default_rng(2000 + seed)
        yield (f"zipf-{seed}",
               zipf_instance(rng, n=9, C=3, m=3, c=2, p_hi=25))
        rng = np.random.default_rng(3000 + seed)
        yield (f"tight-{seed}",
               tight_slots_instance(rng, m=2, c=2, jobs_per_class=2))


def large_ratio_suite(seeds: int = 6) -> Iterator[tuple[str, Instance]]:
    """Instances measured against certified lower bounds."""
    for seed in range(seeds):
        rng = np.random.default_rng(4000 + seed)
        yield (f"uniform-{seed}",
               uniform_instance(rng, n=200, C=20, m=10, c=3, p_hi=1000))
        rng = np.random.default_rng(5000 + seed)
        yield (f"dataplace-{seed}",
               data_placement_instance(rng, n_ops=150, n_databases=18,
                                       m=8, disk_slots=3))
        rng = np.random.default_rng(6000 + seed)
        yield (f"vod-{seed}",
               video_on_demand_instance(rng, n_requests=180, n_movies=24,
                                        m=12, cache_slots=2))
    for k, m in ((3, 4), (5, 8)):
        yield (f"adversarial-k{k}-m{m}", adversarial_splittable_instance(k, m))


def scaling_suite(sizes: tuple[int, ...] = (50, 100, 200, 400, 800)
                  ) -> list[tuple[int, Instance]]:
    """One instance per size for the running-time fits (R1)."""
    out = []
    for n in sizes:
        rng = np.random.default_rng(42 + n)
        out.append((n, uniform_instance(rng, n=n, C=max(4, n // 10),
                                        m=max(2, n // 20), c=3, p_hi=1000)))
    return out


def ptas_suite(seeds: int = 4) -> Iterator[tuple[str, Instance]]:
    """Small instances for the epsilon sweeps (P1-P3)."""
    for seed in range(seeds):
        rng = np.random.default_rng(7000 + seed)
        yield (f"uniform-{seed}",
               uniform_instance(rng, n=12, C=4, m=3, c=2, p_hi=20))
