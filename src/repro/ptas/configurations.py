"""Module and configuration enumeration for the configuration ILPs.

A *module* describes the jobs of one class occupying one class slot of a
machine; a *configuration* describes a whole machine as a multiset of
module sizes. Both are bounded multisets, enumerated here with safety caps
(the counts are exponential in ``1/delta``; hitting a cap raises
:class:`CapacityExceededError` instead of grinding forever).

All sizes are integers in the scaled units of the respective rounding
(see :mod:`repro.ptas.rounding`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.errors import CapacityExceededError

__all__ = ["Multiset", "enumerate_bounded_multisets", "splittable_modules",
           "ConfigurationSpace", "build_configuration_space",
           "configuration_cache_stats"]


class _WeightedMemo:
    """An LRU memo bounded by total *weight*, not entry count.

    ``lru_cache(maxsize=N)`` bounds how many results are kept, but a
    single enumeration can hold hundreds of thousands of multisets — N
    worst-case entries is effectively unbounded memory. This memo
    charges each cached value its element count and evicts
    least-recently-used entries once the sum exceeds ``max_weight``
    (the newest entry always stays, even alone over budget: the caller
    is using it right now). Thread-safe; exceptions propagate uncached;
    hit/miss/eviction counters feed the bench extras.
    """

    def __init__(self, fn: Callable, max_weight: int,
                 weight_of: Callable[[object], int]) -> None:
        self._fn = fn
        self._weight_of = weight_of
        self._lock = threading.Lock()
        self._data: OrderedDict[tuple, tuple[object, int]] = OrderedDict()
        self.max_weight = max_weight
        self.weight = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.__name__ = getattr(fn, "__name__", "memo")
        self.__doc__ = fn.__doc__

    def __call__(self, *key):
        with self._lock:
            hit = self._data.get(key)
            if hit is not None:
                self.hits += 1
                self._data.move_to_end(key)
                return hit[0]
            self.misses += 1
        value = self._fn(*key)          # compute outside the lock
        weight = self._weight_of(value)
        with self._lock:
            if key not in self._data:
                self._data[key] = (value, weight)
                self.weight += weight
                while self.weight > self.max_weight and len(self._data) > 1:
                    _, (_, old) = self._data.popitem(last=False)
                    self.weight -= old
                    self.evictions += 1
        return value

    def cache_clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.weight = 0
            self.hits = self.misses = self.evictions = 0

    def cache_stats(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "entries": len(self._data), "weight": self.weight,
                    "max_weight": self.max_weight}

#: A multiset as a sorted tuple of (value, count) pairs, value descending.
Multiset = tuple[tuple[int, int], ...]


def multiset_total(ms: Multiset) -> int:
    return sum(v * k for v, k in ms)


def multiset_items(ms: Multiset) -> int:
    return sum(k for _, k in ms)


def enumerate_bounded_multisets(values: Sequence[int], max_items: int,
                                max_total: int,
                                max_count_per_value: Sequence[int] | None = None,
                                cap: int = 300_000,
                                include_empty: bool = True
                                ) -> list[Multiset]:
    """All multisets over ``values`` with at most ``max_items`` elements and
    total at most ``max_total`` (optionally a per-value count limit).

    Memoised on the (hashable) arguments: the PTAS binary searches call
    this once per guess ``T``, and distinct guesses frequently round to
    the same module structure — the enumeration (exponential in
    ``1/delta``) is then paid once per structure instead of once per
    guess. Returns a fresh list each call; the cached tuple is shared.
    """
    key_counts = None if max_count_per_value is None \
        else tuple(max_count_per_value)
    return list(_enumerate_cached(tuple(values), max_items, max_total,
                                  key_counts, cap, include_empty))


def _enumerate_uncached(values: tuple[int, ...], max_items: int,
                        max_total: int,
                        max_count_per_value: tuple[int, ...] | None,
                        cap: int, include_empty: bool
                        ) -> tuple[Multiset, ...]:
    # failures (CapacityExceededError) propagate uncached, so a later call
    # with a higher cap is not poisoned
    return tuple(_enumerate_bounded_multisets(
        values, max_items, max_total, max_count_per_value, cap,
        include_empty))


#: Total multisets kept across all cached enumerations — each is a
#: handful of machine words, so this is a few hundred MB worst case.
_ENUMERATE_WEIGHT_BUDGET = 2_000_000

_enumerate_cached = _WeightedMemo(_enumerate_uncached,
                                  _ENUMERATE_WEIGHT_BUDGET, len)


def _enumerate_bounded_multisets(values: Sequence[int], max_items: int,
                                 max_total: int,
                                 max_count_per_value: Sequence[int] | None,
                                 cap: int,
                                 include_empty: bool) -> list[Multiset]:
    vals = sorted(set(values), reverse=True)
    if max_count_per_value is not None:
        limit = {v: c for v, c in zip(values, max_count_per_value)}
    else:
        limit = None
    out: list[Multiset] = []

    def rec(idx: int, items_left: int, total_left: int,
            chosen: list[tuple[int, int]]) -> None:
        if len(out) > cap:
            raise CapacityExceededError("multisets", len(out), cap)
        if idx == len(vals):
            out.append(tuple(chosen))
            return
        v = vals[idx]
        kmax = min(items_left, total_left // v) if v > 0 else items_left
        if limit is not None:
            kmax = min(kmax, limit.get(v, 0))
        for k in range(kmax, -1, -1):
            if k:
                chosen.append((v, k))
            rec(idx + 1, items_left - k, total_left - k * v, chosen)
            if k:
                chosen.pop()

    rec(0, max_items, max_total, [])
    if not include_empty:
        out = [ms for ms in out if ms]
    return out


def splittable_modules(q: int, c: int) -> list[int]:
    """Module sizes of the splittable PTAS in units of ``delta^2 T / c``:
    ``{l * c : l = q .. q(q+4)}`` (split pieces are >= delta*T and multiples
    of delta^2*T; the maximum is the machine budget T-bar)."""
    return [ell * c for ell in range(q, q * (q + 4) + 1)]


@dataclass(frozen=True)
class ConfigurationSpace:
    """Enumerated configurations plus the (h, b) bucket structure.

    ``configs[k]`` is a multiset of module sizes; ``size[k] = Lambda(K)``;
    ``slots[k] = ||K||_1``; ``buckets`` maps ``(h, b)`` to the config
    indices with that size and slot count. The empty configuration (machine
    running only small classes, or nothing) is always present at the
    ``(0, 0)`` bucket.
    """

    configs: tuple[Multiset, ...]
    sizes: tuple[int, ...]
    slots: tuple[int, ...]
    buckets: dict[tuple[int, int], tuple[int, ...]]

    @property
    def num_configs(self) -> int:
        return len(self.configs)

    def bucket_of(self, k: int) -> tuple[int, int]:
        return self.sizes[k], self.slots[k]


def build_configuration_space(module_sizes: Sequence[int], max_slots: int,
                              max_size: int,
                              cap: int = 300_000) -> ConfigurationSpace:
    """Enumerate all configurations over ``module_sizes`` with at most
    ``max_slots`` modules and total size at most ``max_size``.

    Memoised keyed by ``(module sizes, slot bound, size threshold, cap)``
    — the dual-approximation binary searches rebuild the same space for
    every guess whose rounding coincides. The returned space is shared
    and must be treated as read-only (all consumers do).
    """
    return _build_space_cached(tuple(module_sizes), max_slots, max_size,
                               cap)


def _build_space_uncached(module_sizes: tuple[int, ...], max_slots: int,
                          max_size: int, cap: int) -> ConfigurationSpace:
    raw = enumerate_bounded_multisets(module_sizes, max_slots, max_size,
                                      cap=cap, include_empty=True)
    sizes = tuple(multiset_total(ms) for ms in raw)
    slots = tuple(multiset_items(ms) for ms in raw)
    buckets: dict[tuple[int, int], list[int]] = {}
    for k, (h, b) in enumerate(zip(sizes, slots)):
        buckets.setdefault((h, b), []).append(k)
    return ConfigurationSpace(tuple(raw), sizes, slots,
                              {k: tuple(v) for k, v in buckets.items()})


#: Total configurations kept across all cached spaces (each config also
#: carries its size/slot/bucket entries, hence the smaller budget).
_SPACE_WEIGHT_BUDGET = 500_000

_build_space_cached = _WeightedMemo(
    _build_space_uncached, _SPACE_WEIGHT_BUDGET,
    lambda space: max(1, space.num_configs))


def configuration_cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/weight counters of both memo layers — surfaced as
    ``repro bench --suite kernel`` extras and by the cache tests."""
    return {"enumerate": _enumerate_cached.cache_stats(),
            "spaces": _build_space_cached.cache_stats()}
