"""PTAS for splittable CCS (Section 4.1, Theorems 10/11).

For a guess ``T``: group each class into one fluid job (Lemma 7), round to
``O(1/delta^2)`` sizes, and decide feasibility of a *configuration ILP*
whose modules are the allowed split-piece sizes (multiples of
``delta^2 T`` that are at least ``delta T``) and whose configurations are
multisets of modules fitting a machine (Lemmas 8/9 justify the
restriction to these well-structured schedules). A feasible ILP solution
is dissolved back into an explicit schedule; the small classes are round
robined over machines grouped by configuration size and slot count.

The ILP solved here is the *compact* equivalent of the paper's N-fold
(the per-class variable duplication exists only to force N-fold block
structure; aggregating the ``x`` variables is an exact reformulation —
:mod:`repro.ptas.nfold_builders` constructs the faithful N-fold and tests
verify both agree on micro instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache

from ..core.bounds import splittable_lower_bound, trivial_upper_bound
from ..core.errors import (CapacityExceededError, InfeasibleGuessError,
                           InfeasibleInstanceError)
from ..core.instance import Instance
from ..core.schedule import SplittableSchedule
from ._milp_util import FeasibilityMILP
from .common import PTASResult, delta_for_epsilon, geometric_guess_search
from .configurations import (ConfigurationSpace, build_configuration_space,
                             splittable_modules)
from .rounding import SplittableRounding, round_splittable

__all__ = ["ptas_splittable"]

#: Machine counts above this are refused for the explicit PTAS; the paper's
#: Theorem 11 extension (compact trivial-configuration bookkeeping) is
#: covered by the constant-factor compact solver, not the PTAS.
DEFAULT_MACHINE_CAP = 20_000


@lru_cache(maxsize=32)
def _config_space(q: int, c: int, cap: int) -> ConfigurationSpace:
    """Configurations depend only on (q, c) — sizes are in scaled units."""
    modules = splittable_modules(q, c)
    c_star = min(q + 4, c)
    return build_configuration_space(modules, c_star, q * c * (q + 4),
                                     cap=cap)


@dataclass
class _GuessArtifact:
    rounding: SplittableRounding
    space: ConfigurationSpace
    x_counts: dict[int, int]              # config index -> machine count
    modules_per_class: dict[int, dict[int, int]]  # u -> {module size: count}
    small_assignment: dict[tuple[int, int], list[int]]  # (h,b) -> classes


def ptas_splittable(inst: Instance, epsilon: float | Fraction | None = None,
                    delta: Fraction | int | None = None,
                    machine_cap: int = DEFAULT_MACHINE_CAP,
                    config_cap: int = 300_000,
                    theorem11: bool = False) -> PTASResult:
    """(1 + eps)-approximation for splittable CCS.

    Exactly one of ``epsilon`` (guarantee-driven: ``delta`` is derived so
    the final ratio is at most ``1 + epsilon``) or ``delta`` (directly pick
    the rounding accuracy ``1/q``; the *measured* ratio certificate in the
    result is then the honest quality statement) must be given.
    """
    inst = inst.normalized()
    inst.require_feasible()
    q = _resolve_q(epsilon, delta)
    if inst.machines > machine_cap:
        raise CapacityExceededError("machines (explicit PTAS)",
                                    inst.machines, machine_cap)
    lb = splittable_lower_bound(inst)
    if lb < 0:    # pragma: no cover — ruled out by require_feasible
        raise InfeasibleInstanceError(inst.num_classes, inst.slot_budget())
    ub = max(trivial_upper_bound(inst), lb)
    dlt = Fraction(1, q)

    def try_guess(T: Fraction) -> _GuessArtifact:
        return _solve_guess(inst, T, q, config_cap, theorem11=theorem11)

    T, art, tried = geometric_guess_search(lb, ub, dlt, try_guess)
    sched = _build_schedule(inst, art)
    eps_out = Fraction(epsilon).limit_denominator(10**6) if epsilon is not None \
        else 7 * dlt
    return PTASResult(schedule=sched, guess=T, epsilon=eps_out, delta=dlt,
                      makespan=sched.makespan(), guesses_tried=tried,
                      stats={"configs": art.space.num_configs})


def theorem11_nontrivial_bound(num_classes: int) -> int:
    """Theorem 11: any splittable schedule can be normalised (by the
    Figure 3 exchange) so that at most ``C*(C-1)/2 + C`` machines carry a
    *non-trivial* configuration — everything else is either empty or one
    class filling the machine. This is what caps the explicit work for
    exponential ``m``."""
    return num_classes * (num_classes - 1) // 2 + num_classes


def add_theorem11_constraint(mp: FeasibilityMILP, space: ConfigurationSpace,
                             q: int, c: int, num_classes: int,
                             xv) -> None:
    """Append the Theorem 11 globally uniform constraint to a splittable
    configuration ILP: the *non-trivial* configurations (anything other
    than the empty one and the single-largest-module one) are chosen at
    most ``C^2/2 + C`` times in total. By the exchange argument this never
    cuts off all solutions when one exists.
    """
    largest = q * c * (q + 4)  # the maximal module size (= T-bar)
    trivial = {(), ((largest, 1),)}
    coeffs = {xv(k): 1.0 for k, cfg in enumerate(space.configs)
              if cfg not in trivial}
    if coeffs:
        mp.add_le(coeffs, float(theorem11_nontrivial_bound(num_classes)))


def _resolve_q(epsilon, delta) -> int:
    if (epsilon is None) == (delta is None):
        raise ValueError("pass exactly one of epsilon or delta")
    if epsilon is not None:
        return delta_for_epsilon(epsilon).denominator
    if isinstance(delta, int):
        if delta < 2:
            raise ValueError("q = 1/delta must be at least 2")
        return delta
    d = Fraction(delta)
    if d.numerator != 1 or d.denominator < 2:
        raise ValueError("delta must be 1/q for an integer q >= 2")
    return d.denominator


def _solve_guess(inst: Instance, T: Fraction, q: int,
                 config_cap: int, theorem11: bool = False) -> _GuessArtifact:
    rnd = round_splittable(inst, T, q)
    c, m = inst.class_slots, inst.machines
    space = _config_space(q, c, config_cap)
    module_sizes = splittable_modules(q, c)
    size_index = {s: i for i, s in enumerate(module_sizes)}
    large = [u for u in range(inst.num_classes) if not rnd.is_small[u]]
    small = [u for u in range(inst.num_classes) if rnd.is_small[u]]
    buckets = sorted(space.buckets)

    nK, nM, nB = space.num_configs, len(module_sizes), len(buckets)
    # variable layout: x[k] | y[u_large, s] | z[u_small, bucket]
    off_y = nK
    off_z = off_y + len(large) * nM
    nvar = off_z + len(small) * nB

    def xv(k):
        return k

    def yv(ui, si):
        return off_y + ui * nM + si

    def zv(ui, bi):
        return off_z + ui * nB + bi

    mp = FeasibilityMILP(nvar)
    for k in range(nK):
        mp.set_bounds(xv(k), 0, m)
    for ui in range(len(large)):
        for si in range(nM):
            mp.set_bounds(yv(ui, si), 0, m * (q + 4))
    for ui in range(len(small)):
        for bi in range(nB):
            mp.set_bounds(zv(ui, bi), 0, 1)

    # (0) machines covered exactly
    mp.add_eq({xv(k): 1.0 for k in range(nK)}, float(m))
    # (1) chosen configurations cover chosen modules
    for si, s in enumerate(module_sizes):
        coeffs: dict[int, float] = {}
        for k, cfg in enumerate(space.configs):
            cnt = dict(cfg).get(s, 0)
            if cnt:
                coeffs[xv(k)] = float(cnt)
        for ui in range(len(large)):
            coeffs[yv(ui, si)] = coeffs.get(yv(ui, si), 0.0) - 1.0
        mp.add_eq(coeffs, 0.0)
    # (4) modules cover the large classes
    for ui, u in enumerate(large):
        mp.add_eq({yv(ui, si): float(s)
                   for si, s in enumerate(module_sizes)},
                  float(rnd.size_units[u]))
    # (5) each small class lands in exactly one bucket
    for ui in range(len(small)):
        mp.add_eq({zv(ui, bi): 1.0 for bi in range(nB)}, 1.0)
    # (2) class slots and (3) space left for small classes, per bucket
    for bi, (h, b) in enumerate(buckets):
        ks = space.buckets[(h, b)]
        slot_coeffs = {zv(ui, bi): 1.0 for ui in range(len(small))}
        for k in ks:
            slot_coeffs[xv(k)] = -(float(c - b))
        mp.add_le(slot_coeffs, 0.0)
        space_coeffs = {zv(ui, bi): float(rnd.size_units[small[ui]])
                        for ui in range(len(small))}
        for k in ks:
            space_coeffs[xv(k)] = -(float(rnd.Tbar_units - h))
        mp.add_le(space_coeffs, 0.0)

    if theorem11:
        add_theorem11_constraint(mp, space, q, c, inst.num_classes, xv)

    # Balance heuristic: among feasible points, prefer configurations whose
    # large-piece load stays near T (total large load is fixed by (1)+(4),
    # so minimising total excess pushes toward balanced machines). Purely a
    # quality heuristic — the guarantee comes from feasibility alone.
    T_units = q * q * c
    objective = {xv(k): float(max(0, space.sizes[k] - T_units))
                 for k in range(nK)}
    sol = mp.solve(objective)
    if sol is None:
        raise InfeasibleGuessError(f"no well-structured schedule at T={T}")

    x_counts = {k: int(sol[xv(k)]) for k in range(nK) if sol[xv(k)]}
    modules_per_class = {
        u: {module_sizes[si]: int(sol[yv(ui, si)])
            for si in range(nM) if sol[yv(ui, si)]}
        for ui, u in enumerate(large)}
    small_assignment: dict[tuple[int, int], list[int]] = {}
    for ui, u in enumerate(small):
        for bi, hb in enumerate(buckets):
            if sol[zv(ui, bi)]:
                small_assignment.setdefault(hb, []).append(u)
    return _GuessArtifact(rnd, space, x_counts, modules_per_class,
                          small_assignment)


def _build_schedule(inst: Instance, art: _GuessArtifact) -> SplittableSchedule:
    """Dissolve the ILP solution into an explicit splittable schedule."""
    rnd = art.rounding
    unit = rnd.unit
    sched = SplittableSchedule(inst.machines)

    # expand machines: list of config indices, one per machine
    machine_cfg: list[int] = []
    for k, cnt in sorted(art.x_counts.items()):
        machine_cfg.extend([k] * cnt)
    assert len(machine_cfg) == inst.machines

    # cut each large class into its module pieces, shrinking the rounded
    # sizes back to the original class load
    queues: dict[int, list[list[tuple[int, Fraction]]]] = {}
    for u, mods in art.modules_per_class.items():
        piece_sizes: list[Fraction] = []
        remaining = Fraction(inst.class_load(u))
        rounded = sorted(
            (s for s, cnt in mods.items() for _ in range(cnt)), reverse=True)
        actual: list[tuple[int, Fraction]] = []  # (module size units, amount)
        for s in rounded:
            take = min(remaining, s * unit)
            actual.append((s, take))
            remaining -= take
        assert remaining == 0, "rounded modules do not cover the class"
        # slice the class's jobs (concatenated) at the piece boundaries
        jobs = inst.jobs_of_class(u)
        job_iter = iter(jobs)
        cur_job = next(job_iter)
        cur_left = Fraction(inst.processing_times[cur_job])
        for s, amount in actual:
            pieces: list[tuple[int, Fraction]] = []
            need = amount
            while need > 0:
                take = min(need, cur_left)
                if take > 0:
                    pieces.append((cur_job, take))
                need -= take
                cur_left -= take
                if cur_left == 0:
                    nxt = next(job_iter, None)
                    if nxt is None:
                        break
                    cur_job = nxt
                    cur_left = Fraction(inst.processing_times[cur_job])
            queues.setdefault(s, []).append(pieces)

    # fill machine slots with pieces of matching module size
    for i, k in enumerate(machine_cfg):
        for s, cnt in art.space.configs[k]:
            for _ in range(cnt):
                pieces = queues[s].pop()
                for job, amount in pieces:
                    sched.assign(i, job, amount)
    assert all(not v for v in queues.values()), "unassigned module pieces"

    # small classes: round robin within each (h, b) bucket
    for hb, classes in art.small_assignment.items():
        machines = [i for i, k in enumerate(machine_cfg)
                    if art.space.bucket_of(k) == hb]
        order = sorted(classes, key=lambda u: (-inst.class_load(u), u))
        for pos, u in enumerate(order):
            target = machines[pos % len(machines)]
            for j in inst.jobs_of_class(u):
                sched.assign(target, j, inst.processing_times[j])
    return sched
