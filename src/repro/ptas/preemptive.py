"""PTAS for preemptive CCS (Section 4.3, Theorem 19).

For a guess ``T``: group jobs (Lemma 15), round large sizes to multiples of
the layer height ``delta^2 T``. A *well-structured* schedule places pieces
of large-class jobs only at layer boundaries (Lemma 16 proves one exists
via an integral max-flow — :func:`build_lemma16_network` reproduces that
network, Figure 5). Feasibility of a guess is decided by an ILP whose
solution fixes, per machine and layer, which class occupies the layer
(``o``), how many slots each (class, size) pair gets per layer (``a``) and
where the small classes live (``z``); Theorem 18's greedy ("most remaining
pieces first") then fills concrete jobs into the slots without ever running
a job in parallel with itself.

The paper encodes this as an N-fold whose modules are 0-1 layer vectors and
whose configurations are exponential in the layer count; we solve the
machine-indexed aggregation instead (exactly the same constraint system —
machines are identical, so indexing them explicitly is an equivalent, if
less scalable, formulation; see DESIGN.md). The machine count is therefore
capped.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import networkx as nx

from ..core.bounds import preemptive_lower_bound, trivial_upper_bound
from ..core.errors import (CapacityExceededError, InfeasibleGuessError,
                           InfeasibleInstanceError)
from ..core.instance import Instance
from ..core.schedule import PreemptiveSchedule
from ._milp_util import FeasibilityMILP
from .common import PTASResult, integral_guess_search
from .rounding import IntegralRounding, group_jobs, round_grouped
from .splittable import _resolve_q

__all__ = ["ptas_preemptive", "build_lemma16_network"]

DEFAULT_MACHINE_CAP = 12


@dataclass
class _GuessArtifact:
    rounding: IntegralRounding
    m: int
    layers: int
    occupancy: dict[tuple[int, int], list[int]]   # (u, layer) -> machines
    slot_counts: dict[tuple[int, int, int], int]  # (u, p, layer) -> a
    small_on: dict[int, int]                      # small class -> machine


def ptas_preemptive(inst: Instance,
                    epsilon: float | Fraction | None = None,
                    delta: Fraction | int | None = None,
                    machine_cap: int = DEFAULT_MACHINE_CAP) -> PTASResult:
    """(1 + eps)-approximation for preemptive CCS (Theorem 19)."""
    inst = inst.normalized()
    inst.require_feasible()
    q = _resolve_q(epsilon, delta)
    dlt = Fraction(1, q)
    eps_out = Fraction(epsilon).limit_denominator(10**6) if epsilon is not None \
        else 7 * dlt

    if inst.machines >= inst.num_jobs:
        # one job per machine is optimal (makespan pmax)
        sched = PreemptiveSchedule(inst.machines)
        for j, p in enumerate(inst.processing_times):
            sched.assign(j, j, 0, p)
        return PTASResult(schedule=sched, guess=Fraction(inst.pmax),
                          epsilon=eps_out, delta=dlt,
                          makespan=sched.makespan(), guesses_tried=0)

    if inst.machines > machine_cap:
        raise CapacityExceededError("machines (preemptive PTAS)",
                                    inst.machines, machine_cap)
    lb_f = preemptive_lower_bound(inst)
    if lb_f < 0:    # pragma: no cover — ruled out by require_feasible
        raise InfeasibleInstanceError(inst.num_classes, inst.slot_budget())
    lb = int(lb_f) if lb_f == int(lb_f) else int(lb_f) + 1
    ub = int(trivial_upper_bound(inst))

    def try_guess(T: int) -> _GuessArtifact:
        return _solve_guess(inst, T, q)

    T, art, tried = integral_guess_search(lb, max(ub, lb), try_guess)
    sched = _build_schedule(inst, art)
    return PTASResult(schedule=sched, guess=Fraction(T), epsilon=eps_out,
                      delta=dlt, makespan=sched.makespan(),
                      guesses_tried=tried,
                      stats={"layers": art.layers})


def _solve_guess(inst: Instance, T: int, q: int) -> _GuessArtifact:
    grouped = group_jobs(inst, T, q)
    rnd = round_grouped(inst, grouped, T, q,
                        tbar_factor_num=(q + 3) * (q * q + 1),
                        tbar_factor_den=q * q * q,
                        per_class_slot_unit=False)
    m, c = inst.machines, inst.class_slots
    L = rnd.Tbar_units              # number of layers
    large = [u for u in range(inst.num_classes)
             if not grouped.classes[u].is_small]
    small = [u for u in range(inst.num_classes)
             if grouped.classes[u].is_small]
    # (class, size) -> count, sizes in layers (units of delta^2 T)
    counts = {u: rnd.size_counts(u) for u in large}
    for u in large:
        for p in counts[u]:
            if p > L:
                raise InfeasibleGuessError(
                    f"a grouped job needs {p} layers but only {L} exist")

    # variable layout: o[i,u,l] | s[i,u] | a[u,p,l] | z[u,i]
    nO = m * len(large) * L
    nS = m * len(large)
    apl_index: dict[tuple[int, int, int], int] = {}
    idx = nO + nS
    for u in large:
        for p in counts[u]:
            for ell in range(L):
                apl_index[(u, p, ell)] = idx
                idx += 1
    off_z = idx
    zmax_var = off_z + len(small) * m  # highest occupied layer (heuristic)
    nvar = zmax_var + 1

    li = {u: k for k, u in enumerate(large)}
    si = {u: k for k, u in enumerate(small)}

    def ov(i, u, ell):
        return (i * len(large) + li[u]) * L + ell

    def sv(i, u):
        return nO + i * len(large) + li[u]

    def zv(u, i):
        return off_z + si[u] * m + i

    mp = FeasibilityMILP(nvar)
    for v in range(nO + nS):
        mp.set_bounds(v, 0, 1)
    for (u, p, ell), v in apl_index.items():
        mp.set_bounds(v, 0, counts[u][p])
    for v in range(off_z, zmax_var):
        mp.set_bounds(v, 0, 1)
    mp.set_bounds(zmax_var, 0, L)

    # one class per (machine, layer)
    for i in range(m):
        for ell in range(L):
            mp.add_le({ov(i, u, ell): 1.0 for u in large}, 1.0)
    # occupancy opens a class slot
    for i in range(m):
        for u in large:
            for ell in range(L):
                mp.add_le({ov(i, u, ell): 1.0, sv(i, u): -1.0}, 0.0)
    # class slots per machine (large slots + small classes)
    for i in range(m):
        coeffs = {sv(i, u): 1.0 for u in large}
        for u in small:
            coeffs[zv(u, i)] = 1.0
        mp.add_le(coeffs, float(c))
    # per (class, layer): machines hosting u = slots used by u's sizes
    for u in large:
        for ell in range(L):
            coeffs = {ov(i, u, ell): 1.0 for i in range(m)}
            for p in counts[u]:
                coeffs[apl_index[(u, p, ell)]] = -1.0
            mp.add_eq(coeffs, 0.0)
    # (4): all pieces of each (class, size) placed
    for u in large:
        for p, n_up in counts[u].items():
            mp.add_eq({apl_index[(u, p, ell)]: 1.0 for ell in range(L)},
                      float(p * n_up))
    # small classes on exactly one machine
    for u in small:
        mp.add_eq({zv(u, i): 1.0 for i in range(m)}, 1.0)
    # space per machine: q^2 * smalls + T * occupied_layers <= T * L
    for i in range(m):
        coeffs = {}
        for u in small:
            coeffs[zv(u, i)] = float(q * q * grouped.classes[u].sizes[0])
        for u in large:
            for ell in range(L):
                coeffs[ov(i, u, ell)] = float(T)
        mp.add_le(coeffs, float(T * L))

    # balance heuristic: zmax dominates the highest occupied layer and is
    # minimised (ties broken toward fewer high layers overall). Purely a
    # quality heuristic — feasibility semantics are the paper's.
    for i in range(m):
        for u in large:
            for ell in range(L):
                mp.add_le({ov(i, u, ell): float(ell + 1), zmax_var: -1.0},
                          0.0)
    objective = {zmax_var: float(m * L)}
    for i in range(m):
        for u in large:
            for ell in range(q * q, L):
                objective[ov(i, u, ell)] = 1.0
    sol = mp.solve(objective)
    if sol is None:
        raise InfeasibleGuessError(f"layer ILP infeasible at T={T}")

    occupancy: dict[tuple[int, int], list[int]] = {}
    for u in large:
        for ell in range(L):
            machines = [i for i in range(m) if sol[ov(i, u, ell)]]
            if machines:
                occupancy[(u, ell)] = machines
    slot_counts = {(u, p, ell): int(sol[v])
                   for (u, p, ell), v in apl_index.items() if sol[v]}
    small_on = {}
    for u in small:
        for i in range(m):
            if sol[zv(u, i)]:
                small_on[u] = i
    return _GuessArtifact(rnd, m, L, occupancy, slot_counts, small_on)


def _build_schedule(inst: Instance, art: _GuessArtifact) -> PreemptiveSchedule:
    """Theorem 18's greedy filling + gap placement of the small classes."""
    rnd = art.rounding
    grouped = rnd.grouped
    unit = rnd.unit  # delta^2 T
    sched = PreemptiveSchedule(inst.machines)

    # grouped large jobs: (class, rounded size) -> list of job states
    jobs_by_up: dict[tuple[int, int], list[dict]] = {}
    for u, g in enumerate(grouped.classes):
        if g.is_small:
            continue
        for sz, members in zip(rnd.large_sizes[u], g.members):
            jobs_by_up.setdefault((u, sz), []).append(
                {"members": members, "remaining": sz, "slots": []})

    # layer sweep: most-remaining-pieces-first keeps a job to one slot per
    # layer (Theorem 18)
    for ell in range(art.layers):
        for (u, layer) in [k for k in art.occupancy if k[1] == ell]:
            machines = list(art.occupancy[(u, ell)])
            pos = 0
            for p in sorted({p for (uu, p, l2) in art.slot_counts
                             if uu == u and l2 == ell}):
                need = art.slot_counts.get((u, p, ell), 0)
                cands = sorted(
                    (job for job in jobs_by_up[(u, p)] if job["remaining"] > 0),
                    key=lambda job: -job["remaining"])
                assert len(cands) >= need, "greedy ran out of jobs"
                for job in cands[:need]:
                    job["remaining"] -= 1
                    job["slots"].append((machines[pos], ell))
                    pos += 1

    # emit pieces, shrinking rounded sizes back to original member sizes
    machine_busy: dict[int, list[tuple[Fraction, Fraction]]] = {}
    for (u, p), jobs in jobs_by_up.items():
        for job in jobs:
            assert job["remaining"] == 0, "unplaced pieces"
            slots = sorted(job["slots"], key=lambda s: s[1])
            member_iter = iter(job["members"])
            cur = next(member_iter)
            cur_left = Fraction(inst.processing_times[cur])
            for machine, ell in slots:
                cap = unit
                start = ell * unit
                while cap > 0 and cur is not None:
                    take = min(cap, cur_left)
                    if take > 0:
                        sched.assign(machine, cur, start, take)
                        machine_busy.setdefault(machine, []).append(
                            (start, start + take))
                        start += take
                        cap -= take
                        cur_left -= take
                    if cur_left == 0:
                        cur = next(member_iter, None)
                        if cur is not None:
                            cur_left = Fraction(inst.processing_times[cur])
                        else:
                            break
            assert cur is None, "grouped job not fully scheduled"

    # small classes into the idle gaps of their machine
    for u, i in art.small_on.items():
        busy = sorted(machine_busy.get(i, []))
        gaps: list[tuple[Fraction, Fraction | None]] = []
        clock = Fraction(0)
        for s, e in busy:
            if s > clock:
                gaps.append((clock, s))
            clock = max(clock, e)
        gaps.append((clock, None))  # open-ended tail
        gi = 0
        gpos = gaps[0][0]
        for j in grouped.classes[u].members[0]:
            left = Fraction(inst.processing_times[j])
            while left > 0:
                start, end = gaps[gi]
                room = (end - gpos) if end is not None else left
                if room <= 0:
                    gi += 1
                    gpos = gaps[gi][0]
                    continue
                take = min(left, room)
                sched.assign(i, j, gpos, take)
                gpos += take
                left -= take
        machine_busy.setdefault(i, [])
    return sched


def build_lemma16_network(inst: Instance, T: int, q: int,
                          class_on_machine: dict[tuple[int, int], bool],
                          machine_loads: dict[int, Fraction]
                          ) -> tuple[nx.DiGraph, int]:
    """The flow network of Lemma 16 / Figure 5.

    Nodes: source ``alpha``, one per large grouped job, one per (job,
    layer), one per slot (machine, layer), one per machine, sink ``omega``.
    Capacities exactly as in the paper: ``p_j / delta^2 T`` out of the
    source, 1 on job->layer and slot->machine edges, the class-eligibility
    indicator on (job, layer)->(slot) edges, ``ceil(D_i / delta^2 T)`` into
    the sink. Returns the graph and the value an integral max flow must
    attain (the total piece count); Lemma 16 asserts they are equal.
    Used by ``benchmarks/bench_fig5_flow.py``.
    """
    grouped = group_jobs(inst, T, q)
    rnd = round_grouped(inst, grouped, T, q,
                        tbar_factor_num=(q + 3) * (q * q + 1),
                        tbar_factor_den=q * q * q,
                        per_class_slot_unit=False)
    L = rnd.Tbar_units
    G = nx.DiGraph()
    total = 0
    jobs = []
    for u, g in enumerate(grouped.classes):
        if g.is_small:
            continue
        for k, sz in enumerate(rnd.large_sizes[u]):
            jobs.append((u, k, sz))
    for (u, k, sz) in jobs:
        total += sz
        G.add_edge("alpha", ("x", u, k), capacity=sz)
        for ell in range(L):
            G.add_edge(("x", u, k), ("u", u, k, ell), capacity=1)
            for i in range(inst.machines):
                if class_on_machine.get((i, u), False):
                    G.add_edge(("u", u, k, ell), ("v", i, ell), capacity=1)
    for i in range(inst.machines):
        D = machine_loads.get(i, Fraction(0))
        cap = int(-(-D * q * q // T))  # ceil(D_i / delta^2 T)
        for ell in range(L):
            G.add_edge(("v", i, ell), ("y", i), capacity=1)
        G.add_edge(("y", i), "omega", capacity=cap)
    return G, total
