"""Small helper for assembling feasibility MILPs row by row."""

from __future__ import annotations

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix

from ..core.errors import SolverError

__all__ = ["FeasibilityMILP"]


class FeasibilityMILP:
    """Accumulates sparse rows, then asks HiGHS for any integral point.

    All variables are integral; the objective is zero (the PTAS guesses a
    makespan and only needs feasibility).
    """

    def __init__(self, num_vars: int) -> None:
        self.n = num_vars
        self.rows: list[dict[int, float]] = []
        self.lo: list[float] = []
        self.hi: list[float] = []
        self.var_lo = np.zeros(num_vars)
        self.var_hi = np.full(num_vars, np.inf)

    def add_eq(self, coeffs: dict[int, float], rhs: float) -> None:
        self.rows.append(coeffs)
        self.lo.append(rhs)
        self.hi.append(rhs)

    def add_le(self, coeffs: dict[int, float], rhs: float) -> None:
        self.rows.append(coeffs)
        self.lo.append(-np.inf)
        self.hi.append(rhs)

    def set_bounds(self, var: int, lo: float, hi: float) -> None:
        self.var_lo[var] = lo
        self.var_hi[var] = hi

    def solve(self, objective: dict[int, float] | None = None
              ) -> np.ndarray | None:
        """A feasible integral point, or ``None`` if proven infeasible.

        ``objective`` (optional, sparse) is minimised among feasible points;
        the PTAS uses it purely as a *balance heuristic* — feasibility and
        the worst-case guarantee are unaffected.
        """
        A = lil_matrix((len(self.rows), self.n))
        for r, coeffs in enumerate(self.rows):
            for k, v in coeffs.items():
                A[r, k] = v
        c_vec = np.zeros(self.n)
        if objective:
            for k, v in objective.items():
                c_vec[k] = v
        res = milp(c=c_vec,
                   constraints=LinearConstraint(A.tocsr(),
                                                np.array(self.lo),
                                                np.array(self.hi)),
                   integrality=np.ones(self.n),
                   bounds=Bounds(self.var_lo, self.var_hi))
        if res.status == 2:
            return None
        if res.status != 0 or res.x is None:
            raise SolverError(
                f"HiGHS failed: status={res.status} message={res.message!r}")
        return np.round(res.x).astype(np.int64)
