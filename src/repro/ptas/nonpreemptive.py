"""PTAS for non-preemptive CCS (Section 4.2, Theorem 14).

For a guess ``T``: group jobs so every class is large or small (Lemma 12),
round large sizes to multiples of ``delta^2 T``. *Modules* are now
multisets of job sizes (the jobs of one class sharing one class slot of a
machine); *configurations* are multisets of module **sizes**. The
configuration ILP assigns module counts per class (``y``), configuration
counts (``x``) and small-class placements (``z``); a solution is dissolved
configuration -> slots -> modules -> jobs (Figure 4 of the paper).

As in the splittable case we solve the compact equivalent of the paper's
N-fold ILP (same feasible schedules; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.bounds import nonpreemptive_lower_bound, trivial_upper_bound
from ..core.errors import (CapacityExceededError, InfeasibleGuessError,
                           InfeasibleInstanceError)
from ..core.instance import Instance
from ..core.schedule import NonPreemptiveSchedule
from ._milp_util import FeasibilityMILP
from .common import PTASResult, integral_guess_search
from .configurations import (Multiset, build_configuration_space,
                             enumerate_bounded_multisets, multiset_total)
from .rounding import IntegralRounding, group_jobs, round_grouped
from .splittable import _resolve_q

__all__ = ["ptas_nonpreemptive"]

DEFAULT_MACHINE_CAP = 20_000


def _reachable_module_sizes(sizes: tuple[int, ...], max_total: int,
                            min_piece: int) -> list[int]:
    """All achievable module sizes: sums of at least one job size, bounded
    by ``max_total`` (unbounded multiplicity — a superset per class is
    harmless, the coverage constraints prune it)."""
    reach = [False] * (max_total + 1)
    reach[0] = True
    for v in range(min(sizes, default=max_total + 1), max_total + 1):
        for p in sizes:
            if p <= v and reach[v - p]:
                reach[v] = True
                break
    return [v for v in range(min_piece, max_total + 1) if reach[v]]


@dataclass
class _GuessArtifact:
    rounding: IntegralRounding
    config_assign: list[tuple[Multiset, int]]       # (config, machine count)
    modules_per_class: dict[int, list[tuple[Multiset, int]]]
    small_assignment: dict[tuple[int, int], list[int]]


def ptas_nonpreemptive(inst: Instance,
                       epsilon: float | Fraction | None = None,
                       delta: Fraction | int | None = None,
                       machine_cap: int = DEFAULT_MACHINE_CAP,
                       enum_cap: int = 200_000) -> PTASResult:
    """(1 + eps)-approximation for non-preemptive CCS (Theorem 14)."""
    inst = inst.normalized()
    # feasibility first: an infeasible instance is 'infeasible' from
    # every solver, even one that is also over this PTAS's machine cap
    inst.require_feasible()
    q = _resolve_q(epsilon, delta)
    if inst.machines > machine_cap:
        raise CapacityExceededError("machines (explicit PTAS)",
                                    inst.machines, machine_cap)
    lb = nonpreemptive_lower_bound(inst)
    if lb < 0:    # pragma: no cover — ruled out by require_feasible
        raise InfeasibleInstanceError(inst.num_classes, inst.slot_budget())
    ub = int(trivial_upper_bound(inst))

    def try_guess(T: int) -> _GuessArtifact:
        return _solve_guess(inst, T, q, enum_cap)

    T, art, tried = integral_guess_search(lb, ub, try_guess)
    sched = _build_schedule(inst, art)
    dlt = Fraction(1, q)
    eps_out = Fraction(epsilon).limit_denominator(10**6) if epsilon is not None \
        else 7 * dlt
    return PTASResult(schedule=sched, guess=Fraction(T), epsilon=eps_out,
                      delta=dlt, makespan=Fraction(sched.makespan(inst)),
                      guesses_tried=tried)


def _solve_guess(inst: Instance, T: int, q: int,
                 enum_cap: int) -> _GuessArtifact:
    grouped = group_jobs(inst, T, q)
    rnd = round_grouped(inst, grouped, T, q,
                        tbar_factor_num=(q + 3) * (q + 2),
                        tbar_factor_den=q * q,
                        per_class_slot_unit=True)
    c, m = inst.class_slots, inst.machines
    Tbar = rnd.Tbar_units
    min_piece = q * c  # delta*T in units
    c_star = min(c, Tbar // min_piece)

    # any grouped large job must fit a machine at all
    for u, g in enumerate(grouped.classes):
        if not g.is_small and rnd.large_sizes[u] and \
                max(rnd.large_sizes[u]) > Tbar:
            raise InfeasibleGuessError(
                f"a grouped job exceeds the machine budget at T={T}")

    large = [u for u in range(inst.num_classes)
             if not grouped.classes[u].is_small]
    small = [u for u in range(inst.num_classes)
             if grouped.classes[u].is_small]

    # per-class module enumeration (bounded by available job counts)
    class_modules: dict[int, list[Multiset]] = {}
    for u in large:
        counts = rnd.size_counts(u)
        vals = sorted(counts)
        mods = enumerate_bounded_multisets(
            vals, max_items=Tbar // min(vals), max_total=Tbar,
            max_count_per_value=[counts[v] for v in vals],
            cap=enum_cap, include_empty=False)
        class_modules[u] = mods

    lambda_set = sorted({multiset_total(ms)
                         for mods in class_modules.values()
                         for ms in mods})
    if not lambda_set and large:
        raise InfeasibleGuessError("no modules available")
    space = build_configuration_space(lambda_set or [min_piece], c_star,
                                      Tbar, cap=enum_cap)
    buckets = sorted(space.buckets)
    lam_index = {v: i for i, v in enumerate(lambda_set)}

    nK = space.num_configs
    nB = len(buckets)
    y_offsets: dict[int, int] = {}
    off = nK
    for u in large:
        y_offsets[u] = off
        off += len(class_modules[u])
    off_z = off
    nvar = off_z + len(small) * nB

    def xv(k):
        return k

    def yv(u, mi):
        return y_offsets[u] + mi

    def zv(ui, bi):
        return off_z + ui * nB + bi

    mp = FeasibilityMILP(nvar)
    for k in range(nK):
        mp.set_bounds(xv(k), 0, m)
    for u in large:
        for mi in range(len(class_modules[u])):
            mp.set_bounds(yv(u, mi), 0, m * c_star)
    for ui in range(len(small)):
        for bi in range(nB):
            mp.set_bounds(zv(ui, bi), 0, 1)

    # (0) machine count
    mp.add_eq({xv(k): 1.0 for k in range(nK)}, float(m))
    # (1) configurations cover module sizes
    for h in lambda_set:
        coeffs: dict[int, float] = {}
        for k, cfg in enumerate(space.configs):
            cnt = dict(cfg).get(h, 0)
            if cnt:
                coeffs[xv(k)] = float(cnt)
        for u in large:
            for mi, ms in enumerate(class_modules[u]):
                if multiset_total(ms) == h:
                    coeffs[yv(u, mi)] = -1.0
        mp.add_eq(coeffs, 0.0)
    # (4) modules cover the jobs of each large class, per size
    for u in large:
        counts = rnd.size_counts(u)
        for p, need in counts.items():
            coeffs = {}
            for mi, ms in enumerate(class_modules[u]):
                k_p = dict(ms).get(p, 0)
                if k_p:
                    coeffs[yv(u, mi)] = float(k_p)
            mp.add_eq(coeffs, float(need))
    # (5) small classes placed once
    for ui in range(len(small)):
        mp.add_eq({zv(ui, bi): 1.0 for bi in range(nB)}, 1.0)
    # (2)+(3) slots and space per bucket
    for bi, (h, b) in enumerate(buckets):
        ks = space.buckets[(h, b)]
        slot_coeffs = {zv(ui, bi): 1.0 for ui in range(len(small))}
        for k in ks:
            slot_coeffs[xv(k)] = -(float(c - b))
        mp.add_le(slot_coeffs, 0.0)
        space_coeffs = {zv(ui, bi): float(rnd.small_size[small[ui]])
                        for ui in range(len(small))}
        for k in ks:
            space_coeffs[xv(k)] = -(float(Tbar - h))
        mp.add_le(space_coeffs, 0.0)

    T_units = q * q * c
    objective = {xv(k): float(max(0, space.sizes[k] - T_units))
                 for k in range(nK)}
    sol = mp.solve(objective)
    if sol is None:
        raise InfeasibleGuessError(f"configuration ILP infeasible at T={T}")

    config_assign = [(space.configs[k], int(sol[xv(k)]))
                     for k in range(nK) if sol[xv(k)]]
    modules_per_class = {
        u: [(ms, int(sol[yv(u, mi)]))
            for mi, ms in enumerate(class_modules[u]) if sol[yv(u, mi)]]
        for u in large}
    small_assignment: dict[tuple[int, int], list[int]] = {}
    for ui, u in enumerate(small):
        for bi, hb in enumerate(buckets):
            if sol[zv(ui, bi)]:
                small_assignment.setdefault(hb, []).append(u)
    return _GuessArtifact(rnd, config_assign, modules_per_class,
                          small_assignment)


def _build_schedule(inst: Instance,
                    art: _GuessArtifact) -> NonPreemptiveSchedule:
    """Figure 4: dissolve configurations into slots, slots into modules,
    modules into grouped jobs, grouped jobs into original jobs."""
    rnd = art.rounding
    grouped = rnd.grouped
    sched = NonPreemptiveSchedule(inst.num_jobs, inst.machines)

    # queues of grouped jobs per (class, rounded size)
    job_queues: dict[tuple[int, int], list[tuple[int, ...]]] = {}
    for u, g in enumerate(grouped.classes):
        if g.is_small:
            continue
        for sz, members in zip(rnd.large_sizes[u], g.members):
            job_queues.setdefault((u, sz), []).append(members)

    # instantiate modules: queue per module size of (class, multiset)
    module_queues: dict[int, list[tuple[int, Multiset]]] = {}
    for u, mods in art.modules_per_class.items():
        for ms, cnt in mods:
            h = multiset_total(ms)
            for _ in range(cnt):
                module_queues.setdefault(h, []).append((u, ms))

    machine_cfg: list[Multiset] = []
    bucket_of_machine: list[tuple[int, int]] = []
    for cfg, cnt in art.config_assign:
        h = multiset_total(cfg)
        b = sum(k for _, k in cfg)
        for _ in range(cnt):
            machine_cfg.append(cfg)
            bucket_of_machine.append((h, b))
    assert len(machine_cfg) == inst.machines

    for i, cfg in enumerate(machine_cfg):
        for h, slots in cfg:
            for _ in range(slots):
                u, ms = module_queues[h].pop()
                for p, k_p in ms:
                    for _ in range(k_p):
                        members = job_queues[(u, p)].pop()
                        for j in members:
                            sched.assign(j, i)
    assert all(not v for v in module_queues.values()), "unfilled slots"
    assert all(not v for v in job_queues.values()), "unplaced grouped jobs"

    # small classes: round robin per bucket, assigning the grouped job's
    # original members wholesale
    for hb, classes in art.small_assignment.items():
        machines = [i for i, mb in enumerate(bucket_of_machine) if mb == hb]
        order = sorted(classes, key=lambda u: (-grouped.classes[u].sizes[0], u))
        for pos, u in enumerate(order):
            target = machines[pos % len(machines)]
            for j in grouped.classes[u].members[0]:
                sched.assign(j, target)
    return sched
