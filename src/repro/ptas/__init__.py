"""Polynomial-time approximation schemes (Section 4 of the paper)."""

from .common import PTASResult, delta_for_epsilon
from .nfold_builders import build_nonpreemptive_nfold, build_splittable_nfold
from .nonpreemptive import ptas_nonpreemptive
from .preemptive import build_lemma16_network, ptas_preemptive
from .splittable import ptas_splittable

__all__ = [
    "ptas_splittable",
    "ptas_nonpreemptive",
    "ptas_preemptive",
    "PTASResult",
    "delta_for_epsilon",
    "build_splittable_nfold",
    "build_nonpreemptive_nfold",
    "build_lemma16_network",
]
