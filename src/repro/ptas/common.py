"""Shared PTAS machinery: accuracy handling and dual approximation search.

All three PTASes follow Hochbaum–Shmoys dual approximation: a procedure
``try_guess(T)`` either produces a schedule of makespan ``(1+O(delta))T``
or *proves* that no schedule of makespan ``T`` exists (the configuration
ILP is infeasible). A binary search over guesses then yields the PTAS.

The rejection test is one-sided — failure at ``T`` implies ``OPT > T`` —
so the searches below maintain the invariant "everything below the final
guess was rejected", giving ``T <= (1+delta) * OPT`` on the multiplicative
grid (splittable) and ``T <= OPT`` on the integer grid (the other regimes,
whose optima are integral).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import ceil
from typing import Any, Callable

from ..core.errors import InfeasibleGuessError

__all__ = ["delta_for_epsilon", "PTASResult", "integral_guess_search",
           "geometric_guess_search"]


def delta_for_epsilon(epsilon: float | Fraction, budget: int = 7) -> Fraction:
    """The accuracy parameter ``delta = 1/q`` with ``1/delta`` integral.

    ``budget`` is the constant hidden in the paper's ``eps = O(delta)``:
    our error analyses lose at most ``budget * delta`` overall, so we pick
    ``q = ceil(budget / eps)``, giving a final ratio of at most
    ``1 + epsilon``. Any positive ``epsilon`` is accepted — values above 1
    are the coarse (fast) regime, floored at the minimal grid ``q = 2``,
    where the guarantee ``1 + budget * delta <= 1 + epsilon`` still holds;
    the registry's PTAS default epsilon lives there.
    """
    eps = Fraction(epsilon).limit_denominator(10**6)
    if eps <= 0:
        raise ValueError(f"epsilon must be > 0, got {epsilon}")
    q = max(2, int(ceil(budget / eps)))
    return Fraction(1, q)


@dataclass
class PTASResult:
    """Outcome of a PTAS run.

    ``guess`` is the accepted makespan guess; in the integral regimes it is
    a certified lower bound on OPT, in the splittable regime it is at most
    ``(1+delta) * OPT``. ``makespan / guess`` therefore certifies the
    achieved ratio up to the stated slack.
    """

    schedule: Any
    guess: Fraction
    epsilon: Fraction
    delta: Fraction
    makespan: Fraction
    guesses_tried: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def ratio_certificate(self) -> Fraction:
        return self.makespan / self.guess if self.guess > 0 else Fraction(0)


def integral_guess_search(lb: int, ub: int,
                          try_guess: Callable[[int], Any]) -> tuple[int, Any, int]:
    """Smallest integral accepted guess in ``[lb, ub]``.

    ``try_guess`` returns an artifact on acceptance and raises
    :class:`InfeasibleGuessError` on rejection. Because rejection at ``T``
    proves ``OPT > T``, the returned guess is at most ``OPT`` whenever
    acceptance is guaranteed for every ``T >= OPT`` (the PTAS lemmas).
    Returns ``(guess, artifact, guesses_tried)``.
    """
    tried = 0
    lo, hi = lb, ub
    best: tuple[int, Any] | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        tried += 1
        try:
            art = try_guess(mid)
        except InfeasibleGuessError:
            lo = mid + 1
            continue
        best = (mid, art)
        hi = mid - 1
    if best is None:
        raise InfeasibleGuessError(
            f"no feasible guess in [{lb}, {ub}] — instance infeasible")
    return best[0], best[1], tried


def geometric_guess_search(lb: Fraction, ub: Fraction, delta: Fraction,
                           try_guess: Callable[[Fraction], Any]
                           ) -> tuple[Fraction, Any, int]:
    """Accepted guess on the grid ``lb * (1+delta)^k``, smallest accepted k.

    Guarantees ``guess <= (1+delta) * OPT``: the grid point directly below
    the accepted one was rejected (or was the lower bound itself), and
    rejection at ``T`` proves ``OPT > T``.
    """
    lb, ub = Fraction(lb), Fraction(ub)
    if lb <= 0:
        raise ValueError("lower bound must be positive")
    step = 1 + Fraction(delta)
    # number of grid points
    kmax = 0
    v = lb
    while v < ub:
        v *= step
        kmax += 1
    tried = 0
    lo, hi = 0, kmax
    best: tuple[Fraction, Any] | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        T = lb * step ** mid
        tried += 1
        try:
            art = try_guess(T)
        except InfeasibleGuessError:
            lo = mid + 1
            continue
        best = (T, art)
        hi = mid - 1
    if best is None:
        raise InfeasibleGuessError(
            f"no feasible guess in [{lb}, {ub}] — instance infeasible")
    return best[0], best[1], tried
