"""Faithful N-fold constructions of the paper's configuration ILPs.

The production PTAS path solves compact (aggregated) MILPs; this module
builds the *exact* N-fold block matrices of Section 4 — one brick per
class, variables ``x^u_K | y^u | z^u_{h,b} | slack`` — so that

* the paper's claimed block structure (r, s, t, Δ) can be inspected and
  reported (``benchmarks/bench_nfold.py``), and
* tests can certify that the faithful N-fold and the compact MILP agree on
  feasibility for micro instances (they encode the same schedules: the
  per-class duplication of ``x`` carries no meaning, as the paper notes).

Only the splittable and non-preemptive IPs are constructed; the preemptive
configuration set is exponential in the layer count (0-1 vectors over
layers), which is exactly why the production path aggregates by machine
instead (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..nfold.structure import NFold
from .configurations import (build_configuration_space,
                             enumerate_bounded_multisets, multiset_total,
                             splittable_modules)
from .rounding import group_jobs, round_grouped, round_splittable

__all__ = ["build_splittable_nfold", "build_nonpreemptive_nfold"]


def build_splittable_nfold(inst: Instance, T, q: int,
                           config_cap: int = 50_000) -> NFold:
    """The N-fold IP of Section 4.1 for guess ``T`` (feasibility: w = 0).

    Brick ``u`` holds ``x^u_K``, ``y^u_q``, ``z^u_{h,b}`` and one slack
    column per inequality row ((2) and (3)), exactly as the paper counts
    them into ``t``. Globally uniform rows: (0), (1), (2), (3); locally
    uniform rows: (4), (5).
    """
    inst = inst.normalized()
    rnd = round_splittable(inst, T, q)
    c, m = inst.class_slots, inst.machines
    module_sizes = splittable_modules(q, c)
    c_star = min(q + 4, c)
    space = build_configuration_space(module_sizes, c_star, rnd.Tbar_units,
                                      cap=config_cap)
    buckets = sorted(space.buckets)
    nK, nM, nB = space.num_configs, len(module_sizes), len(buckets)
    C = inst.num_classes

    # brick layout: x (nK) | y (nM) | z (nB) | slack2 (nB) | slack3 (nB)
    t = nK + nM + 3 * nB
    r = 1 + nM + 2 * nB
    s = 2

    A = np.zeros((r, t), dtype=np.int64)  # shared structure; (3) varies by u
    # row 0: sum_K x = m
    A[0, :nK] = 1
    # rows 1..nM: configurations cover modules
    for si, sz in enumerate(module_sizes):
        for k, cfg in enumerate(space.configs):
            cnt = dict(cfg).get(sz, 0)
            if cnt:
                A[1 + si, k] = cnt
        A[1 + si, nK + si] = -1
    # rows (2): z + (b - c) x + slack = 0, per bucket
    for bi, (h, b) in enumerate(buckets):
        row = 1 + nM + bi
        A[row, nK + nM + bi] = 1
        for k in space.buckets[(h, b)]:
            A[row, k] = b - c
        A[row, nK + nM + nB + bi] = 1
    # rows (3): p'_u z + (h - Tbar) x + slack = 0 — p'_u differs per brick
    A_blocks = []
    for u in range(C):
        Au = A.copy()
        for bi, (h, b) in enumerate(buckets):
            row = 1 + nM + nB + bi
            Au[row, nK + nM + bi] = rnd.size_units[u] if rnd.is_small[u] else 0
            for k in space.buckets[(h, b)]:
                Au[row, k] = h - rnd.Tbar_units
            Au[row, nK + nM + 2 * nB + bi] = 1
        A_blocks.append(Au)

    # local rows: (4) sum_q q y^u_q = (1-xi_u) p'_u ; (5) sum z = xi_u
    B = np.zeros((s, t), dtype=np.int64)
    for si, sz in enumerate(module_sizes):
        B[0, nK + si] = sz
    B[1, nK + nM:nK + nM + nB] = 1
    b_local = []
    for u in range(C):
        xi = 1 if rnd.is_small[u] else 0
        b_local.append(np.array([0 if xi else rnd.size_units[u], xi],
                                dtype=np.int64))

    b_global = np.zeros(r, dtype=np.int64)
    b_global[0] = m

    lower = np.zeros(C * t, dtype=np.int64)
    upper = np.zeros(C * t, dtype=np.int64)
    big = max(m * c_star * rnd.Tbar_units, m)
    for u in range(C):
        o = u * t
        upper[o:o + nK] = m
        upper[o + nK:o + nK + nM] = m * (q + 4)
        upper[o + nK + nM:o + nK + nM + nB] = 1
        upper[o + nK + nM + nB:o + t] = big
    w = np.zeros(C * t, dtype=np.int64)
    return NFold(A_blocks, [B.copy() for _ in range(C)], b_global, b_local,
                 lower, upper, w)


def build_nonpreemptive_nfold(inst: Instance, T: int, q: int,
                              enum_cap: int = 50_000) -> NFold:
    """The N-fold IP of Section 4.2 for guess ``T`` (feasibility: w = 0).

    Modules here are the *global* set of job-size multisets fitting the
    budget (the paper's M); brick ``u`` holds ``x^u_K | y^u_M | z^u_{h,b}``
    plus slack columns. Locally uniform rows: (4) per size ``p in P`` and
    (5) — ``s = |P| + 1`` as the paper states.
    """
    inst = inst.normalized()
    grouped = group_jobs(inst, T, q)
    rnd = round_grouped(inst, grouped, T, q,
                        tbar_factor_num=(q + 3) * (q + 2),
                        tbar_factor_den=q * q,
                        per_class_slot_unit=True)
    c, m = inst.class_slots, inst.machines
    Tbar = rnd.Tbar_units
    P = list(rnd.distinct_sizes)
    if not P:
        P = [q * c]
    modules = enumerate_bounded_multisets(
        P, max_items=Tbar // min(P), max_total=Tbar, cap=enum_cap,
        include_empty=False)
    lambda_set = sorted({multiset_total(ms) for ms in modules})
    c_star = min(c, Tbar // (q * c))
    space = build_configuration_space(lambda_set, c_star, Tbar, cap=enum_cap)
    buckets = sorted(space.buckets)
    nK, nM, nB, nP = (space.num_configs, len(modules), len(buckets), len(P))
    C = inst.num_classes

    # brick: x (nK) | y (nM) | z (nB) | slack2 (nB) | slack3 (nB)
    t = nK + nM + 3 * nB
    r = 1 + len(lambda_set) + 2 * nB
    s = nP + 1

    A_shared = np.zeros((r, t), dtype=np.int64)
    A_shared[0, :nK] = 1
    for hi, h in enumerate(lambda_set):
        for k, cfg in enumerate(space.configs):
            cnt = dict(cfg).get(h, 0)
            if cnt:
                A_shared[1 + hi, k] = cnt
        for mi, ms in enumerate(modules):
            if multiset_total(ms) == h:
                A_shared[1 + hi, nK + mi] = -1
    for bi, (h, b) in enumerate(buckets):
        row = 1 + len(lambda_set) + bi
        A_shared[row, nK + nM + bi] = 1
        for k in space.buckets[(h, b)]:
            A_shared[row, k] = b - c
        A_shared[row, nK + nM + nB + bi] = 1
    A_blocks = []
    for u in range(C):
        Au = A_shared.copy()
        small_sz = rnd.small_size[u]
        for bi, (h, b) in enumerate(buckets):
            row = 1 + len(lambda_set) + nB + bi
            Au[row, nK + nM + bi] = small_sz
            for k in space.buckets[(h, b)]:
                Au[row, k] = h - Tbar
            Au[row, nK + nM + 2 * nB + bi] = 1
        A_blocks.append(Au)

    B = np.zeros((s, t), dtype=np.int64)
    for pi, p in enumerate(P):
        for mi, ms in enumerate(modules):
            k_p = dict(ms).get(p, 0)
            if k_p:
                B[pi, nK + mi] = k_p
    B[nP, nK + nM:nK + nM + nB] = 1
    b_local = []
    for u in range(C):
        xi = 1 if grouped.classes[u].is_small else 0
        counts = rnd.size_counts(u)
        vec = [0 if xi else counts.get(p, 0) for p in P] + [xi]
        b_local.append(np.array(vec, dtype=np.int64))

    b_global = np.zeros(r, dtype=np.int64)
    b_global[0] = m

    lower = np.zeros(C * t, dtype=np.int64)
    upper = np.zeros(C * t, dtype=np.int64)
    big = max(m * c_star * Tbar, m)
    for u in range(C):
        o = u * t
        upper[o:o + nK] = m
        upper[o + nK:o + nK + nM] = m * max(c_star, 1)
        upper[o + nK + nM:o + nK + nM + nB] = 1
        upper[o + nK + nM + nB:o + t] = big
    w = np.zeros(C * t, dtype=np.int64)
    return NFold(A_blocks, [B.copy() for _ in range(C)], b_global, b_local,
                 lower, upper, w)
