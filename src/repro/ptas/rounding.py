"""Grouping and rounding preprocessing for the PTASes (Lemmas 7, 12, 15).

Common scheme: fix the accuracy ``delta = 1/q`` and a makespan guess ``T``.
Classes are made either *large* (every job has size >= delta*T) or *small*
(a single job of size < delta*T); then processing times are rounded so only
``O(1/delta^2)`` distinct sizes remain. All ILP data is expressed in
integral *units*:

* splittable / non-preemptive: the unit is ``delta^2 T / c`` so that both
  large sizes (multiples of ``delta^2 T`` = ``c`` units) and small sizes
  (multiples of the unit) are integers; the machine budget is
  ``T-bar = (1+4 delta) T`` (splittable) respectively
  ``(1+3 delta)(1+2 delta) T`` (non-preemptive).
* preemptive: the unit is the layer height ``delta^2 T``; small classes
  keep their exact sizes (the machine-indexed ILP can afford it).

Rounding only ever rounds *up*, so un-rounding during schedule
construction only shrinks pieces and never breaks feasibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil

from ..core.instance import Instance

__all__ = ["SplittableRounding", "round_splittable", "GroupedClass",
           "GroupedInstance", "group_jobs", "IntegralRounding",
           "round_grouped"]


# --------------------------------------------------------------------- #
# splittable (Lemma 7): one fluid job per class
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class SplittableRounding:
    """Scaled, rounded splittable instance for a guess ``T``."""

    T: Fraction
    q: int                      # 1/delta
    c: int
    unit: Fraction              # delta^2 T / c
    size_units: tuple[int, ...]  # rounded class size, integral units
    is_small: tuple[bool, ...]
    Tbar_units: int             # (1+4 delta) T in units = q c (q+4)

    @property
    def delta(self) -> Fraction:
        return Fraction(1, self.q)


def round_splittable(inst: Instance, T: Fraction, q: int) -> SplittableRounding:
    """Group each class into one fluid job and round (splittable PTAS)."""
    T = Fraction(T)
    c = inst.class_slots
    unit = T / (q * q * c)
    sizes = []
    small = []
    for P in inst.class_loads():
        if P * q > T:  # P > delta*T -> large
            small.append(False)
            sizes.append(ceil(Fraction(P) / (unit * c)) * c)
        else:
            small.append(True)
            sizes.append(ceil(Fraction(P) / unit))
    return SplittableRounding(T=T, q=q, c=c, unit=unit,
                              size_units=tuple(sizes),
                              is_small=tuple(small),
                              Tbar_units=q * c * (q + 4))


# --------------------------------------------------------------------- #
# grouping whole jobs (Lemmas 12 / 15)
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class GroupedClass:
    """One class after grouping: grouped jobs with their member lists."""

    sizes: tuple[int, ...]                 # grouped job sizes (original units)
    members: tuple[tuple[int, ...], ...]   # original job ids per grouped job
    is_small: bool                         # single job of size < delta*T


@dataclass(frozen=True)
class GroupedInstance:
    """All classes of an instance after grouping for a guess ``T``."""

    T: int
    q: int
    classes: tuple[GroupedClass, ...]

    def num_grouped_jobs(self) -> int:
        return sum(len(g.sizes) for g in self.classes)


def group_jobs(inst: Instance, T: int, q: int) -> GroupedInstance:
    """Group jobs per class so every class is large or small (Lemma 12).

    Small jobs (``p_j < delta*T``, i.e. ``p_j * q < T``) are repeatedly
    packed into chunks with total in ``[delta*T, 2 delta*T)``; the leftover
    ``Y`` (< delta*T) is merged into an existing chunk if one exists (result
    < 3 delta*T), else into the smallest large job, else the class becomes
    a small class consisting of ``Y`` alone.
    """
    classes: list[GroupedClass] = []
    for u in range(inst.num_classes):
        jobs = inst.jobs_of_class(u)
        smalls = [j for j in jobs if inst.processing_times[j] * q < T]
        bigs = [j for j in jobs if inst.processing_times[j] * q >= T]
        # build chunks of total in [delta*T, 2*delta*T)
        chunks: list[list[int]] = []
        cur: list[int] = []
        cur_load = 0
        for j in sorted(smalls, key=lambda j: -inst.processing_times[j]):
            cur.append(j)
            cur_load += inst.processing_times[j]
            if cur_load * q >= T:
                chunks.append(cur)
                cur, cur_load = [], 0
        leftover = cur  # total < delta*T

        sizes: list[int] = []
        members: list[tuple[int, ...]] = []
        for j in sorted(bigs, key=lambda j: -inst.processing_times[j]):
            sizes.append(inst.processing_times[j])
            members.append((j,))
        for ch in chunks:
            sizes.append(sum(inst.processing_times[j] for j in ch))
            members.append(tuple(ch))
        if leftover:
            extra = sum(inst.processing_times[j] for j in leftover)
            if chunks:
                # merge into the smallest chunk (keeps sizes < 3*delta*T)
                idx = min(range(len(bigs), len(sizes)), key=lambda i: sizes[i])
                sizes[idx] += extra
                members[idx] = members[idx] + tuple(leftover)
            elif bigs:
                # merge into the smallest large job
                idx = min(range(len(bigs)), key=lambda i: sizes[i])
                sizes[idx] += extra
                members[idx] = members[idx] + tuple(leftover)
            else:
                sizes.append(extra)
                members.append(tuple(leftover))
        is_small = len(sizes) == 1 and sizes[0] * q < T
        classes.append(GroupedClass(tuple(sizes), tuple(members), is_small))
    return GroupedInstance(T=T, q=q, classes=tuple(classes))


# --------------------------------------------------------------------- #
# rounding grouped jobs (non-preemptive / preemptive)
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class IntegralRounding:
    """Rounded grouped instance in integral units.

    For the non-preemptive PTAS the unit is ``delta^2 T / c`` and large
    sizes are multiples of ``c``; for the preemptive PTAS the unit is the
    layer height ``delta^2 T`` (``unit_div = q*q``) and small classes keep
    exact sizes.
    """

    grouped: GroupedInstance
    q: int
    c: int
    unit: Fraction
    Tbar_units: int
    large_sizes: tuple[tuple[int, ...], ...]   # per class, rounded job sizes
    small_size: tuple[int, ...]                # per class, rounded small size
    distinct_sizes: tuple[int, ...]            # the set P (units)

    def size_counts(self, u: int) -> dict[int, int]:
        """``n^u_p``: how many grouped jobs of class ``u`` have rounded
        size ``p`` (large classes only)."""
        out: dict[int, int] = {}
        for sz in self.large_sizes[u]:
            out[sz] = out.get(sz, 0) + 1
        return out


def round_grouped(inst: Instance, grouped: GroupedInstance, T: int, q: int,
                  tbar_factor_num: int, tbar_factor_den: int,
                  per_class_slot_unit: bool = True) -> IntegralRounding:
    """Round grouped jobs to multiples of ``delta^2 T`` (large classes) and
    of the unit (small classes).

    ``tbar_factor_num/den`` encode the budget factor: non-preemptive uses
    ``(q+3)(q+2)/q^2`` (i.e. ``(1+3 delta)(1+2 delta)``); preemptive uses
    ``(q+3)(q^2+1)/q^3``. ``per_class_slot_unit`` selects the unit
    ``delta^2 T / c`` (True) or ``delta^2 T`` (False).
    """
    c = inst.class_slots
    div = q * q * c if per_class_slot_unit else q * q
    unit = Fraction(T, div)
    large_mult = c if per_class_slot_unit else 1  # delta^2*T in units
    Tbar_units = ceil(Fraction(T * tbar_factor_num, tbar_factor_den) / unit)

    large_sizes: list[tuple[int, ...]] = []
    small_size: list[int] = []
    distinct: set[int] = set()
    for g in grouped.classes:
        if g.is_small:
            large_sizes.append(())
            small_size.append(ceil(Fraction(g.sizes[0]) / unit))
        else:
            rounded = tuple(
                ceil(Fraction(sz) / (unit * large_mult)) * large_mult
                for sz in g.sizes)
            large_sizes.append(rounded)
            small_size.append(0)
            distinct.update(rounded)
    return IntegralRounding(grouped=grouped, q=q, c=c, unit=unit,
                            Tbar_units=int(Tbar_units),
                            large_sizes=tuple(large_sizes),
                            small_size=tuple(small_size),
                            distinct_sizes=tuple(sorted(distinct)))
