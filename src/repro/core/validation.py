"""Authoritative feasibility validation for CCS schedules.

Every algorithm in this library returns a schedule object; these validators
re-derive feasibility from scratch (completeness, class-slot limits, and for
the preemptive regime non-overlap of same-job pieces and same-machine
pieces). Tests always validate through this module rather than trusting the
producing algorithm — a deliberate separation of construction and checking.

All checks are exact. The non-preemptive validator has a vectorised fast
path (``numpy`` scatter/unique over the assignment) used when the
magnitudes provably fit int64; the fractional validators route their load
accounting through :mod:`repro.core.fastmath`'s grouped exact sums. On any
violation the fast paths re-run the scalar reference checks so error
messages are identical byte for byte.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from .errors import InfeasibleScheduleError
from .fastmath import fast_paths_enabled
from .instance import Instance
from .schedule import (NonPreemptiveSchedule, PreemptiveSchedule,
                       SplittableSchedule)

__all__ = [
    "validate_splittable",
    "validate_preemptive",
    "validate_nonpreemptive",
    "validate",
]


def _check_class_slots(classes_on_machine: set[int], c: int,
                       machine: int) -> None:
    if len(classes_on_machine) > c:
        raise InfeasibleScheduleError(
            f"machine runs {len(classes_on_machine)} classes "
            f"{sorted(classes_on_machine)} but has only {c} class slots",
            machine=machine)


def validate_splittable(inst: Instance, sched: SplittableSchedule) -> Fraction:
    """Validate a splittable schedule; return its makespan.

    Checks: machine count matches, every job fully scheduled (amounts sum to
    ``p_j`` exactly, no over-assignment), and per-machine class-slot limits.
    """
    inst = inst.normalized()
    if sched.num_machines != inst.machines:
        raise InfeasibleScheduleError(
            f"schedule has {sched.num_machines} machines, instance has "
            f"{inst.machines}")
    amounts = sched.job_amounts()
    for j, p in enumerate(inst.processing_times):
        got = amounts.get(j, Fraction(0))
        if got != p:
            raise InfeasibleScheduleError(
                f"job scheduled amount {got} != processing time {p}", job=j)
    for j in amounts:
        if j < 0 or j >= inst.num_jobs:
            raise InfeasibleScheduleError(f"unknown job index {j}", job=j)
    for i in sched.used_machines:
        _check_class_slots(sched.classes_on(i, inst), inst.class_slots, i)
    return sched.makespan()


def validate_preemptive(inst: Instance, sched: PreemptiveSchedule) -> Fraction:
    """Validate a preemptive schedule; return its makespan.

    Beyond the splittable checks, verifies that (a) pieces on the same
    machine do not overlap in time and (b) pieces of the same job do not
    overlap in time across machines (the defining preemptive constraint).
    """
    inst = inst.normalized()
    if sched.num_machines != inst.machines:
        raise InfeasibleScheduleError(
            f"schedule has {sched.num_machines} machines, instance has "
            f"{inst.machines}")
    amounts = sched.job_amounts()
    for j, p in enumerate(inst.processing_times):
        got = amounts.get(j, Fraction(0))
        if got != p:
            raise InfeasibleScheduleError(
                f"job scheduled amount {got} != processing time {p}", job=j)
    for j in amounts:
        if j < 0 or j >= inst.num_jobs:
            raise InfeasibleScheduleError(f"unknown job index {j}", job=j)

    # same-machine pieces must not overlap (a machine is sequential)
    for i in sched.used_machines:
        pieces = sched.pieces_on(i)  # sorted by (start, end)
        for a, b in zip(pieces, pieces[1:]):
            if b.start < a.end:
                raise InfeasibleScheduleError(
                    f"pieces of jobs {a.job} and {b.job} overlap on the same "
                    f"machine: [{a.start},{a.end}) vs [{b.start},{b.end})",
                    machine=i)
        _check_class_slots(sched.classes_on(i, inst), inst.class_slots, i)

    # same-job pieces must not overlap across machines (intervals gathered
    # in one pass — per-job rescans made this check quadratic in n)
    by_job = sched.all_job_intervals()
    for j in range(inst.num_jobs):
        intervals = by_job.get(j, [])
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            if s2 < e1:
                raise InfeasibleScheduleError(
                    f"job runs in parallel with itself: [{s1},{e1}) overlaps "
                    f"[{s2},{e2})", job=j)
    return sched.makespan()


def validate_nonpreemptive(inst: Instance,
                           sched: NonPreemptiveSchedule) -> int:
    """Validate a non-preemptive schedule; return its makespan."""
    inst = inst.normalized()
    if sched.num_machines != inst.machines:
        raise InfeasibleScheduleError(
            f"schedule has {sched.num_machines} machines, instance has "
            f"{inst.machines}")
    if sched.num_jobs != inst.num_jobs:
        raise InfeasibleScheduleError(
            f"schedule covers {sched.num_jobs} jobs, instance has "
            f"{inst.num_jobs}")
    if fast_paths_enabled() and _nonpreemptive_ok_vec(inst, sched):
        return sched.makespan(inst)
    for j, i in enumerate(sched.assignment):
        if i < 0:
            raise InfeasibleScheduleError("job is unassigned", job=j)
    for i, classes in sched.classes_per_machine(inst).items():
        _check_class_slots(classes, inst.class_slots, i)
    return sched.makespan(inst)


def _nonpreemptive_ok_vec(inst: Instance,
                          sched: NonPreemptiveSchedule) -> bool:
    """Vectorised assignment + class-slot check.

    Returns ``True`` when the schedule provably passes; ``False`` sends
    the caller down the scalar path — either because a violation must be
    re-derived there for its exact error message, or because the machine
    index range is too large to bin densely.
    """
    if not sched.dense_machine_range():
        return False
    assign = np.asarray(sched.assignment, dtype=np.int64)
    if assign.min(initial=0) < 0:
        return False                      # unassigned job: scalar re-check
    classes = np.asarray(inst.classes, dtype=np.int64)
    # distinct (machine, class) pairs, then distinct classes per machine
    pair = assign * inst.num_classes + classes
    machines_of_pairs = np.unique(pair) // inst.num_classes
    distinct = np.bincount(machines_of_pairs.astype(np.int64),
                           minlength=sched.num_machines)
    return bool((distinct <= inst.class_slots).all())


def validate(inst: Instance, sched) -> Fraction | int:
    """Dispatch to the validator matching the schedule type."""
    if isinstance(sched, SplittableSchedule):
        return validate_splittable(inst, sched)
    if isinstance(sched, PreemptiveSchedule):
        return validate_preemptive(inst, sched)
    if isinstance(sched, NonPreemptiveSchedule):
        return validate_nonpreemptive(inst, sched)
    # compact schedules implement their own validate hook
    hook = getattr(sched, "validate_against", None)
    if hook is not None:
        return hook(inst)
    raise TypeError(f"unknown schedule type {type(sched)!r}")
