/* Optional compiled kernel core: the innermost integer loops.
 *
 * Two functions, both exact and both guarded by their python callers:
 *
 *   split_count_scaled(loads, num, den) -> int
 *       sum(ceil(P * den / num) for P in loads) on C int64. The caller
 *       (repro.approx.borders) admits a call only under the same
 *       magnitude guard the numpy fast path uses, so no intermediate
 *       product or the accumulated total can overflow; a defensive
 *       OverflowError is raised if that contract is ever violated.
 *
 *   sum_fractions_ll(values) -> (num, den)
 *       The fastmath sum_fractions accumulator on C int64: one
 *       (numerator, denominator) pair, addends sharing the running
 *       denominator cost one addition. Raises OverflowError the moment
 *       any value or intermediate leaves int64 range — the python
 *       wrapper catches it and falls back to the big-int loop, so the
 *       result is exact in every case.
 *
 * Build: python -m repro.core._native_build
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

static PyObject *
split_count_scaled(PyObject *self, PyObject *args)
{
    PyObject *loads;
    long long num, den;
    if (!PyArg_ParseTuple(args, "OLL", &loads, &num, &den))
        return NULL;
    if (num <= 0 || den <= 0) {
        PyErr_SetString(PyExc_ValueError, "num and den must be positive");
        return NULL;
    }
    PyObject *fast = PySequence_Fast(loads, "loads must be a sequence");
    if (fast == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);
    long long total = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        long long p = PyLong_AsLongLong(items[i]);
        if (p == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return NULL;
        }
        long long prod, ceil_term;
        if (p > 0) {
            /* ceil(p*den/num) on positive operands */
            if (__builtin_mul_overflow(p, den, &prod) ||
                __builtin_add_overflow(prod, num - 1, &ceil_term)) {
                Py_DECREF(fast);
                PyErr_SetString(PyExc_OverflowError,
                                "split_count_scaled term overflows int64");
                return NULL;
            }
            ceil_term /= num;
        } else {
            /* -((-p*den) // num): non-negative numerator, so C
             * truncation equals python floor */
            if (__builtin_mul_overflow(-p, den, &prod)) {
                Py_DECREF(fast);
                PyErr_SetString(PyExc_OverflowError,
                                "split_count_scaled term overflows int64");
                return NULL;
            }
            ceil_term = -(prod / num);
        }
        if (__builtin_add_overflow(total, ceil_term, &total)) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_OverflowError,
                            "split_count_scaled total overflows int64");
            return NULL;
        }
    }
    Py_DECREF(fast);
    return PyLong_FromLongLong(total);
}

static PyObject *
sum_fractions_ll(PyObject *self, PyObject *arg)
{
    PyObject *fast = PySequence_Fast(arg, "values must be a sequence");
    if (fast == NULL)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    PyObject **items = PySequence_Fast_ITEMS(fast);
    long long tn = 0, td = 1;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *v = items[i];
        long long vn, vd;
        if (PyLong_Check(v)) {
            vn = PyLong_AsLongLong(v);
            if (vn == -1 && PyErr_Occurred())
                goto fail;
            vd = 1;
        } else {
            PyObject *num = PyObject_GetAttrString(v, "numerator");
            if (num == NULL)
                goto fail;
            vn = PyLong_AsLongLong(num);
            Py_DECREF(num);
            if (vn == -1 && PyErr_Occurred())
                goto fail;
            PyObject *den = PyObject_GetAttrString(v, "denominator");
            if (den == NULL)
                goto fail;
            vd = PyLong_AsLongLong(den);
            Py_DECREF(den);
            if (vd == -1 && PyErr_Occurred())
                goto fail;
        }
        if (vd == td) {
            if (__builtin_add_overflow(tn, vn, &tn))
                goto overflow;
        } else {
            /* tn/td + vn/vd = (tn*vd + vn*td) / (td*vd) */
            long long a, b;
            if (__builtin_mul_overflow(tn, vd, &a) ||
                __builtin_mul_overflow(vn, td, &b) ||
                __builtin_add_overflow(a, b, &tn) ||
                __builtin_mul_overflow(td, vd, &td))
                goto overflow;
        }
    }
    Py_DECREF(fast);
    return Py_BuildValue("(LL)", tn, td);

overflow:
    PyErr_SetString(PyExc_OverflowError,
                    "sum_fractions_ll accumulator overflows int64");
fail:
    Py_DECREF(fast);
    return NULL;
}

static PyMethodDef native_methods[] = {
    {"split_count_scaled", split_count_scaled, METH_VARARGS,
     "sum(ceil(P * den / num) for P in loads) on int64."},
    {"sum_fractions_ll", sum_fractions_ll, METH_O,
     "Exact rational sum on int64; OverflowError when it does not fit."},
    {NULL, NULL, 0, NULL}
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT, "_native",
    "Compiled inner loops of the CCS hot kernels (optional).",
    -1, native_methods
};

PyMODINIT_FUNC
PyInit__native(void)
{
    return PyModule_Create(&native_module);
}
