"""Schedule representations for the three CCS regimes.

All quantities that may be fractional (piece sizes, start times) are exact
``fractions.Fraction`` values — feasibility is never decided in floating
point. Machines are indexed ``0..m-1`` but schedules store only *non-empty*
machines sparsely, so an instance with ``m = 2**60`` machines is
representable as long as only polynomially many machines receive load (the
compact big-``m`` representation in :mod:`repro.approx.compact` covers the
case where exponentially many machines receive load).

Classes here are pure data + cheap derived quantities; the authoritative
feasibility checks live in :mod:`repro.core.validation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator

import numpy as np

from .errors import InvalidInstanceError
from .fastmath import (INT64_SAFE, fast_paths_enabled, max_fraction,
                       sum_fractions)
from .instance import Instance

__all__ = [
    "Piece",
    "TimedPiece",
    "SplittableSchedule",
    "PreemptiveSchedule",
    "NonPreemptiveSchedule",
]

Rational = Fraction | int


def _frac(x: Rational) -> Fraction:
    return x if isinstance(x, Fraction) else Fraction(x)


@dataclass(frozen=True)
class Piece:
    """A piece of a job: ``amount`` units of processing of job ``job``."""

    job: int
    amount: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "amount", _frac(self.amount))
        if self.amount <= 0:
            raise InvalidInstanceError(
                f"piece of job {self.job} has non-positive amount {self.amount}")


@dataclass(frozen=True)
class TimedPiece:
    """A job piece with an explicit start time (preemptive regime)."""

    job: int
    start: Fraction
    amount: Fraction

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", _frac(self.start))
        object.__setattr__(self, "amount", _frac(self.amount))
        if self.amount <= 0:
            raise InvalidInstanceError(
                f"piece of job {self.job} has non-positive amount {self.amount}")
        if self.start < 0:
            raise InvalidInstanceError(
                f"piece of job {self.job} starts at negative time {self.start}")

    @property
    def end(self) -> Fraction:
        return self.start + self.amount


class _SparseMachineSchedule:
    """Shared plumbing: a sparse ``machine -> pieces`` mapping."""

    def __init__(self, num_machines: int) -> None:
        if num_machines < 1:
            raise InvalidInstanceError("schedule needs at least one machine")
        self.num_machines = num_machines

    def _check_machine(self, i: int) -> None:
        if i < 0 or i >= self.num_machines:
            raise InvalidInstanceError(
                f"machine index {i} outside 0..{self.num_machines - 1}")


class SplittableSchedule(_SparseMachineSchedule):
    """Assignment of job pieces to machines (pieces may run in parallel).

    The makespan is the maximum total assigned amount over machines.
    """

    def __init__(self, num_machines: int) -> None:
        super().__init__(num_machines)
        self._machines: dict[int, list[Piece]] = {}

    # construction -------------------------------------------------------
    def assign(self, machine: int, job: int, amount: Rational) -> None:
        """Place ``amount`` units of ``job`` on ``machine``."""
        self._check_machine(machine)
        self._machines.setdefault(machine, []).append(Piece(job, _frac(amount)))

    # queries ------------------------------------------------------------
    @property
    def used_machines(self) -> list[int]:
        """Sorted indices of machines with at least one piece."""
        return sorted(self._machines)

    def pieces_on(self, machine: int) -> list[Piece]:
        return list(self._machines.get(machine, []))

    def iter_pieces(self) -> Iterator[tuple[int, Piece]]:
        """Yield ``(machine, piece)`` for every piece."""
        for i in sorted(self._machines):
            for piece in self._machines[i]:
                yield i, piece

    def load(self, machine: int) -> Fraction:
        if fast_paths_enabled():
            return sum_fractions(
                p.amount for p in self._machines.get(machine, []))
        return sum((p.amount for p in self._machines.get(machine, [])),
                   Fraction(0))

    def loads(self) -> dict[int, Fraction]:
        """Loads of all non-empty machines."""
        return {i: self.load(i) for i in self._machines}

    def makespan(self) -> Fraction:
        if not self._machines:
            return Fraction(0)
        if fast_paths_enabled():
            return max_fraction(self.loads().values())
        return max(self.loads().values())

    def job_amounts(self) -> dict[int, Fraction]:
        """Total scheduled amount per job (for completeness checks)."""
        if fast_paths_enabled():
            return _sum_amounts_by_job(
                (p.job, p.amount)
                for pieces in self._machines.values() for p in pieces)
        out: dict[int, Fraction] = {}
        for pieces in self._machines.values():
            for p in pieces:
                out[p.job] = out.get(p.job, Fraction(0)) + p.amount
        return out

    def classes_on(self, machine: int, inst: Instance) -> set[int]:
        return {inst.classes[p.job] for p in self._machines.get(machine, [])}

    def num_pieces(self) -> int:
        return sum(len(v) for v in self._machines.values())


def _sum_amounts_by_job(pairs: Iterable[tuple[int, Fraction]]
                        ) -> dict[int, Fraction]:
    """Exact per-job amount totals without per-addition gcd churn: one
    running ``(numerator, denominator)`` int pair per job, normalised to
    a ``Fraction`` once at the end (see
    :func:`repro.core.fastmath.sum_fractions` for the idea)."""
    acc: dict[int, tuple[int, int]] = {}
    for job, amount in pairs:
        n, d = amount.numerator, amount.denominator
        cur = acc.get(job)
        if cur is None:
            acc[job] = (n, d)
        elif cur[1] == d:
            acc[job] = (cur[0] + n, d)
        else:
            acc[job] = (cur[0] * d + n * cur[1], cur[1] * d)
    return {job: Fraction(n, d) for job, (n, d) in acc.items()}


class PreemptiveSchedule(_SparseMachineSchedule):
    """Job pieces with start times; same-job pieces must not overlap in time.

    The makespan is the maximum piece end time (idle gaps are allowed, e.g.
    after the repacking shift of Algorithm 2).
    """

    def __init__(self, num_machines: int) -> None:
        super().__init__(num_machines)
        self._machines: dict[int, list[TimedPiece]] = {}

    def assign(self, machine: int, job: int, start: Rational,
               amount: Rational) -> None:
        self._check_machine(machine)
        self._machines.setdefault(machine, []).append(
            TimedPiece(job, _frac(start), _frac(amount)))

    @property
    def used_machines(self) -> list[int]:
        return sorted(self._machines)

    def pieces_on(self, machine: int) -> list[TimedPiece]:
        return sorted(self._machines.get(machine, []),
                      key=lambda p: (p.start, p.end))

    def iter_pieces(self) -> Iterator[tuple[int, TimedPiece]]:
        for i in sorted(self._machines):
            for piece in self.pieces_on(i):
                yield i, piece

    def load(self, machine: int) -> Fraction:
        if fast_paths_enabled():
            return sum_fractions(
                p.amount for p in self._machines.get(machine, []))
        return sum((p.amount for p in self._machines.get(machine, [])),
                   Fraction(0))

    def makespan(self) -> Fraction:
        if fast_paths_enabled():
            return max_fraction(
                (p.end for pieces in self._machines.values()
                 for p in pieces), default=Fraction(0))
        end = Fraction(0)
        for pieces in self._machines.values():
            for p in pieces:
                if p.end > end:
                    end = p.end
        return end

    def job_amounts(self) -> dict[int, Fraction]:
        if fast_paths_enabled():
            return _sum_amounts_by_job(
                (p.job, p.amount)
                for pieces in self._machines.values() for p in pieces)
        out: dict[int, Fraction] = {}
        for pieces in self._machines.values():
            for p in pieces:
                out[p.job] = out.get(p.job, Fraction(0)) + p.amount
        return out

    def job_intervals(self, job: int) -> list[tuple[Fraction, Fraction]]:
        """All (start, end) intervals of ``job`` across machines, sorted."""
        out = [(p.start, p.end)
               for pieces in self._machines.values()
               for p in pieces if p.job == job]
        out.sort()
        return out

    def all_job_intervals(self) -> dict[int, list[tuple[Fraction, Fraction]]]:
        """``job -> sorted (start, end) intervals`` for every scheduled job,
        collected in one pass over the pieces. Equivalent to calling
        :meth:`job_intervals` per job, without the quadratic rescan."""
        out: dict[int, list[tuple[Fraction, Fraction]]] = {}
        for pieces in self._machines.values():
            for p in pieces:
                out.setdefault(p.job, []).append((p.start, p.end))
        for intervals in out.values():
            intervals.sort()
        return out

    def classes_on(self, machine: int, inst: Instance) -> set[int]:
        return {inst.classes[p.job] for p in self._machines.get(machine, [])}

    def num_pieces(self) -> int:
        return sum(len(v) for v in self._machines.values())


class NonPreemptiveSchedule:
    """A total assignment ``job -> machine`` (no splitting).

    Stored as a list for O(1) access; ``-1`` marks an unassigned job, which
    validation rejects.
    """

    def __init__(self, num_jobs: int, num_machines: int) -> None:
        if num_machines < 1:
            raise InvalidInstanceError("schedule needs at least one machine")
        if num_jobs < 1:
            raise InvalidInstanceError("schedule needs at least one job")
        self.num_machines = num_machines
        self._assignment: list[int] = [-1] * num_jobs

    @staticmethod
    def from_assignment(assignment: Iterable[int],
                        num_machines: int) -> "NonPreemptiveSchedule":
        assignment = list(assignment)
        sched = NonPreemptiveSchedule(len(assignment), num_machines)
        for j, i in enumerate(assignment):
            sched.assign(j, i)
        return sched

    @property
    def num_jobs(self) -> int:
        return len(self._assignment)

    def assign(self, job: int, machine: int) -> None:
        if machine < 0 or machine >= self.num_machines:
            raise InvalidInstanceError(
                f"machine index {machine} outside 0..{self.num_machines - 1}")
        if job < 0 or job >= len(self._assignment):
            raise InvalidInstanceError(
                f"job index {job} outside 0..{len(self._assignment) - 1}")
        self._assignment[job] = machine

    def machine_of(self, job: int) -> int:
        return self._assignment[job]

    @property
    def assignment(self) -> tuple[int, ...]:
        return tuple(self._assignment)

    def jobs_on(self, machine: int) -> list[int]:
        return [j for j, i in enumerate(self._assignment) if i == machine]

    @property
    def used_machines(self) -> list[int]:
        return sorted({i for i in self._assignment if i >= 0})

    def load(self, machine: int, inst: Instance) -> int:
        return sum(inst.processing_times[j] for j in self.jobs_on(machine))

    def loads(self, inst: Instance) -> dict[int, int]:
        if fast_paths_enabled() and self._vectorizable(inst):
            per_machine, used = self._load_vector(inst)
            return {int(i): int(per_machine[i]) for i in used}
        out: dict[int, int] = {}
        for j, i in enumerate(self._assignment):
            if i >= 0:
                out[i] = out.get(i, 0) + inst.processing_times[j]
        return out

    def makespan(self, inst: Instance) -> int:
        if fast_paths_enabled() and self._vectorizable(inst):
            per_machine, used = self._load_vector(inst)
            return int(per_machine.max()) if used.size else 0
        loads = self.loads(inst)
        return max(loads.values()) if loads else 0

    def dense_machine_range(self) -> bool:
        """Whether the machine index range is small enough to bin densely
        with numpy (shared gate for the vectorised load accounting here
        and the vectorised validation in :mod:`repro.core.validation` —
        ``m`` may be astronomically large, and a dense per-machine array
        must never be allocated for such instances)."""
        return self.num_machines <= 4 * self.num_jobs + 64

    def _vectorizable(self, inst: Instance) -> bool:
        # total_load bounds every machine load, so int64 accumulation in
        # the scatter-add cannot overflow when it fits
        return inst.total_load < INT64_SAFE and self.dense_machine_range()

    def _load_vector(self, inst: Instance) -> tuple[np.ndarray, np.ndarray]:
        """Per-machine load totals accumulated in exact int64 (one
        scatter-add over the assignment, unassigned jobs excluded);
        returns ``(loads, used machine indices)``."""
        assign = np.asarray(self._assignment, dtype=np.int64)
        times = np.asarray(inst.processing_times, dtype=np.int64)
        mask = assign >= 0
        per_machine = np.zeros(self.num_machines, dtype=np.int64)
        np.add.at(per_machine, assign[mask], times[mask])
        return per_machine, np.unique(assign[mask])

    def classes_on(self, machine: int, inst: Instance) -> set[int]:
        return {inst.classes[j] for j in self.jobs_on(machine)}

    def classes_per_machine(self, inst: Instance) -> dict[int, set[int]]:
        out: dict[int, set[int]] = {}
        for j, i in enumerate(self._assignment):
            if i >= 0:
                out.setdefault(i, set()).add(inst.classes[j])
        return out
