"""Core data model: instances, schedules, validation, and makespan bounds."""

from .bounds import (area_bound, class_slot_bound, nonpreemptive_lower_bound,
                     nonpreemptive_slot_bound, pmax_bound,
                     preemptive_lower_bound, splittable_lower_bound,
                     trivial_upper_bound)
from .errors import (CapacityExceededError, CCSError, InfeasibleGuessError,
                     InfeasibleInstanceError, InfeasibleScheduleError,
                     InvalidInstanceError, SolverError,
                     UnsupportedInstanceError)
from .instance import Instance, encoding_length
from .schedule import (NonPreemptiveSchedule, Piece, PreemptiveSchedule,
                       SplittableSchedule, TimedPiece)
from .validation import (validate, validate_nonpreemptive,
                         validate_preemptive, validate_splittable)

__all__ = [
    "Instance",
    "encoding_length",
    "Piece",
    "TimedPiece",
    "SplittableSchedule",
    "PreemptiveSchedule",
    "NonPreemptiveSchedule",
    "validate",
    "validate_splittable",
    "validate_preemptive",
    "validate_nonpreemptive",
    "area_bound",
    "pmax_bound",
    "class_slot_bound",
    "nonpreemptive_slot_bound",
    "splittable_lower_bound",
    "preemptive_lower_bound",
    "nonpreemptive_lower_bound",
    "trivial_upper_bound",
    "CCSError",
    "InvalidInstanceError",
    "InfeasibleInstanceError",
    "InfeasibleScheduleError",
    "InfeasibleGuessError",
    "UnsupportedInstanceError",
    "SolverError",
    "CapacityExceededError",
]
