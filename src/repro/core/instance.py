"""Instance model for Class Constrained Scheduling (CCS).

An instance is ``I = [p_1..p_n, c_1..c_n, m, c]``: ``n`` jobs with integral
processing times ``p_j >= 1`` and classes ``c_j`` (arbitrary hashable labels,
canonicalised to ``0..C-1`` internally), ``m`` identical machines, and ``c``
class slots per machine (each machine may run jobs of at most ``c`` distinct
classes).

The paper assumes ``c <= C <= n`` w.l.o.g. (Section 1): if ``c > C`` or
``c > n`` every machine can hold all classes and the problem degenerates to
classical makespan scheduling. We do *not* reject such instances — they are
legal inputs — but :meth:`Instance.normalized` applies the paper's reductions
(clamp ``c``, drop empty classes) and every algorithm calls it first.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from fractions import Fraction
from functools import cached_property
from typing import Hashable, Iterable, Sequence

import numpy as np

from .errors import InfeasibleInstanceError, InvalidInstanceError

__all__ = ["Instance", "class_loads", "encoding_length"]


def _hash_ints(h, values: Sequence[int]) -> None:
    """Feed a sequence of ints into a hash: one ``struct`` pack when every
    value fits int64 (the overwhelmingly common case), a length-prefixed
    big-int encoding otherwise (``m`` may be exponential in ``n``)."""
    try:
        packed = struct.pack(f"<{len(values)}q", *values)
    except (struct.error, OverflowError):
        h.update(b"B")
        for v in values:
            v = int(v)
            b = v.to_bytes((v.bit_length() + 8) // 8, "little", signed=True)
            h.update(len(b).to_bytes(4, "little"))
            h.update(b)
    else:
        h.update(b"q")
        h.update(packed)


@dataclass(frozen=True)
class Instance:
    """An immutable CCS instance.

    Parameters
    ----------
    processing_times:
        Tuple of ``n`` positive integers, ``p_j`` for job ``j``.
    classes:
        Tuple of ``n`` class indices in ``0..C-1``; ``classes[j]`` is the
        class of job ``j``.
    machines:
        Number ``m >= 1`` of identical machines. May be astronomically large
        (the paper explicitly supports ``m`` exponential in ``n``).
    class_slots:
        Number ``c >= 1`` of class slots per machine.

    Use :meth:`Instance.create` to build from arbitrary class labels and
    unvalidated sequences.
    """

    processing_times: tuple[int, ...]
    classes: tuple[int, ...]
    machines: int
    class_slots: int
    class_labels: tuple[Hashable, ...] = field(default=(), compare=False)

    # ------------------------------------------------------------------ #
    # construction & validation
    # ------------------------------------------------------------------ #

    def __post_init__(self) -> None:
        n = len(self.processing_times)
        if n == 0:
            raise InvalidInstanceError("instance must contain at least one job")
        if len(self.classes) != n:
            raise InvalidInstanceError(
                f"classes has length {len(self.classes)} but there are {n} jobs")
        for j, p in enumerate(self.processing_times):
            if not isinstance(p, (int, np.integer)) or isinstance(p, bool):
                raise InvalidInstanceError(
                    f"processing time of job {j} is not an integer: {p!r}")
            if p <= 0:
                raise InvalidInstanceError(
                    f"processing time of job {j} must be >= 1, got {p}")
        if self.machines < 1:
            raise InvalidInstanceError(f"machines must be >= 1, got {self.machines}")
        if self.class_slots < 1:
            raise InvalidInstanceError(
                f"class_slots must be >= 1, got {self.class_slots}")
        cmax = self.num_classes
        for j, u in enumerate(self.classes):
            if not isinstance(u, (int, np.integer)) or isinstance(u, bool):
                raise InvalidInstanceError(
                    f"class of job {j} is not an integer index: {u!r}")
            if u < 0 or u >= cmax:
                raise InvalidInstanceError(
                    f"class of job {j} is {u}, outside 0..{cmax - 1}; classes "
                    "must be contiguous indices (use Instance.create)")
        if set(self.classes) != set(range(cmax)):
            missing = sorted(set(range(cmax)) - set(self.classes))
            raise InvalidInstanceError(
                f"classes must be contiguous 0..C-1 with no empty class; "
                f"missing {missing} (use Instance.create)")
        if self.class_labels and len(self.class_labels) != cmax:
            raise InvalidInstanceError(
                f"class_labels has length {len(self.class_labels)} but there "
                f"are {cmax} classes")

    @staticmethod
    def create(processing_times: Sequence[int],
               classes: Sequence[Hashable],
               machines: int,
               class_slots: int) -> "Instance":
        """Build an instance from arbitrary hashable class labels.

        Labels are canonicalised to contiguous indices ``0..C-1`` in order of
        first appearance; the original labels are retained in
        ``class_labels`` for reporting.
        """
        label_to_idx: dict[Hashable, int] = {}
        idx_classes = []
        for lbl in classes:
            if lbl not in label_to_idx:
                label_to_idx[lbl] = len(label_to_idx)
            idx_classes.append(label_to_idx[lbl])
        return Instance(
            processing_times=tuple(int(p) for p in processing_times),
            classes=tuple(idx_classes),
            machines=int(machines),
            class_slots=int(class_slots),
            class_labels=tuple(label_to_idx.keys()),
        )

    # ------------------------------------------------------------------ #
    # basic quantities
    # ------------------------------------------------------------------ #

    # The derived quantities below are memoized: they are read inside the
    # solvers' binary-search/guess loops, and rescanning all jobs on every
    # access turns O(n) algorithms into O(n^2). ``Instance`` is frozen, so
    # caching on first access is safe (``cached_property`` writes straight
    # into ``__dict__``, bypassing the frozen ``__setattr__``).

    @property
    def num_jobs(self) -> int:
        """``n``, the number of jobs."""
        return len(self.processing_times)

    @cached_property
    def num_classes(self) -> int:
        """``C``, the number of distinct classes (max index + 1)."""
        return max(self.classes) + 1 if self.classes else 0

    @cached_property
    def total_load(self) -> int:
        """Sum of all processing times."""
        return sum(self.processing_times)

    @cached_property
    def pmax(self) -> int:
        """Largest processing time."""
        return max(self.processing_times)

    @cached_property
    def _class_loads(self) -> tuple[int, ...]:
        loads = [0] * self.num_classes
        for p, u in zip(self.processing_times, self.classes):
            loads[u] += p
        return tuple(loads)

    @cached_property
    def jobs_by_class(self) -> tuple[tuple[int, ...], ...]:
        """``jobs_by_class[u]``: indices of the jobs of class ``u``.

        Built in one pass over the jobs; ``jobs_of_class`` reads from it,
        so solvers that iterate classes stop rescanning all ``n`` jobs
        per class.
        """
        groups: list[list[int]] = [[] for _ in range(self.num_classes)]
        for j, u in enumerate(self.classes):
            groups[u].append(j)
        return tuple(tuple(g) for g in groups)

    def jobs_of_class(self, u: int) -> list[int]:
        """Indices of the jobs belonging to class ``u``."""
        return list(self.jobs_by_class[u])

    def class_load(self, u: int) -> int:
        """``P_u``: accumulated processing time of class ``u``."""
        return self._class_loads[u]

    def class_loads(self) -> list[int]:
        """``[P_0, ..., P_{C-1}]`` (fresh list; callers may mutate it)."""
        return list(self._class_loads)

    # ------------------------------------------------------------------ #
    # normalisation (paper Section 1 w.l.o.g. reductions)
    # ------------------------------------------------------------------ #

    def normalized(self) -> "Instance":
        """Apply the paper's w.l.o.g. reductions.

        * drop classes without jobs (re-index contiguously) — already
          guaranteed by the constructor, so this only clamps ``c``:
        * clamp ``c`` to ``min(c, C, n)``; any larger value is equivalent.
        """
        c = min(self.class_slots, self.num_classes, self.num_jobs)
        if c == self.class_slots:
            return self
        return Instance(self.processing_times, self.classes, self.machines, c,
                        self.class_labels)

    def is_trivially_unconstrained(self) -> bool:
        """True when class constraints never bind (``c >= C``): the problem
        degenerates to classical identical-machine scheduling."""
        return self.class_slots >= self.num_classes

    def slot_budget(self) -> int:
        """``c * m`` after normalisation: the total number of class slots,
        the one quantity that decides feasibility."""
        norm = self.normalized()
        return norm.class_slots * norm.machines

    def is_feasible(self) -> bool:
        """Whether *any* schedule exists (in every regime: ``C <= c * m``).

        Splitting or preempting classes never helps slot-wise, so this
        single test is exact for splittable, preemptive and non-preemptive
        scheduling alike.
        """
        return self.num_classes <= self.slot_budget()

    def require_feasible(self) -> None:
        """Raise :class:`~repro.core.errors.InfeasibleInstanceError` when
        no schedule exists — the uniform entry check every solver runs, so
        infeasibility surfaces as one exception type with one message."""
        if not self.is_feasible():
            raise InfeasibleInstanceError(self.num_classes,
                                          self.slot_budget())

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    @cached_property
    def _digest(self) -> str:
        return compute_digest(self)

    def digest(self) -> str:
        """Stable content hash of the mathematical instance.

        Covers processing times, class indices, ``m`` and ``c`` — not the
        cosmetic ``class_labels`` — so two instances that compare equal hash
        identically. Used by the execution engine's result cache.
        """
        return self._digest

    def with_machines(self, m: int) -> "Instance":
        """Copy of this instance with a different machine count."""
        return Instance(self.processing_times, self.classes, m,
                        self.class_slots, self.class_labels)

    def perfectly_balanced_makespan(self) -> Fraction:
        """Area lower bound ``sum p_j / m`` as an exact rational."""
        return Fraction(self.total_load, self.machines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Instance(n={self.num_jobs}, C={self.num_classes}, "
                f"m={self.machines}, c={self.class_slots}, "
                f"total_load={self.total_load})")


def compute_digest(inst: Instance) -> str:
    """The uncached digest computation behind :meth:`Instance.digest`.

    Compact struct-packed encoding: one pack call per part instead of two
    str/encode round-trips per integer. Values outside int64 get a
    length-prefixed big-int encoding; the leading marker byte keeps the
    two encodings disjoint. The version label is ``v2`` (the v1 digest
    hashed decimal strings), so persistent caches never mix v1 and v2
    keys. Exposed at module level for the perf harness.
    """
    h = hashlib.sha256()
    h.update(b"ccs-instance-v2")
    for part in (inst.processing_times, inst.classes,
                 (inst.machines, inst.class_slots)):
        h.update(b"|")
        _hash_ints(h, part)
    return h.hexdigest()


def class_loads(processing_times: Iterable[int],
                classes: Iterable[int]) -> dict[int, int]:
    """Accumulated processing time per class for raw sequences."""
    out: dict[int, int] = {}
    for p, u in zip(processing_times, classes):
        out[u] = out.get(u, 0) + p
    return out


def encoding_length(inst: Instance) -> int:
    """The paper's encoding length ``|I|`` (Section 1).

    ``|I| = O(sum ceil(log p_j) + sum ceil(log c_j) + n + ceil(log m))``.
    Used by the scaling benches to express measured times against the input
    size rather than just ``n``.
    """
    total = inst.num_jobs + max(1, inst.machines.bit_length())
    for p in inst.processing_times:
        total += max(1, int(p).bit_length())
    for u in inst.classes:
        total += max(1, int(u + 1).bit_length())
    return total
