"""Import guard for the optional compiled kernel core.

``repro.core._native`` is a tiny hand-written C extension holding the
innermost integer loops of the hot kernels (``split_count`` and the
``sum_fractions`` accumulator).  It is strictly optional: the pure-python
wheel never requires a compiler, and every caller keeps a byte-identical
python fallback — the compiled path is proven equivalent by the
``use_fast_paths(False)`` golden tests and the fuzz fastpath oracle.

Build it in place with::

    python -m repro.core._native_build

``REPRO_DISABLE_NATIVE=1`` ignores a built extension (used to measure
the pure-python paths honestly, and as the escape hatch if a build ever
misbehaves).  Consumers import :data:`NATIVE` and test for ``None``;
they only dispatch to it on the *fast* paths — the reference
implementations stay pure Python by contract.
"""

from __future__ import annotations

import os

__all__ = ["NATIVE", "native_available"]

try:
    if os.environ.get("REPRO_DISABLE_NATIVE"):
        NATIVE = None
    else:
        from . import _native as NATIVE    # type: ignore[attr-defined]
except ImportError:      # no compiled core: pure-python fallbacks rule
    NATIVE = None

if NATIVE is not None:
    # fault site: a chaos plan can take the compiled core away from this
    # process (e.g. a pool worker forked under REPRO_FAULTS), proving
    # results stay byte-identical on the pure-python fallback
    try:
        from ..faults import injection as _injection
        if _injection.should_fire("native_probe") is not None:
            NATIVE = None
    except ImportError:     # pragma: no cover - partial install
        pass


def native_available() -> bool:
    """Whether the compiled kernel core is importable and enabled."""
    return NATIVE is not None
