"""Build the optional compiled kernel core in place.

Usage::

    python -m repro.core._native_build            # build
    python -m repro.core._native_build --check    # build + import + self-test

No build-system dependency: one compiler invocation with the include and
extension-suffix paths from :mod:`sysconfig`.  The resulting
``_native.*.so`` sits next to ``_native.c`` and is picked up by
:mod:`repro.core.native` on the next import; it is never required —
see that module for the fallback contract.
"""

from __future__ import annotations

import pathlib
import shlex
import subprocess
import sys
import sysconfig

__all__ = ["build", "extension_path"]


def extension_path() -> pathlib.Path:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return pathlib.Path(__file__).with_name("_native" + suffix)


def build(verbose: bool = True) -> pathlib.Path:
    """Compile ``_native.c``; returns the path of the built extension."""
    src = pathlib.Path(__file__).with_name("_native.c")
    out = extension_path()
    cc = sysconfig.get_config_var("CC") or "cc"
    cmd = [*shlex.split(cc), "-O2", "-fPIC", "-shared",
           f"-I{sysconfig.get_paths()['include']}",
           str(src), "-o", str(out)]
    if verbose:
        print(" ".join(cmd))
    subprocess.run(cmd, check=True)
    return out


def _self_test() -> None:
    import importlib

    from fractions import Fraction

    mod = importlib.import_module("repro.core._native")
    assert mod.split_count_scaled([10, 7, 3], 3, 2) == 14
    assert mod.sum_fractions_ll([Fraction(1, 2), Fraction(1, 3), 5]) \
        == (35, 6)
    try:
        mod.sum_fractions_ll([Fraction(2 ** 80, 3)])
    except OverflowError:
        pass
    else:
        raise AssertionError("expected OverflowError for big numerators")
    print("compiled core OK:", mod.__file__)


if __name__ == "__main__":
    path = build()
    print("built", path)
    if "--check" in sys.argv:
        _self_test()
