"""Exact-arithmetic fast paths and the switch that disables them.

The solver inner loops used to run on :class:`fractions.Fraction`
throughout.  Every ``Fraction`` operation normalises through a gcd, which
dominated the wall-clock of the hot kernels (class splitting, the border
search, schedule load accounting).  The fast paths in this repository
replace that arithmetic with *exact scaled integers*: a common denominator
is factored out once at loop entry, the loop body runs on plain ``int``
(or vectorised ``numpy`` int64 when the magnitudes provably fit), and
``Fraction`` values are reconstructed only at API boundaries.  Results are
mathematically identical — the golden-equivalence tests assert that the
fast and reference paths produce byte-identical ``SolveReport`` JSON.

:func:`use_fast_paths` flips every gated fast path back to the original
pure-``Fraction`` reference implementation.  It exists for two consumers:

* the golden-equivalence tests, which run each workload twice and compare
  the reports byte for byte, and
* the perf harness (``repro bench``), which measures the speedup of each
  kernel against its reference.

Anything whose *output* feeds a persistent key (e.g. ``Instance.digest``)
is deliberately **not** gated — cache keys must never depend on which
arithmetic path computed them.
"""

from __future__ import annotations

from contextlib import contextmanager
from fractions import Fraction
from math import gcd
from typing import Iterable, Iterator

from .native import NATIVE

__all__ = ["fast_paths_enabled", "set_fast_paths", "use_fast_paths",
           "sum_fractions", "max_fraction", "INT64_SAFE"]

#: Conservative magnitude bound under which intermediate products of the
#: vectorised int64 kernels cannot overflow (leaves headroom for one
#: multiply-accumulate over any realistic axis length).
INT64_SAFE = 2 ** 62

_enabled: bool = True


def fast_paths_enabled() -> bool:
    """Whether the scaled-integer fast paths are active (the default)."""
    return _enabled


def set_fast_paths(on: bool) -> bool:
    """Enable/disable the fast paths process-wide; returns the old value."""
    global _enabled
    old = _enabled
    _enabled = bool(on)
    return old


@contextmanager
def use_fast_paths(on: bool) -> Iterator[None]:
    """Context manager form of :func:`set_fast_paths`.

    ``with use_fast_paths(False): ...`` runs the body on the pure-Fraction
    reference implementations.
    """
    old = set_fast_paths(on)
    try:
        yield
    finally:
        set_fast_paths(old)


#: Reduce the running denominator once it exceeds this many bits — only
#: reachable when addends carry many *distinct* denominators.
_DEN_REDUCE_BITS = 512


def sum_fractions(values: Iterable[Fraction | int]) -> Fraction:
    """Exact sum of rationals without per-addition normalisation.

    Accumulates a single ``(numerator, denominator)`` pair of plain
    ``int``: addends sharing the running denominator — the overwhelmingly
    common case in schedules, whose piece sizes are multiples of one
    ``1/den`` — cost one integer addition, and a gcd is only ever taken
    when the running denominator grows past ``_DEN_REDUCE_BITS`` bits.
    Both ``int`` and ``Fraction`` expose ``numerator``/``denominator``,
    so the loop needs no type dispatch.  Exactly equal to ``sum(values,
    Fraction(0))``: rational addition is associative.

    With the optional compiled core built (see
    :mod:`repro.core.native`) the accumulation runs in C on int64 and
    falls back to this big-int loop the moment anything does not fit —
    the result is exact either way.
    """
    if NATIVE is not None and _enabled:
        values = values if isinstance(values, (list, tuple)) \
            else list(values)
        try:
            n, d = NATIVE.sum_fractions_ll(values)
        except OverflowError:
            pass
        else:
            return Fraction(n, d)
    total_n, total_d = 0, 1
    for v in values:
        d = v.denominator
        if d == total_d:
            total_n += v.numerator
        else:
            total_n = total_n * d + v.numerator * total_d
            total_d *= d
            if total_d.bit_length() > _DEN_REDUCE_BITS:
                g = gcd(total_n, total_d)
                if g > 1:
                    total_n //= g
                    total_d //= g
    return Fraction(total_n, total_d)


def max_fraction(values: Iterable[Fraction | int],
                 default: Fraction | None = None) -> Fraction:
    """Maximum of rationals via cross-multiplication on raw ints.

    Avoids ``Fraction.__gt__``'s abc ``isinstance`` dance in tight loops;
    same-denominator runs compare with one integer comparison.
    """
    best_n: int | None = None
    best_d = 1
    for v in values:
        n, d = v.numerator, v.denominator
        if best_n is None or (n > best_n if d == best_d
                              else n * best_d > best_n * d):
            best_n, best_d = n, d
    if best_n is None:
        if default is None:
            raise ValueError("max_fraction() of empty iterable")
        return default
    return Fraction(best_n, best_d)
