"""Vectorised multi-cell kernels for the batch engine.

The scalar fast paths in :mod:`repro.approx.borders` and
:mod:`repro.core.validation` each accelerate *one* solve; a pooled
``run_batch`` chunk holds many same-algorithm cells, and dispatching the
scalar kernel per cell leaves numpy's fixed per-call overhead multiplied
by the cell count.  The kernels here stack every cell of a chunk into
one set of flat arrays (concatenated values + per-cell offsets) and run
the whole chunk in a handful of numpy passes:

* :func:`smallest_feasible_border_many` — Lemma 2's border binary search
  for many ``(loads, m, budget)`` cells at once.  All cells' per-load
  searches advance in lockstep; each iteration evaluates every active
  candidate's split count in one vectorised gather + ``reduceat``.
* :func:`split_count_many` — ``sum ceil(P_u * den / num)`` for one guess
  per cell, one pass over the concatenated loads.
* :func:`nonpreemptive_guess_many` — Theorem 6's integral guess binary
  search for many cells in lockstep, with the rare non-monotone pairing
  lanes delegated to the exact scalar greedy.
* :func:`nonpreemptive_slots_ok_many` — the class-slot validation of
  many assignments in one ``unique``/``bincount`` sweep, mirroring the
  single-cell ``_nonpreemptive_ok_vec``.
* :func:`splittable_ok_many` — completeness + class-slot validation of
  many splittable schedules at once; exact rational piece sums via a
  per-cell common denominator in int64.

Exactness discipline matches the scalar kernels: every cell is admitted
to the int64 arrays only under the same magnitude guards the scalar
vectorised paths use; cells that fail a guard are reported back to the
caller for the scalar fallback rather than silently risking overflow.
The results are bit-identical to the scalar fast paths, which are in
turn golden-tested against the pure-``Fraction`` reference — so a batch
answer is always byte-identical to the per-cell answer.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

import numpy as np

from .fastmath import INT64_SAFE

__all__ = ["smallest_feasible_border_many", "split_count_many",
           "nonpreemptive_slots_ok_many", "nonpreemptive_guess_many",
           "splittable_ok_many"]


def _border_cell_guarded(loads: list[int], m: int, budget: int) -> bool:
    """Whether a border-search cell provably fits the int64 kernel.

    Mirrors the scalar fast path's bound with the worst denominator the
    search can produce (``den = mid <= m``): every intermediate product
    and the fully accumulated count stay below ``INT64_SAFE``.
    """
    if not loads or m < 1 or min(loads) < 1:
        return False
    max_load = max(loads)
    return (0 < max_load < INT64_SAFE and 0 < m < INT64_SAFE
            and 0 <= budget < INT64_SAFE
            and len(loads) * (max_load * m + 1) < INT64_SAFE)


def smallest_feasible_border_many(
        cells: Sequence[tuple[Sequence[int], int, int]]
        ) -> tuple[list[Fraction | None], list[int]]:
    """Lemma 2's smallest feasible border for many cells in lockstep.

    ``cells`` is a sequence of ``(class_loads, m, budget)`` triples.
    Returns ``(borders, scalar_indices)``: ``borders[i]`` is the smallest
    border with ``split_count <= budget`` (``None`` when no border is
    feasible), and ``scalar_indices`` lists the cells whose magnitudes
    failed the int64 guard — their ``borders`` slot is meaningless and
    the caller must run the scalar search for them.

    Identical to ``_smallest_feasible_border_fast`` per cell: the same
    candidate set (one binary search over ``k in 1..m`` per distinct
    load), the same feasibility predicate, and the same exact
    cross-multiplied minimum at the end.
    """
    results: list[Fraction | None] = [None] * len(cells)
    scalar: list[int] = []
    usable: list[tuple[int, list[int], int, int]] = []
    for idx, (raw_loads, m, budget) in enumerate(cells):
        loads = [int(P) for P in raw_loads]
        if _border_cell_guarded(loads, int(m), int(budget)):
            usable.append((idx, loads, int(m), int(budget)))
        else:
            scalar.append(idx)
    if not usable:
        return results, scalar

    # One *entry* per (cell, distinct load): the unit the binary searches
    # advance over. Each entry needs its own cell's full load vector to
    # evaluate a split count, so the terms array gathers cell loads once
    # per entry — total work per iteration is sum over cells of
    # (#distinct loads * #loads), all in a single numpy pass.
    loads_cat = np.concatenate(
        [np.asarray(loads, dtype=np.int64) for _, loads, _, _ in usable])
    cell_starts = np.zeros(len(usable) + 1, dtype=np.int64)
    np.cumsum([len(loads) for _, loads, _, _ in usable],
              out=cell_starts[1:])

    ent_P: list[int] = []
    ent_m: list[int] = []
    ent_budget: list[int] = []
    ent_rows: list[np.ndarray] = []
    ent_len: list[int] = []
    entries_of_cell: list[tuple[int, int]] = []
    for j, (_, loads, m, budget) in enumerate(usable):
        rows = np.arange(cell_starts[j], cell_starts[j + 1], dtype=np.int64)
        first = len(ent_P)
        for P in sorted(set(loads)):
            ent_P.append(P)
            ent_m.append(m)
            ent_budget.append(budget)
            ent_rows.append(rows)
            ent_len.append(len(loads))
        entries_of_cell.append((first, len(ent_P)))

    num_entries = len(ent_P)
    gather = np.concatenate(ent_rows)
    ent_starts = np.zeros(num_entries, dtype=np.int64)
    np.cumsum(ent_len[:-1], out=ent_starts[1:])
    ent_of_pos = np.repeat(np.arange(num_entries, dtype=np.int64), ent_len)
    terms_src = loads_cat[gather]
    P_pos = np.asarray(ent_P, dtype=np.int64)[ent_of_pos]

    P_arr = np.asarray(ent_P, dtype=np.int64)
    budget_arr = np.asarray(ent_budget, dtype=np.int64)
    lo = np.ones(num_entries, dtype=np.int64)
    hi = np.asarray(ent_m, dtype=np.int64)
    best_k = np.zeros(num_entries, dtype=np.int64)      # 0: none feasible

    active = lo <= hi
    while active.any():
        # inactive lanes evaluate a harmless mid=1 so one vector pass
        # covers everything; their state is masked out below
        mid = np.where(active, (lo + hi) >> 1, 1)
        # guess T = P_e / mid_e: count = sum ceil(P_l * mid / P_e), via
        # the negated floor division (numpy // rounds toward -inf like
        # Python's)
        counts = np.add.reduceat(
            -((terms_src * -mid[ent_of_pos]) // P_pos), ent_starts)
        feasible = counts <= budget_arr
        take = active & feasible
        best_k = np.where(take, mid, best_k)
        lo = np.where(take, mid + 1, lo)
        hi = np.where(active & ~feasible, mid - 1, hi)
        active = lo <= hi

    # exact per-cell minimum over its entries' winning borders, by
    # cross-multiplication (a handful of python ops per cell)
    for j, (idx, _, _, _) in enumerate(usable):
        first, last = entries_of_cell[j]
        best_num: int | None = None
        best_den = 1
        for e in range(first, last):
            k = int(best_k[e])
            if k >= 1:
                P = int(P_arr[e])
                if best_num is None or P * best_den < best_num * k:
                    best_num, best_den = P, k
        results[idx] = None if best_num is None \
            else Fraction(best_num, best_den)
    return results, scalar


def split_count_many(cells: Sequence[tuple[Sequence[int], int, int]]
                     ) -> tuple[list[int], list[int]]:
    """``split_count`` for one guess ``num/den`` per cell, in one pass.

    ``cells`` is a sequence of ``(class_loads, num, den)``. Returns
    ``(counts, scalar_indices)`` with the same fallback contract as
    :func:`smallest_feasible_border_many`; each admitted cell satisfies
    the exact guard the scalar ``split_count`` fast path uses.
    """
    counts: list[int] = [0] * len(cells)
    scalar: list[int] = []
    usable: list[tuple[int, list[int], int, int]] = []
    for idx, (raw_loads, num, den) in enumerate(cells):
        loads = [int(P) for P in raw_loads]
        num, den = int(num), int(den)
        max_load = max(loads, default=0)
        if (loads and min(loads) >= 0 and 0 < num < INT64_SAFE
                and 0 < den and len(loads) * (max_load * den + 1)
                < INT64_SAFE):
            usable.append((idx, loads, num, den))
        else:
            scalar.append(idx)
    if not usable:
        return counts, scalar
    loads_cat = np.concatenate(
        [np.asarray(loads, dtype=np.int64) for _, loads, _, _ in usable])
    lens = [len(loads) for _, loads, _, _ in usable]
    starts = np.zeros(len(usable), dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    pos_of = np.repeat(np.arange(len(usable), dtype=np.int64), lens)
    nums = np.asarray([num for _, _, num, _ in usable], dtype=np.int64)
    dens = np.asarray([den for _, _, _, den in usable], dtype=np.int64)
    totals = np.add.reduceat(
        -((loads_cat * -dens[pos_of]) // nums[pos_of]), starts)
    for j, (idx, _, _, _) in enumerate(usable):
        counts[idx] = int(totals[j])
    return counts, scalar


def nonpreemptive_guess_many(
        cells: Sequence[tuple[Sequence[int], Sequence[int], int, int]]
        ) -> tuple[list[int | None], list[int]]:
    """Theorem 6's integral guess binary search for many cells at once.

    ``cells`` is a sequence of ``(processing_times, classes, m, c)``
    quadruples of *normalized feasible* instances.  Returns ``(guesses,
    scalar_indices)``: ``guesses[i]`` is the smallest integral ``T`` with
    ``sum_u C_u(T) <= c * m`` — exactly what ``solve_nonpreemptive``'s
    scalar binary search computes — and ``scalar_indices`` lists cells
    whose magnitudes fail the int64 guard (their slot is ``None`` and the
    caller runs the scalar search).

    All cells' searches advance in lockstep over the same bounds the
    scalar uses (``lo = max(pmax, ceil(area))``, ``hi = c * max_u P_u``).
    Each iteration computes every class's ``C1_u = ceil(P_u/T)`` and the
    job-size buckets ``k_u`` (``2 p > T``) and ``mid_u`` (``T >= 2 p``,
    ``3 p > T``) in one vectorised pass.  ``C2_u`` needs the greedy
    pairing scan only when it could exceed ``C1_u`` (``k_u > 0``,
    ``mid_u > 0`` and ``k_u + ceil(mid_u/2) > C1_u``); those rare
    (cell, class) lanes call the scalar
    :func:`~repro.core.bounds.presorted_class_count` for its exact
    greedy answer, so the feasibility predicate is bit-identical to the
    scalar search everywhere.
    """
    from .bounds import presorted_class_count

    guesses: list[int | None] = [None] * len(cells)
    scalar: list[int] = []
    usable: list[tuple[int, list[int], list[int], int, int]] = []
    for idx, (p_raw, cls_raw, m, c) in enumerate(cells):
        p = [int(v) for v in p_raw]
        cls = [int(v) for v in cls_raw]
        total = sum(p)
        if (p and len(p) == len(cls) and min(p) >= 1
                and 0 < int(m) < INT64_SAFE
                and 0 < int(c) < INT64_SAFE
                and int(m) * int(c) < INT64_SAFE
                and 3 * max(p) < INT64_SAFE and total < INT64_SAFE
                and int(c) * total < INT64_SAFE):
            usable.append((idx, p, cls, int(m), int(c)))
        else:
            scalar.append(idx)
    if not usable:
        return guesses, scalar

    # flat element layout sorted by (cell, class, p): per-class segments
    # are contiguous and ascending, mirroring the scalar's presorted view
    p_all = np.concatenate(
        [np.asarray(p, dtype=np.int64) for _, p, _, _, _ in usable])
    cls_all = np.concatenate(
        [np.asarray(cls, dtype=np.int64) for _, _, cls, _, _ in usable])
    lens = [len(p) for _, p, _, _, _ in usable]
    cell_of_elem = np.repeat(np.arange(len(usable), dtype=np.int64), lens)
    order = np.lexsort((p_all, cls_all, cell_of_elem))
    flat = p_all[order]
    cls_sorted = cls_all[order]
    cell_sorted = cell_of_elem[order]

    # one lane per (cell, class); classes are dense per cell (normalized
    # instances), so bases accumulate each cell's class count
    num_classes = [max(cls) + 1 for _, _, cls, _, _ in usable]
    class_base = np.zeros(len(usable) + 1, dtype=np.int64)
    np.cumsum(num_classes, out=class_base[1:])
    lane_of_elem = class_base[cell_sorted] + cls_sorted
    lane_sizes = np.bincount(lane_of_elem, minlength=int(class_base[-1]))
    if lane_sizes.min(initial=1) < 1:   # pragma: no cover - defensive
        return guesses, scalar + [idx for idx, *_ in usable]
    lane_starts = np.zeros(len(lane_sizes), dtype=np.int64)
    np.cumsum(lane_sizes[:-1], out=lane_starts[1:])
    cell_of_lane = np.repeat(np.arange(len(usable), dtype=np.int64),
                             num_classes)
    totals = np.add.reduceat(flat, lane_starts)

    m_arr = np.asarray([m for _, _, _, m, _ in usable], dtype=np.int64)
    budget = m_arr * np.asarray([c for _, _, _, _, c in usable],
                                dtype=np.int64)
    cell_total = np.add.reduceat(
        totals, class_base[:-1]) if len(usable) else totals
    pmax_cell = np.maximum.reduceat(flat, lane_starts)
    pmax_cell = np.maximum.reduceat(pmax_cell, class_base[:-1])
    maxload = np.maximum.reduceat(totals, class_base[:-1])
    lo = np.maximum(pmax_cell, -((-cell_total) // m_arr))
    hi = np.asarray([c for _, _, _, _, c in usable],
                    dtype=np.int64) * maxload

    def counts_for(T_cell: np.ndarray) -> np.ndarray:
        """Per-cell ``sum_u max(C1_u, C2_u, 1)`` at guess ``T_cell``."""
        T_lane = T_cell[cell_of_lane]
        T_elem = T_cell[cell_sorted]
        over_half = np.add.reduceat(
            (2 * flat > T_elem).astype(np.int64), lane_starts)
        over_third = np.add.reduceat(
            (3 * flat > T_elem).astype(np.int64), lane_starts)
        k = over_half
        nmid = over_third - over_half
        c1 = -((-totals) // T_lane)
        c2_ub = k + ((nmid + 1) >> 1)
        counts = np.maximum(np.where((k > 0) & (nmid > 0), c1,
                                     np.maximum(c1, c2_ub)), 1)
        # lanes where the pairing could push C2 above C1: exact greedy
        for g in np.flatnonzero((k > 0) & (nmid > 0) & (c2_ub > c1)):
            s, e = int(lane_starts[g]), int(lane_starts[g]
                                            + lane_sizes[g])
            counts[g] = presorted_class_count(
                flat[s:e].tolist(), int(totals[g]),
                int(T_lane[g]))
        return np.add.reduceat(counts, class_base[:-1])

    # the scalar search asserts hi is feasible before bisecting; cells
    # where it is not (cannot happen for feasible instances) go scalar
    bad = counts_for(hi) > budget
    for j in np.flatnonzero(bad):
        scalar.append(usable[j][0])
    alive = ~bad

    while True:
        active = alive & (lo < hi)
        if not active.any():
            break
        mid = np.where(active, (lo + hi) >> 1, np.maximum(hi, 1))
        feasible = counts_for(mid) <= budget
        hi = np.where(active & feasible, mid, hi)
        lo = np.where(active & ~feasible, mid + 1, lo)

    for j, (idx, *_rest) in enumerate(usable):
        if alive[j]:
            guesses[idx] = int(hi[j])
    return guesses, scalar


def splittable_ok_many(
        cells: Sequence[tuple[Sequence[int], Sequence[int], Sequence[int],
                              Sequence[int], Sequence[int], Sequence[int],
                              int, int]]
        ) -> list[Fraction | None]:
    """Validate many splittable schedules at once; exact, in int64.

    ``cells`` is a sequence of ``(piece_jobs, piece_machines, piece_nums,
    piece_dens, processing_times, classes, num_machines, class_slots)``
    where piece ``i`` assigns ``piece_nums[i]/piece_dens[i]`` units of job
    ``piece_jobs[i]`` to machine ``piece_machines[i]``.  The caller has
    already checked that the schedule's machine count matches the
    (normalized) instance.

    Returns one entry per cell: the schedule's exact makespan
    (``Fraction``) when the cell provably passes the completeness and
    class-slot checks of ``validate_splittable``, else ``None`` — a real
    violation (whose exact error message the scalar validator
    re-derives) or a cell whose magnitudes fail the int64 guard.

    Exactness: each cell's piece amounts are rescaled by the LCM of
    their denominators, so per-job and per-machine sums are plain int64
    additions; the guard bounds every scaled value *and* every
    accumulated sum below ``INT64_SAFE`` before admission.
    """
    from math import lcm

    out: list[Fraction | None] = [None] * len(cells)
    if len(cells) >= 2 ** 20:   # pragma: no cover — keys are cell<<40|mach
        return out
    usable: list[tuple[int, list[int], list[int], np.ndarray,
                       list[int], list[int], int, int]] = []
    for idx, (jobs, machs, nums, dens, p, cls, m, c) in enumerate(cells):
        npieces = len(jobs)
        n = len(p)
        if not (npieces and n and len(cls) == n
                and len(machs) == len(nums) == len(dens) == npieces):
            continue
        jobs_l = [int(v) for v in jobs]
        machs_l = [int(v) for v in machs]
        nums_l = [int(v) for v in nums]
        dens_l = [int(v) for v in dens]
        if (min(jobs_l) < 0 or max(jobs_l) >= n
                or min(machs_l) < 0 or max(machs_l) >= int(m)
                or max(machs_l) >= 2 ** 40
                or min(nums_l) < 1 or min(dens_l) < 1):
            continue
        scale = 1
        for d in set(dens_l):
            scale = lcm(scale, d)
            if scale >= INT64_SAFE:
                break
        peak = max(max(nums_l), max(int(v) for v in p), 1)
        # conservative: bounds every scaled value and every running sum
        if not (0 < scale < INT64_SAFE
                and (npieces + n) * peak * scale < INT64_SAFE):
            continue
        scaled = np.asarray(nums_l, dtype=np.int64) * \
            np.asarray([scale // d for d in dens_l], dtype=np.int64)
        usable.append((idx, jobs_l, machs_l, scaled,
                       [int(v) for v in p], [int(v) for v in cls],
                       int(c), scale))
    if not usable:
        return out

    piece_lens = [len(jobs) for _, jobs, _, _, _, _, _, _ in usable]
    job_lens = [len(p) for _, _, _, _, p, _, _, _ in usable]
    cell_of_piece = np.repeat(np.arange(len(usable), dtype=np.int64),
                              piece_lens)
    job_base = np.zeros(len(usable) + 1, dtype=np.int64)
    np.cumsum(job_lens, out=job_base[1:])
    jobs_flat = np.concatenate(
        [np.asarray(jobs, dtype=np.int64)
         for _, jobs, _, _, _, _, _, _ in usable])
    scaled_flat = np.concatenate(
        [s for _, _, _, s, _, _, _, _ in usable])
    gjob = job_base[cell_of_piece] + jobs_flat

    # completeness: per-job scaled sums must equal p_j * scale exactly
    sums = np.zeros(int(job_base[-1]), dtype=np.int64)
    np.add.at(sums, gjob, scaled_flat)
    p_flat = np.concatenate(
        [np.asarray(p, dtype=np.int64) for _, _, _, _, p, _, _, _ in usable])
    scale_arr = np.asarray([s for *_, s in usable], dtype=np.int64)
    cell_of_job = np.repeat(np.arange(len(usable), dtype=np.int64),
                            job_lens)
    complete = np.logical_and.reduceat(
        sums == p_flat * scale_arr[cell_of_job], job_base[:-1])

    # class slots: distinct classes per (cell, used machine); machine ids
    # are sparse, so compact them through one global unique pass
    machs_flat = np.concatenate(
        [np.asarray(machs, dtype=np.int64)
         for _, _, machs, _, _, _, _, _ in usable])
    cls_flat = np.concatenate(
        [np.asarray(cls, dtype=np.int64)
         for _, _, _, _, _, cls, _, _ in usable])
    maxc = int(max(max(cls) + 1 for _, _, _, _, _, cls, _, _ in usable))
    gmach_key = cell_of_piece * (2 ** 40) + machs_flat
    um, inv = np.unique(gmach_key, return_inverse=True)
    cell_of_um = um >> 40
    um_starts = np.searchsorted(cell_of_um,
                                np.arange(len(usable), dtype=np.int64))
    pair = np.unique(inv * maxc + cls_flat[gjob])
    distinct = np.bincount(pair // maxc, minlength=len(um))
    c_arr = np.asarray([c for *_, c, _ in usable], dtype=np.int64)
    slots_fine = np.logical_and.reduceat(
        distinct <= c_arr[cell_of_um], um_starts)

    # makespan: max scaled machine load, rescaled back exactly
    loads = np.zeros(len(um), dtype=np.int64)
    np.add.at(loads, inv, scaled_flat)
    peak_load = np.maximum.reduceat(loads, um_starts)
    for j, (idx, *_mid, scale) in enumerate(usable):
        if complete[j] and slots_fine[j]:
            out[idx] = Fraction(int(peak_load[j]), scale)
    return out


def nonpreemptive_slots_ok_many(
        cells: Sequence[tuple[Sequence[int], Sequence[int], int, int, int]]
        ) -> list[bool]:
    """Class-slot validation of many non-preemptive assignments at once.

    ``cells`` is a sequence of ``(assignment, classes, num_machines,
    num_classes, class_slots)``; the caller guarantees per cell that the
    assignment is total (no ``-1``) with every machine index inside
    ``0..num_machines-1`` — exactly the preconditions the single-cell
    ``_nonpreemptive_ok_vec`` establishes before its pair sweep.

    Returns one bool per cell: ``True`` means the schedule provably
    respects every machine's class-slot limit; ``False`` sends the
    caller down the scalar validator — either a real violation (whose
    exact error message the scalar path re-derives) or a cell whose key
    space does not fit the shared int64 sweep.
    """
    ok = [False] * len(cells)
    usable: list[int] = []
    pair_base: list[int] = []
    machine_base: list[int] = []
    pair_off = machine_off = 0
    for idx, (assignment, classes, m, num_classes, c) in enumerate(cells):
        span = int(m) * int(num_classes)
        if (len(assignment) == len(classes) and span > 0
                and pair_off + span < INT64_SAFE
                and machine_off + int(m) < INT64_SAFE):
            usable.append(idx)
            pair_base.append(pair_off)
            machine_base.append(machine_off)
            pair_off += span
            machine_off += int(m)
    if not usable:
        return ok
    keys = np.concatenate([
        pair_base[j]
        + np.asarray(cells[idx][0], dtype=np.int64) * int(cells[idx][3])
        + np.asarray(cells[idx][1], dtype=np.int64)
        for j, idx in enumerate(usable)])
    uniq = np.unique(keys)
    # map each distinct (cell, machine, class) key back to a globally
    # distinct machine id, then count distinct classes per machine
    bases = np.asarray(pair_base, dtype=np.int64)
    cell_of = np.searchsorted(bases, uniq, side="right") - 1
    C_of = np.asarray([int(cells[idx][3]) for idx in usable],
                      dtype=np.int64)[cell_of]
    machines_global = np.asarray(machine_base, dtype=np.int64)[cell_of] \
        + (uniq - bases[cell_of]) // C_of
    distinct = np.bincount(machines_global, minlength=machine_off)
    slots = np.repeat(
        np.asarray([int(cells[idx][4]) for idx in usable], dtype=np.int64),
        np.asarray([int(cells[idx][2]) for idx in usable], dtype=np.int64))
    fine = distinct <= slots
    starts = np.asarray(machine_base, dtype=np.int64)
    per_cell = np.logical_and.reduceat(fine, starts)
    for j, idx in enumerate(usable):
        ok[idx] = bool(per_cell[j])
    return ok
