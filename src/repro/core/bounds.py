"""Lower and upper bounds on the optimal makespan.

These bounds drive the binary searches of every algorithm in the paper and
double as certified baselines for the empirical approximation-ratio
experiments (ratio = ALG / LB is a *conservative over-estimate* of the true
ratio, so observed ratios below the proven bound confirm the theorem).

Bounds implemented:

* ``area``           — ``sum p_j / m`` (all regimes).
* ``pmax``           — largest job (preemptive & non-preemptive regimes; in
  the splittable regime jobs may run in parallel with themselves, so pmax is
  *not* a lower bound there).
* ``class-slot``     — the border bound of Lemma 2: any schedule with
  makespan ``T`` uses at least ``ceil(P_u / T)`` class slots for class ``u``
  and there are only ``c * m`` class slots overall. The smallest ``T``
  passing this counting test lower-bounds the optimum in *all three*
  regimes (splitting classes is a relaxation of the other two).
* ``large-job slot`` — the non-preemptive refinement of Theorem 6: jobs
  larger than ``T/2`` need distinct slots; at most one extra job in
  ``(T/3, T/2]`` fits on top of each, and leftover ``(T/3, T/2]`` jobs pack
  at most two per slot.
"""

from __future__ import annotations

from bisect import bisect_right
from fractions import Fraction
from math import ceil

from .instance import Instance

__all__ = [
    "area_bound",
    "pmax_bound",
    "class_slot_bound",
    "nonpreemptive_class_count",
    "presorted_class_count",
    "nonpreemptive_slot_bound",
    "splittable_lower_bound",
    "preemptive_lower_bound",
    "nonpreemptive_lower_bound",
    "trivial_upper_bound",
]


def area_bound(inst: Instance) -> Fraction:
    """``sum_j p_j / m``: perfect load balance (valid in every regime)."""
    return Fraction(inst.total_load, inst.machines)


def pmax_bound(inst: Instance) -> int:
    """``max_j p_j``: a single job cannot run in parallel with itself.

    Valid for the preemptive and non-preemptive regimes only.
    """
    return inst.pmax


def class_slot_bound(inst: Instance) -> Fraction:
    """Smallest ``T`` with ``sum_u ceil(P_u / T) <= c * m``.

    The optimum of every regime is at least this value: any schedule with
    makespan ``T`` uses at least ``ceil(P_u / T)`` class slots for class
    ``u`` and only ``c * m`` exist. Returns ``-1`` when no ``T`` works
    (``C > c * m``: the instance admits no schedule at all).
    """
    from ..approx.borders import smallest_feasible_border

    inst = inst.normalized()
    loads = inst.class_loads()
    budget = inst.class_slots * inst.machines
    border = smallest_feasible_border(loads, inst.machines, budget)
    if border is None:
        return Fraction(-1)
    return border


def nonpreemptive_class_count(pjs: list[int], T: int) -> int:
    """``C_u = max(C1_u, C2_u)`` of Theorem 6 for one class.

    ``C1_u = ceil(P_u / T)`` (area); ``C2_u = k_u + ceil(l_u / 2)`` where
    ``k_u`` counts jobs ``> T/2`` and ``l_u`` counts jobs in ``(T/3, T/2]``
    left over after greedily pairing the largest fitting one on top of each
    ``> T/2`` job.
    """
    return presorted_class_count(sorted(pjs), sum(pjs), T)


def presorted_class_count(pjs_asc: list[int], total: int, T: int) -> int:
    """:func:`nonpreemptive_class_count` for callers that loop over guesses
    (the Theorem 6 binary searches): takes the job sizes pre-sorted
    ascending plus their precomputed sum, so the per-guess work drops to
    two bisections and the pairing scan instead of a sort and a sum."""
    if T <= 0:
        raise ValueError("T must be positive")
    c1 = -((-total) // T)
    # 2*p > T  <=>  p > T/2 exactly for integers; with pjs ascending the
    # big jobs are the suffix from i and the (T/3, T/2] jobs are pjs[j:i]
    i = bisect_right(pjs_asc, T, key=lambda p: 2 * p)
    j = bisect_right(pjs_asc, T, key=lambda p: 3 * p)
    big = pjs_asc[i:][::-1]
    mid = pjs_asc[j:i][::-1]
    k_u = len(big)
    # Greedy pairing: for each big job (any order — largest-first matches the
    # paper), put the largest mid job that still fits (big + mid <= T).
    remaining = mid
    for b in big:
        # find largest mid job fitting next to b
        for idx, q in enumerate(remaining):
            if b + q <= T:
                del remaining[idx]
                break
    l_u = len(remaining)
    c2 = k_u + -((-l_u) // 2)
    return max(c1, c2, 1)


def nonpreemptive_slot_bound(inst: Instance) -> int:
    """Smallest integral ``T >= pmax`` with ``sum_u C_u(T) <= c * m``."""
    inst = inst.normalized()
    budget = inst.class_slots * inst.machines
    per_class = [
        sorted(inst.processing_times[j] for j in inst.jobs_by_class[u])
        for u in range(inst.num_classes)
    ]
    per_class_sum = [sum(pjs) for pjs in per_class]

    def feasible(T: int) -> bool:
        total = 0
        for pjs, s in zip(per_class, per_class_sum):
            total += presorted_class_count(pjs, s, T)
            if total > budget:
                return False
        return True

    lo = inst.pmax
    hi = max(lo, ceil(trivial_upper_bound(inst)))
    if not feasible(hi):
        return -1  # infeasible instance: C > c*m
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def splittable_lower_bound(inst: Instance) -> Fraction:
    """Certified lower bound for the splittable optimum."""
    inst = inst.normalized()
    slot = class_slot_bound(inst)
    if slot < 0:
        return Fraction(-1)
    return max(area_bound(inst), slot)


def preemptive_lower_bound(inst: Instance) -> Fraction:
    """Certified lower bound for the preemptive optimum."""
    inst = inst.normalized()
    slot = class_slot_bound(inst)
    if slot < 0:
        return Fraction(-1)
    return max(area_bound(inst), Fraction(pmax_bound(inst)), slot)


def nonpreemptive_lower_bound(inst: Instance) -> int:
    """Certified integral lower bound for the non-preemptive optimum."""
    inst = inst.normalized()
    slot = nonpreemptive_slot_bound(inst)
    if slot < 0:
        return -1
    area = area_bound(inst)
    return max(ceil(area), pmax_bound(inst), slot)


def trivial_upper_bound(inst: Instance) -> Fraction:
    """``c * max_u P_u`` (the paper's UB) — valid in every regime, since
    round-robin over classes fits ``c`` whole classes per machine."""
    inst = inst.normalized()
    return Fraction(inst.class_slots * max(inst.class_loads()))
