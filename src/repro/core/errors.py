"""Exception hierarchy for the CCS library.

All library-specific failures derive from :class:`CCSError` so callers can
catch one base class. Validation failures carry a human-readable reason and,
where available, the offending machine/job so that tests and debugging
sessions can pinpoint the violated constraint.
"""

from __future__ import annotations


class CCSError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidInstanceError(CCSError, ValueError):
    """The instance violates a structural requirement (e.g. p_j <= 0)."""


class InfeasibleInstanceError(CCSError):
    """The instance admits no feasible schedule in *any* regime.

    For CCS this is exactly ``C > c * m`` (after the w.l.o.g. clamp of
    ``c``): more classes than total class slots. Every solver that can
    take the instance at all raises this one type for that condition
    (a solver whose ``supports()`` predicate rejects the instance —
    McNaughton on any class-constrained input — says
    :class:`UnsupportedInstanceError` instead) — the execution engine
    maps it to the ``infeasible`` report status and the ``/v1`` surface
    rejects such instances with the ``infeasible`` error code — so
    callers never have to know which implementation they asked.
    """

    def __init__(self, num_classes: int, slot_budget: int) -> None:
        self.num_classes = num_classes
        self.slot_budget = slot_budget
        super().__init__(
            f"infeasible instance: C={num_classes} classes exceed "
            f"c*m={slot_budget} class slots")


class UnsupportedInstanceError(CCSError):
    """The instance is perfectly valid (and may well be feasible) but this
    particular solver cannot handle it — e.g. McNaughton's rule on a
    class-constrained instance, or a MILP past its machine cap.

    Distinct from :class:`InfeasibleInstanceError` so batch runs and
    capability selection can *skip* the solver instead of mislabeling the
    instance; the engine reports it as status ``unsupported``. The
    registry's ``SolverSpec.supports(inst)`` predicate lets callers test
    before running.
    """


class InfeasibleScheduleError(CCSError):
    """A schedule failed feasibility validation.

    Attributes
    ----------
    reason:
        Human-readable description of the violated constraint.
    machine:
        Index of the offending machine, if the violation is machine-local.
    job:
        Index of the offending job, if the violation is job-local.
    """

    def __init__(self, reason: str, *, machine: int | None = None,
                 job: int | None = None) -> None:
        self.reason = reason
        self.machine = machine
        self.job = job
        detail = reason
        if machine is not None:
            detail += f" (machine {machine})"
        if job is not None:
            detail += f" (job {job})"
        super().__init__(detail)


class InfeasibleGuessError(CCSError):
    """A makespan guess T admits no feasible schedule (used internally)."""


class SolverError(CCSError):
    """An ILP/LP backend failed unexpectedly (status other than optimal or
    proven infeasible)."""


class CapacityExceededError(CCSError):
    """An enumeration (modules/configurations) exceeded a safety cap.

    The PTAS enumerations are exponential in 1/delta; rather than silently
    grinding forever we raise with the cap that was hit, so callers can
    choose a coarser accuracy.
    """

    def __init__(self, what: str, count: int, cap: int) -> None:
        self.what = what
        self.count = count
        self.cap = cap
        super().__init__(
            f"enumeration of {what} exceeded cap: {count} > {cap}; "
            f"use a coarser epsilon or raise the cap explicitly")
