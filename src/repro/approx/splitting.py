"""Cutting classes into sub-classes of load at most ``T`` (Algorithm 1).

Given a makespan guess ``T``, every class with accumulated load ``P_u > T``
is cut into ``ceil(P_u / T)`` sub-classes: conceptually the jobs of the
class are concatenated (in job-index order) and sliced at multiples of
``T``. All but the last sub-class have load exactly ``T``; a job lying
across a slice boundary is cut there.

The concatenation order matters for the preemptive regime: the tail of a
cut job is the *last* piece of its sub-class and the head is the *first*
piece of the next one, which is exactly what makes the repacking of
Algorithm 2 collision-free (see :mod:`repro.approx.preemptive`).

This is the hottest kernel of the constant-factor solvers, so the default
implementation runs on exact scaled integers: with ``T = num/den`` every
quantity here is a multiple of ``1/den``, so the whole cutting loop works
in units of ``1/den`` on plain ``int`` and ``Fraction`` objects are only
built once per emitted piece at the boundary. The pure-``Fraction``
reference implementation is kept for the golden-equivalence tests and the
perf harness (:func:`repro.core.fastmath.use_fast_paths`).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.fastmath import fast_paths_enabled
from ..core.instance import Instance

__all__ = ["SubClass", "split_classes"]


@dataclass(frozen=True)
class SubClass:
    """A sub-class produced by cutting: a run of (job, amount) pieces.

    ``pieces`` preserves concatenation order. ``is_full`` marks sub-classes
    of load exactly ``T`` (the paper's ``P_u' = T`` classes).
    """

    original_class: int
    pieces: tuple[tuple[int, Fraction], ...]
    load: Fraction
    is_full: bool

    def jobs(self) -> list[int]:
        return [j for j, _ in self.pieces]


def split_classes(inst: Instance, T: Fraction) -> list[SubClass]:
    """Cut every class of ``inst`` at multiples of ``T``.

    Returns all sub-classes (classes with ``P_u <= T`` yield themselves,
    uncut). Total count equals ``split_count(class_loads, T)``.
    """
    T = Fraction(T)
    if T <= 0:
        raise ValueError("T must be positive")
    if fast_paths_enabled():
        return _split_classes_fast(inst, T)
    return _split_classes_reference(inst, T)


def _split_classes_fast(inst: Instance, T: Fraction) -> list[SubClass]:
    """Scaled-integer cutting loop: everything is a multiple of
    ``1/den`` (``T = num/den``), so the loop body is pure ``int``
    arithmetic and ``Fraction`` values are reconstructed per piece at the
    very end."""
    num, den = T.numerator, T.denominator
    times = inst.processing_times
    subs: list[SubClass] = []
    for u, jobs in enumerate(inst.jobs_by_class):
        current: list[tuple[int, int]] = []      # (job, units of 1/den)
        current_load = 0                          # units of 1/den
        for j in jobs:
            remaining = times[j] * den
            while remaining > 0:
                room = num - current_load
                take = room if room < remaining else remaining
                current.append((j, take))
                current_load += take
                remaining -= take
                if current_load == num:
                    subs.append(SubClass(
                        u,
                        tuple((j2, Fraction(a, den)) for j2, a in current),
                        T, True))
                    current = []
                    current_load = 0
        if current:
            subs.append(SubClass(
                u, tuple((j2, Fraction(a, den)) for j2, a in current),
                Fraction(current_load, den), False))
    return subs


def _split_classes_reference(inst: Instance, T: Fraction) -> list[SubClass]:
    """The original pure-``Fraction`` cutting loop (reference path)."""
    subs: list[SubClass] = []
    for u in range(inst.num_classes):
        jobs = inst.jobs_of_class(u)
        current: list[tuple[int, Fraction]] = []
        current_load = Fraction(0)
        for j in jobs:
            remaining = Fraction(inst.processing_times[j])
            while remaining > 0:
                room = T - current_load
                take = min(room, remaining)
                current.append((j, take))
                current_load += take
                remaining -= take
                if current_load == T:
                    subs.append(SubClass(u, tuple(current), T, True))
                    current = []
                    current_load = Fraction(0)
        if current:
            subs.append(SubClass(u, tuple(current), current_load, False))
    return subs
