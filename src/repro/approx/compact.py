"""Compact (output-polynomial) splittable schedules for huge machine counts.

When ``m`` is exponential in ``n`` the round robin layout of Algorithm 1 may
contain up to ``m`` sub-classes of load exactly ``T`` — far too many to
enumerate. The paper (Theorem 4, huge-``m`` case) observes that all but at
most ``C`` sub-classes have load exactly ``T``, so it suffices to store the
remainder sub-classes explicitly and the full ones by *count*.

:class:`CompactSplittableSchedule` stores exactly that and defines the round
robin layout *functionally*: machine ``i``'s contents are computable in
``O(c + log n)`` from the stored counts, so any machine can be materialised
on demand while the whole object stays ``O(n)`` in size.

Layout (machines indexed ``0..m-1``; items sorted non-ascending: the ``K``
full pieces first, then the ``S`` remainder sub-classes by load):

* row 1: item ``i`` on machine ``i`` (``i < min(m, K+S)``),
* row 2: item ``m+i`` on machine ``i`` (``m+i < K+S``).

Because ``K <= m`` (each full piece has area ``T`` and the area bound gives
``K*T <= sum p_j <= m*T``) and ``S <= C <= n < m`` whenever this mode
triggers, at most two rows exist, matching the paper's "machines filled with
two classes of size T" bookkeeping.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction

from ..core.errors import InfeasibleScheduleError, InvalidInstanceError
from ..core.instance import Instance
from ..core.schedule import Piece, SplittableSchedule

__all__ = ["CompactSplittableSchedule"]


@dataclass(frozen=True)
class _ClassSlicing:
    """Slicing data for one class: jobs in concatenation order with integer
    prefix offsets, ``full_count`` pieces of size ``T`` and a remainder."""

    jobs: tuple[int, ...]
    offsets: tuple[int, ...]          # offsets[k] = start of jobs[k]; + total
    full_count: int
    remainder: Fraction               # load of the remainder sub-class (may be 0)


class CompactSplittableSchedule:
    """Functional representation of Algorithm 1's round robin layout."""

    def __init__(self, inst: Instance, T: Fraction,
                 slicings: list[_ClassSlicing]) -> None:
        self._inst = inst
        self.T = Fraction(T)
        self.num_machines = inst.machines
        self._slicings = slicings
        # class -> first global full-piece id
        self._full_offsets: list[int] = []
        acc = 0
        for s in slicings:
            self._full_offsets.append(acc)
            acc += s.full_count
        self.full_pieces = acc
        # remainder sub-classes sorted by (load desc, class asc)
        rem = [(s.remainder, u) for u, s in enumerate(slicings)
               if s.remainder > 0]
        rem.sort(key=lambda t: (-t[0], t[1]))
        self._small_loads = [r for r, _ in rem]
        self._small_classes = [u for _, u in rem]
        self.small_pieces = len(rem)
        self.total_items = self.full_pieces + self.small_pieces

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @staticmethod
    def build(inst: Instance, T: Fraction) -> "CompactSplittableSchedule":
        T = Fraction(T)
        slicings: list[_ClassSlicing] = []
        for u in range(inst.num_classes):
            jobs = tuple(inst.jobs_of_class(u))
            offsets = [0]
            for j in jobs:
                offsets.append(offsets[-1] + inst.processing_times[j])
            P = offsets[-1]
            full = int(Fraction(P) / T)  # floor(P / T)
            rem = Fraction(P) - full * T
            slicings.append(_ClassSlicing(jobs, tuple(offsets), full, rem))
        sched = CompactSplittableSchedule(inst, T, slicings)
        if sched.full_pieces > inst.machines:
            raise InvalidInstanceError(
                "internal: more full pieces than machines — T below the area "
                "bound")
        return sched

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #

    def _item_load(self, item: int) -> Fraction:
        if item < self.full_pieces:
            return self.T
        return self._small_loads[item - self.full_pieces]

    def items_on(self, machine: int) -> list[int]:
        """Global item ids (fulls then smalls) landing on ``machine``."""
        if machine < 0 or machine >= self.num_machines:
            raise InvalidInstanceError(
                f"machine index {machine} outside 0..{self.num_machines - 1}")
        out = []
        if machine < min(self.num_machines, self.total_items):
            out.append(machine)
        second = self.num_machines + machine
        if second < self.total_items:
            out.append(second)
        return out

    def load(self, machine: int) -> Fraction:
        return sum((self._item_load(it) for it in self.items_on(machine)),
                   Fraction(0))

    def makespan(self) -> Fraction:
        """Exact maximum load; O(1) via segment breakpoints.

        Item loads are non-increasing in the item id, so within each
        structural segment of the layout the machine load is non-increasing
        in the machine id; evaluating the segment left endpoints suffices.
        """
        if self.total_items == 0:
            return Fraction(0)
        candidates = {0, self.full_pieces,
                      max(0, self.total_items - self.num_machines),
                      min(self.num_machines, self.total_items) - 1}
        best = Fraction(0)
        for i in candidates:
            if 0 <= i < self.num_machines:
                load = self.load(i)
                if load > best:
                    best = load
        return best

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #

    def _full_piece_class(self, item: int) -> tuple[int, int]:
        """Map a full-piece id to ``(class, index within class)``."""
        u = bisect_right(self._full_offsets, item) - 1
        return u, item - self._full_offsets[u]

    def pieces_of_item(self, item: int) -> list[Piece]:
        """Materialise one sub-class into job pieces (concatenation order)."""
        if item < self.full_pieces:
            u, idx = self._full_piece_class(item)
            lo, hi = idx * self.T, (idx + 1) * self.T
        else:
            u = self._small_classes[item - self.full_pieces]
            s = self._slicings[u]
            lo = s.full_count * self.T
            hi = Fraction(s.offsets[-1])
        s = self._slicings[u]
        out: list[Piece] = []
        # jobs overlapping [lo, hi): offsets are sorted ints, lo/hi rationals
        k = bisect_right(s.offsets, lo) - 1
        if k < 0:
            k = 0
        while k < len(s.jobs) and Fraction(s.offsets[k]) < hi:
            j = s.jobs[k]
            a = max(lo, Fraction(s.offsets[k]))
            b = min(hi, Fraction(s.offsets[k + 1]))
            if b > a:
                out.append(Piece(j, b - a))
            k += 1
        return out

    def pieces_on(self, machine: int) -> list[Piece]:
        out: list[Piece] = []
        for item in self.items_on(machine):
            out.extend(self.pieces_of_item(item))
        return out

    def classes_on(self, machine: int) -> set[int]:
        out = set()
        for item in self.items_on(machine):
            if item < self.full_pieces:
                out.add(self._full_piece_class(item)[0])
            else:
                out.add(self._small_classes[item - self.full_pieces])
        return out

    def to_explicit(self, item_limit: int = 1_000_000) -> SplittableSchedule:
        """Materialise the whole layout (raises when too large)."""
        if self.total_items > item_limit:
            raise InvalidInstanceError(
                f"compact schedule has {self.total_items} sub-classes; "
                f"refusing to materialise more than {item_limit}")
        sched = SplittableSchedule(self.num_machines)
        for i in range(min(self.num_machines, self.total_items)):
            for piece in self.pieces_on(i):
                sched.assign(i, piece.job, piece.amount)
        return sched

    # ------------------------------------------------------------------ #
    # validation (symbolic — called via core.validation.validate)
    # ------------------------------------------------------------------ #

    def validate_against(self, inst: Instance) -> Fraction:
        """Symbolically validate feasibility; returns the makespan.

        Checks: slicing accounts for every unit of every class; the item
        count fits in ``c*m`` class slots; machines hold at most two items
        (and two only when ``c >= 2``); sampled materialised machines agree
        with the stored loads.
        """
        inst = inst.normalized()
        if inst.machines != self.num_machines:
            raise InfeasibleScheduleError(
                f"schedule has {self.num_machines} machines, instance has "
                f"{inst.machines}")
        for u, s in enumerate(self._slicings):
            P = Fraction(s.offsets[-1])
            if s.full_count * self.T + s.remainder != P:
                raise InfeasibleScheduleError(
                    f"class {u}: slicing covers {s.full_count * self.T + s.remainder} "
                    f"of load {P}")
            if not (0 <= s.remainder < self.T) and not (s.remainder == 0):
                raise InfeasibleScheduleError(
                    f"class {u}: remainder {s.remainder} not in [0, T)")
        if self.total_items > inst.class_slots * inst.machines:
            raise InfeasibleScheduleError(
                f"{self.total_items} sub-classes exceed c*m = "
                f"{inst.class_slots * inst.machines} class slots")
        if self.total_items > 2 * self.num_machines:
            raise InfeasibleScheduleError(
                "layout would need more than two rows")
        if self.total_items > self.num_machines and inst.class_slots < 2:
            raise InfeasibleScheduleError(
                "two items per machine but only one class slot")
        # spot-check a few machines end to end
        probe = {0, self.full_pieces,
                 max(0, self.total_items - self.num_machines),
                 min(self.num_machines, self.total_items) - 1}
        for i in probe:
            if not (0 <= i < self.num_machines):
                continue
            pieces = self.pieces_on(i)
            total = sum((p.amount for p in pieces), Fraction(0))
            if total != self.load(i):
                raise InfeasibleScheduleError(
                    f"materialised load {total} != stored load {self.load(i)}",
                    machine=i)
            if len(self.classes_on(i)) > inst.class_slots:
                raise InfeasibleScheduleError(
                    "class slots exceeded", machine=i)
        return self.makespan()
