"""Longest Processing Time (LPT) list scheduling onto ``k`` groups.

Used by the 7/3-approximation (Theorem 6) to split a class into ``C_u``
sub-groups, and by the class-unaware baselines. Runs in ``O(n log n)`` using
a heap of group loads.
"""

from __future__ import annotations

import heapq
from typing import Sequence

__all__ = ["lpt_partition", "lpt_makespan"]


def lpt_partition(sizes: Sequence[int], k: int) -> list[list[int]]:
    """Partition item indices into ``k`` groups via LPT.

    Items are taken in non-increasing size order; each goes to the currently
    least-loaded group (ties by group index for determinism). Returns the
    groups as lists of item indices; every group is created even if empty.
    """
    if k < 1:
        raise ValueError("need at least one group")
    groups: list[list[int]] = [[] for _ in range(k)]
    heap: list[tuple[int, int]] = [(0, g) for g in range(k)]
    heapq.heapify(heap)
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    for i in order:
        load, g = heapq.heappop(heap)
        groups[g].append(i)
        heapq.heappush(heap, (load + sizes[i], g))
    return groups


def lpt_makespan(sizes: Sequence[int], k: int) -> int:
    """Maximum group load produced by :func:`lpt_partition`."""
    groups = lpt_partition(sizes, k)
    return max((sum(sizes[i] for i in g) for g in groups), default=0)
