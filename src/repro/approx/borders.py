"""The advanced border binary search of Lemma 2.

In the splittable algorithm the only thing a makespan guess ``T`` controls
is how many sub-classes are produced when classes with ``P_u > T`` are cut
into pieces of size ``T``: class ``u`` yields ``ceil(P_u / T)`` sub-classes.
The guess is feasible iff the total sub-class count is at most ``c * m``.
The count only changes at the *borders* ``P_u / k``, so it suffices to
search those.

For huge ``m`` we cannot enumerate ``k = 1..m`` per class; instead we use
divisor stepping (the classic ``O(sqrt(P))`` harmonic trick): consecutive
``k`` with identical ``floor(P/k)`` yield the same downstream behaviour for
counting, and the *set of distinct border values* ``{P/k}`` has at most
``2*sqrt(P)`` elements with ``k`` capped at ``min(m, P)`` — processing times
are integral, so borders below 1 are never optimal guesses here because the
area bound dominates them.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

__all__ = ["split_count", "candidate_borders", "smallest_feasible_border",
           "advanced_binary_search"]


def split_count(class_loads: Sequence[int], T: Fraction) -> int:
    """Total number of (sub-)classes when every class with ``P_u > T`` is cut
    into ``ceil(P_u / T)`` pieces. Exact rational arithmetic."""
    if T <= 0:
        raise ValueError("T must be positive")
    num, den = T.numerator, T.denominator
    total = 0
    for P in class_loads:
        # ceil(P / (num/den)) = ceil(P * den / num)
        total += -((-P * den) // num)
    return total


def candidate_borders(class_loads: Sequence[int], m: int,
                      cap: int = 1_000_000) -> list[Fraction]:
    """Sorted, deduplicated border set ``{P_u / k : k in 1..min(m, P_u)}``.

    Full materialisation — only for small ``m`` (tests, figures). The
    algorithms use :func:`smallest_feasible_border`, which binary-searches
    ``k`` per class and never materialises the set (that is what keeps the
    splittable algorithm's dependence on ``m`` logarithmic).
    """
    borders: set[Fraction] = set()
    total = 0
    for P in class_loads:
        if P <= 0:
            continue
        total += m
        if total > cap:
            raise ValueError(
                f"border set would exceed {cap} values; use "
                "smallest_feasible_border for large m")
        for k in range(1, m + 1):
            borders.add(Fraction(P, k))
    return sorted(borders)


def smallest_feasible_border(class_loads: Sequence[int], m: int,
                             budget: int) -> Fraction | None:
    """Smallest border ``T`` with ``split_count(T) <= budget`` (Lemma 2).

    Feasibility is monotone in ``T`` (each ``ceil(P_u/T)`` is
    non-increasing), so the feasible region is ``[T*, inf)`` and ``T*`` is
    a border of some class. Per class we binary search the *largest*
    ``k <= min(m, P_u)`` whose border ``P_u/k`` is still feasible — only
    ``O(log m)`` count evaluations per class, never enumerating ``m``.

    Returns ``None`` when no border is feasible, i.e. the class count
    alone exceeds the budget (``C > c*m``): no schedule exists at all.
    """
    best: Fraction | None = None
    for P in set(class_loads):
        if P <= 0:
            continue
        # k ranges over 1..m (Lemma 2): beyond k = m the area bound takes
        # over. Borders may drop below 1 — processing times are integral
        # but split pieces are not.
        kmax = m
        lo, hi = 1, kmax
        best_k = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if split_count(class_loads, Fraction(P, mid)) <= budget:
                best_k = mid
                lo = mid + 1
            else:
                hi = mid - 1
        if best_k is not None:
            cand = Fraction(P, best_k)
            if best is None or cand < best:
                best = cand
    return best


def advanced_binary_search(class_loads: Sequence[int], m: int, budget: int,
                           lower_bound: Fraction) -> Fraction | None:
    """Lemma 2's search: the guess used by Algorithm 1.

    Returns ``max(lower_bound, smallest feasible border)``. Both terms lower
    bound the optimum: the area/pmax term by definition, the border term
    because any schedule with makespan below it would need more than
    ``c * m`` class slots. ``None`` signals an infeasible instance
    (``C > c * m``).
    """
    border = smallest_feasible_border(class_loads, m, budget)
    if border is None:
        return None
    return max(Fraction(lower_bound), border)
