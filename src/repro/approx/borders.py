"""The advanced border binary search of Lemma 2.

In the splittable algorithm the only thing a makespan guess ``T`` controls
is how many sub-classes are produced when classes with ``P_u > T`` are cut
into pieces of size ``T``: class ``u`` yields ``ceil(P_u / T)`` sub-classes.
The guess is feasible iff the total sub-class count is at most ``c * m``.
The count only changes at the *borders* ``P_u / k``, so it suffices to
search those.

For huge ``m`` we cannot enumerate ``k = 1..m`` per class; instead we use
divisor stepping (the classic ``O(sqrt(P))`` harmonic trick): consecutive
``k`` with identical ``floor(P/k)`` yield the same downstream behaviour for
counting, and the *set of distinct border values* ``{P/k}`` has at most
``2*sqrt(P)`` elements with ``k`` capped at ``min(m, P)`` — processing times
are integral, so borders below 1 are never optimal guesses here because the
area bound dominates them.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from fractions import Fraction
from typing import Mapping, Sequence

import numpy as np

from ..core.fastmath import INT64_SAFE, fast_paths_enabled
from ..core.native import NATIVE

__all__ = ["split_count", "candidate_borders", "smallest_feasible_border",
           "advanced_binary_search", "border_hints"]

#: Precomputed border results installed by the batch engine. The
#: multi-cell kernel (:mod:`repro.core.batchkernels`) solves a whole
#: chunk's border searches in one vectorised pass, then replays each cell
#: through the ordinary solver; the hint hands that precomputed answer
#: back to :func:`smallest_feasible_border` when the *exact* arguments
#: match. Thread-local so concurrent batch chunks cannot see each
#: other's hints.
_hints = threading.local()


@contextmanager
def border_hints(hints: Mapping[tuple[tuple[int, ...], int, int],
                                Fraction | None]):
    """Install precomputed ``smallest_feasible_border`` results.

    ``hints`` maps ``(tuple(class_loads), m, budget)`` to the border the
    search would return (or ``None`` for "no feasible border"). Only the
    fast path consumes hints — the pure-``Fraction`` reference always
    recomputes, preserving the golden-equivalence contract. The values
    installed must be exact: the batch kernels are bit-identical to the
    scalar search, so this is a cache, not an approximation.
    """
    prev = getattr(_hints, "value", None)
    _hints.value = dict(hints)
    try:
        yield
    finally:
        _hints.value = prev


def _split_count_scaled(class_loads: Sequence[int], num: int,
                        den: int) -> int:
    """``split_count`` for ``T = num/den`` on plain ints (no ``Fraction``
    construction): ``sum ceil(P * den / num)``."""
    total = 0
    for P in class_loads:
        total += -((-P * den) // num)
    return total


def _split_count_vec(loads: np.ndarray, num: int, den: int) -> int:
    """Vectorised ``split_count``; caller guarantees int64 headroom.

    ``numpy`` floor division rounds toward -inf exactly like Python's
    ``//``, so the negated-floor ceiling trick transfers unchanged."""
    return int(-np.sum((loads * -den) // num))


def split_count(class_loads: Sequence[int], T: Fraction) -> int:
    """Total number of (sub-)classes when every class with ``P_u > T`` is cut
    into ``ceil(P_u / T)`` pieces. Exact integer arithmetic."""
    if T <= 0:
        raise ValueError("T must be positive")
    num, den = T.numerator, T.denominator
    if fast_paths_enabled() and len(class_loads) >= 8:
        max_load = max(class_loads, default=0)
        # bound the whole accumulated sum, not just each term: the count
        # of an infeasibly small guess can dwarf any one ceil term
        if 0 < num < INT64_SAFE and \
                len(class_loads) * (max_load * den + 1) < INT64_SAFE:
            if NATIVE is not None and 0 < den:
                return NATIVE.split_count_scaled(list(class_loads), num,
                                                 den)
            return _split_count_vec(
                np.asarray(class_loads, dtype=np.int64), num, den)
    return _split_count_scaled(class_loads, num, den)


def candidate_borders(class_loads: Sequence[int], m: int,
                      cap: int = 1_000_000) -> list[Fraction]:
    """Sorted, deduplicated border set ``{P_u / k : k in 1..min(m, P_u)}``.

    Full materialisation — only for small ``m`` (tests, figures). The
    algorithms use :func:`smallest_feasible_border`, which binary-searches
    ``k`` per class and never materialises the set (that is what keeps the
    splittable algorithm's dependence on ``m`` logarithmic).
    """
    borders: set[Fraction] = set()
    total = 0
    for P in class_loads:
        if P <= 0:
            continue
        total += m
        if total > cap:
            raise ValueError(
                f"border set would exceed {cap} values; use "
                "smallest_feasible_border for large m")
        for k in range(1, m + 1):
            borders.add(Fraction(P, k))
    return sorted(borders)


def smallest_feasible_border(class_loads: Sequence[int], m: int,
                             budget: int) -> Fraction | None:
    """Smallest border ``T`` with ``split_count(T) <= budget`` (Lemma 2).

    Feasibility is monotone in ``T`` (each ``ceil(P_u/T)`` is
    non-increasing), so the feasible region is ``[T*, inf)`` and ``T*`` is
    a border of some class. Per class we binary search the *largest*
    ``k <= min(m, P_u)`` whose border ``P_u/k`` is still feasible — only
    ``O(log m)`` count evaluations per class, never enumerating ``m``.

    Returns ``None`` when no border is feasible, i.e. the class count
    alone exceeds the budget (``C > c*m``): no schedule exists at all.
    """
    if fast_paths_enabled():
        hints = getattr(_hints, "value", None)
        if hints is not None:
            key = (tuple(class_loads), m, budget)
            if key in hints:
                return hints[key]
        return _smallest_feasible_border_fast(class_loads, m, budget)
    return _smallest_feasible_border_reference(class_loads, m, budget)


def _smallest_feasible_border_reference(class_loads: Sequence[int], m: int,
                                        budget: int) -> Fraction | None:
    """Pure-``Fraction`` reference implementation (perf harness + golden
    equivalence); the fast path must return the identical border."""
    best: Fraction | None = None
    for P in set(class_loads):
        if P <= 0:
            continue
        # k ranges over 1..m (Lemma 2): beyond k = m the area bound takes
        # over. Borders may drop below 1 — processing times are integral
        # but split pieces are not.
        kmax = m
        lo, hi = 1, kmax
        best_k = None
        while lo <= hi:
            mid = (lo + hi) // 2
            guess = Fraction(P, mid)
            if _split_count_scaled(class_loads, guess.numerator,
                                   guess.denominator) <= budget:
                best_k = mid
                lo = mid + 1
            else:
                hi = mid - 1
        if best_k is not None:
            cand = Fraction(P, best_k)
            if best is None or cand < best:
                best = cand
    return best


def _smallest_feasible_border_fast(class_loads: Sequence[int], m: int,
                                   budget: int) -> Fraction | None:
    """Scaled-integer border search: the per-step guess ``P/mid`` is kept
    as a (num, den) pair — no ``Fraction`` is constructed inside the
    ``O(C log m)`` loop — and counts are vectorised when they provably fit
    int64. The winning border is rebuilt as a ``Fraction`` once."""
    loads = [int(P) for P in class_loads]
    nc = len(loads)
    max_load = max(loads, default=0)
    arr = np.asarray(loads, dtype=np.int64) \
        if nc >= 8 and max_load < INT64_SAFE else None

    def count(num: int, den: int) -> int:
        if 0 < num < INT64_SAFE \
                and nc * (max_load * den + 1) < INT64_SAFE:
            if NATIVE is not None:
                return NATIVE.split_count_scaled(loads, num, den)
            if arr is not None:
                return _split_count_vec(arr, num, den)
        return _split_count_scaled(loads, num, den)

    best_num: int | None = None
    best_den = 1
    for P in set(loads):
        if P <= 0:
            continue
        lo, hi = 1, m
        best_k = None
        while lo <= hi:
            mid = (lo + hi) // 2
            if count(P, mid) <= budget:
                best_k = mid
                lo = mid + 1
            else:
                hi = mid - 1
        if best_k is not None and (best_num is None
                                   or P * best_den < best_num * best_k):
            best_num, best_den = P, best_k
    if best_num is None:
        return None
    return Fraction(best_num, best_den)


def advanced_binary_search(class_loads: Sequence[int], m: int, budget: int,
                           lower_bound: Fraction) -> Fraction | None:
    """Lemma 2's search: the guess used by Algorithm 1.

    Returns ``max(lower_bound, smallest feasible border)``. Both terms lower
    bound the optimum: the area/pmax term by definition, the border term
    because any schedule with makespan below it would need more than
    ``c * m`` class slots. ``None`` signals an infeasible instance
    (``C > c * m``).
    """
    border = smallest_feasible_border(class_loads, m, budget)
    if border is None:
        return None
    return max(Fraction(lower_bound), border)
