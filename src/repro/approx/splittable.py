"""The 2-approximation for splittable CCS (Algorithm 1 / Theorem 4).

Pipeline: advanced border binary search (Lemma 2) for the guess ``T``; cut
classes with ``P_u > T`` into sub-classes of load ``<= T``; round robin the
sub-classes in non-ascending load order. Guarantee: makespan at most
``sum p_j / m + T <= 2 T <= 2 OPT``.

Two output modes:

* **explicit** — a :class:`~repro.core.schedule.SplittableSchedule` holding
  every piece; chosen whenever the sub-class count is polynomially small.
* **compact** — for machine counts exponential in ``n`` the sub-class count
  can itself be astronomic (up to ``m`` full pieces of size exactly ``T``),
  so we return a :class:`~repro.approx.compact.CompactSplittableSchedule`
  that represents the round robin layout functionally and can materialise
  any individual machine on demand. This reproduces the paper's huge-``m``
  handling (output length polynomial in ``n``, running time ``O(n^2 log m)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.bounds import area_bound
from ..core.errors import InfeasibleInstanceError
from ..core.instance import Instance
from ..core.schedule import SplittableSchedule
from .borders import advanced_binary_search, split_count
from .compact import CompactSplittableSchedule
from .round_robin import round_robin_assignment
from .splitting import split_classes

__all__ = ["SplittableResult", "solve_splittable"]

#: Above this many sub-classes the solver switches to the compact
#: representation. Any instance with m <= n stays far below it.
DEFAULT_PIECE_CAP = 500_000


@dataclass(frozen=True)
class SplittableResult:
    """Outcome of the splittable 2-approximation.

    ``guess`` is the accepted makespan guess ``T`` (a certified lower bound
    on OPT), so ``makespan / guess <= 2`` is the *a posteriori* ratio
    certificate. ``schedule`` is explicit or compact depending on size.
    """

    schedule: SplittableSchedule | CompactSplittableSchedule
    guess: Fraction
    lower_bound: Fraction
    makespan: Fraction

    @property
    def ratio_certificate(self) -> Fraction:
        """``makespan / guess``: provably an upper bound on ALG/OPT."""
        return self.makespan / self.guess if self.guess > 0 else Fraction(0)


def solve_splittable(inst: Instance,
                     piece_cap: int = DEFAULT_PIECE_CAP) -> SplittableResult:
    """Run Algorithm 1 on ``inst``.

    Raises :class:`InfeasibleInstanceError` when no feasible schedule
    exists (more classes than total class slots, ``C > c * m``).
    """
    inst = inst.normalized()
    inst.require_feasible()
    loads = inst.class_loads()
    m, c = inst.machines, inst.class_slots
    lb = area_bound(inst)
    T = advanced_binary_search(loads, m, c * m, lb)
    if T is None:    # pragma: no cover — ruled out by require_feasible
        raise InfeasibleInstanceError(inst.num_classes, c * m)

    n_sub = split_count(loads, T)
    # Explicit whenever feasible; the compact two-row layout is only valid
    # (and only needed) when m > n, which n_sub > 2n guarantees.
    if n_sub <= max(piece_cap, 2 * inst.num_jobs):
        sched = _build_explicit(inst, T)
        makespan = sched.makespan()
    else:
        sched = CompactSplittableSchedule.build(inst, T)
        makespan = sched.makespan()
    return SplittableResult(schedule=sched, guess=T, lower_bound=lb,
                            makespan=makespan)


def _build_explicit(inst: Instance, T: Fraction) -> SplittableSchedule:
    subs = split_classes(inst, T)
    sizes = [s.load for s in subs]
    rows = round_robin_assignment(sizes, inst.machines)
    sched = SplittableSchedule(inst.machines)
    for machine_pos, items in enumerate(rows):
        for item in items:
            for job, amount in subs[item].pieces:
                sched.assign(machine_pos, job, amount)
    return sched
