"""The 2-approximation for preemptive CCS (Algorithm 1 + 2 / Theorem 5).

Identical to the splittable algorithm except:

* the lower bound also includes ``pmax`` (a job cannot run in parallel with
  itself), which guarantees every job is cut **at most once**;
* after round robin, if any sub-class has load exactly ``T`` (i.e. cutting
  happened), the schedule *above* the first class of every machine is
  shifted to start at time ``T`` (Algorithm 2). Together with the
  concatenation order inside sub-classes — a cut job's tail is the *last*
  piece of its full sub-class (ending exactly at ``T``) and its head the
  *first* piece of the following sub-class — this makes same-job pieces
  non-overlapping;
* ``m >= n`` is solved optimally by giving every job its own machine
  (makespan ``pmax`` = OPT), so the effective machine count is at most
  ``n`` and schedules are always explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..core.bounds import area_bound
from ..core.errors import InfeasibleInstanceError
from ..core.instance import Instance
from ..core.schedule import PreemptiveSchedule
from .borders import advanced_binary_search
from .round_robin import round_robin_assignment
from .splitting import split_classes

__all__ = ["PreemptiveResult", "solve_preemptive"]


@dataclass(frozen=True)
class PreemptiveResult:
    """Outcome of the preemptive 2-approximation (see Theorem 5)."""

    schedule: PreemptiveSchedule
    guess: Fraction
    lower_bound: Fraction
    makespan: Fraction
    optimal: bool = False

    @property
    def ratio_certificate(self) -> Fraction:
        return self.makespan / self.guess if self.guess > 0 else Fraction(0)


def solve_preemptive(inst: Instance) -> PreemptiveResult:
    """Run the preemptive 2-approximation on ``inst``."""
    inst = inst.normalized()
    inst.require_feasible()
    if inst.machines >= inst.num_jobs:
        return _one_job_per_machine(inst)

    loads = inst.class_loads()
    m, c = inst.machines, inst.class_slots
    lb = max(area_bound(inst), Fraction(inst.pmax))
    T = advanced_binary_search(loads, m, c * m, lb)
    if T is None:    # pragma: no cover — ruled out by require_feasible
        raise InfeasibleInstanceError(inst.num_classes, c * m)

    subs = split_classes(inst, T)
    any_full = any(s.is_full for s in subs)
    sizes = [s.load for s in subs]
    rows = round_robin_assignment(sizes, m)

    sched = PreemptiveSchedule(m)
    for machine_pos, items in enumerate(rows):
        clock = Fraction(0)
        for rank, item in enumerate(items):
            if rank == 1 and any_full:
                # Algorithm 2: everything above the first (largest) class
                # starts at T. clock <= T always holds here because the
                # first class has load <= T.
                clock = max(clock, T)
            for job, amount in subs[item].pieces:
                sched.assign(machine_pos, job, clock, amount)
                clock += amount
    makespan = sched.makespan()
    return PreemptiveResult(schedule=sched, guess=T, lower_bound=lb,
                            makespan=makespan)


def _one_job_per_machine(inst: Instance) -> PreemptiveResult:
    """With m >= n every job gets its own machine — optimal (makespan pmax)."""
    sched = PreemptiveSchedule(inst.machines)
    for j, p in enumerate(inst.processing_times):
        sched.assign(j, j, 0, p)
    lb = Fraction(inst.pmax)
    return PreemptiveResult(schedule=sched, guess=lb, lower_bound=lb,
                            makespan=sched.makespan(), optimal=True)
