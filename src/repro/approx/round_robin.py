"""Round robin allotment and the Lemma 3 load bound.

Round robin places items (here: classes or sub-classes) in non-ascending
size order cyclically over the machines: item ``i`` (0-based, sorted) goes to
machine ``i mod m``. Lemma 3 of the paper bounds the resulting maximum load
by ``sum(sizes)/m + max(sizes)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence, TypeVar

__all__ = ["round_robin_assignment", "lemma3_bound", "round_robin_rows"]

T = TypeVar("T")


def round_robin_assignment(sizes: Sequence[Fraction | int],
                           num_machines: int) -> list[list[int]]:
    """Assign item indices to machines via sorted round robin.

    Returns ``machines`` as a list of ``min(num_machines, len(sizes))`` lists
    of item indices (machines beyond the first ``len(sizes)`` stay empty and
    are omitted — callers map positions to real machine ids). Ties are broken
    by item index for determinism.
    """
    if num_machines < 1:
        raise ValueError("need at least one machine")
    order = sorted(range(len(sizes)), key=lambda i: (-Fraction(sizes[i]), i))
    rows: list[list[int]] = [[] for _ in range(min(num_machines, len(sizes)))]
    for pos, item in enumerate(order):
        rows[pos % num_machines].append(item)
    return rows


def round_robin_rows(sizes: Sequence[Fraction | int],
                     num_machines: int) -> list[list[int]]:
    """The same assignment organised by *round*: ``rows[r]`` lists the items
    placed in round ``r`` (machine ``k`` receives ``rows[r][k]``). Used by
    the figure-regeneration code, which draws rounds as stacked rows."""
    order = sorted(range(len(sizes)), key=lambda i: (-Fraction(sizes[i]), i))
    rows = [order[r:r + num_machines]
            for r in range(0, len(order), num_machines)]
    return rows


def lemma3_bound(sizes: Sequence[Fraction | int],
                 num_machines: int) -> Fraction:
    """Lemma 3: round robin's makespan is at most ``sum/m + max``."""
    if not sizes:
        return Fraction(0)
    total = sum((Fraction(s) for s in sizes), Fraction(0))
    return total / num_machines + max(Fraction(s) for s in sizes)
