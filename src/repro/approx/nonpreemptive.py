"""The 7/3-approximation for non-preemptive CCS (Theorem 6).

Framework of Algorithm 1 with three changes: the lower bound includes
``pmax``; the number of sub-groups per class is the sharper
``C_u = max(ceil(P_u/T), k_u + ceil(l_u/2))`` accounting for jobs larger
than ``T/2`` and ``T/3`` (they cannot share machines freely); and classes
are split into whole-job groups via LPT instead of being cut. A standard
integral binary search replaces the border search (the optimum is integral
but the border structure no longer captures ``C_u``).

Guarantee: makespan at most ``LB + (4/3) T <= (7/3) T <= (7/3) OPT``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from math import ceil
from typing import Mapping

from ..core.bounds import (area_bound, presorted_class_count,
                           trivial_upper_bound)
from ..core.errors import InfeasibleInstanceError
from ..core.fastmath import fast_paths_enabled
from ..core.instance import Instance
from ..core.schedule import NonPreemptiveSchedule
from .lpt import lpt_partition
from .round_robin import round_robin_assignment

__all__ = ["NonPreemptiveResult", "solve_nonpreemptive", "guess_hints"]

#: Precomputed guess-search results installed by the batch engine. The
#: multi-cell kernel (:mod:`repro.core.batchkernels`) runs a whole
#: chunk's Theorem 6 binary searches in one vectorised lockstep pass,
#: then replays each cell through the ordinary solver; the hint hands
#: that precomputed ``T`` back when the instance digest matches. Thread
#: local so concurrent batch chunks cannot see each other's hints.
_hints = threading.local()


@contextmanager
def guess_hints(hints: Mapping[str, int]):
    """Install precomputed Theorem 6 guesses, keyed by the *normalized*
    instance's content digest.

    Only the fast path consumes hints — the reference path always
    recomputes, preserving the golden-equivalence contract. Installed
    values must be exact: the batch kernel is bit-identical to the
    scalar search, so this is a cache, not an approximation. A hint
    whose counts fail re-derivation is ignored (the solver falls back
    to its own search), so a wrong hint can cost time, never change
    a report.
    """
    prev = getattr(_hints, "value", None)
    _hints.value = dict(hints)
    try:
        yield
    finally:
        _hints.value = prev


@dataclass(frozen=True)
class NonPreemptiveResult:
    """Outcome of the 7/3-approximation (Theorem 6)."""

    schedule: NonPreemptiveSchedule
    guess: int
    lower_bound: int
    makespan: int

    @property
    def ratio_certificate(self) -> float:
        return self.makespan / self.guess if self.guess > 0 else 0.0


def solve_nonpreemptive(inst: Instance) -> NonPreemptiveResult:
    """Run the 7/3-approximation on ``inst``."""
    inst = inst.normalized()
    inst.require_feasible()
    m, c = inst.machines, inst.class_slots
    budget = c * m

    per_class = [[inst.processing_times[j] for j in inst.jobs_by_class[u]]
                 for u in range(inst.num_classes)]
    # sorted views + sums precomputed once: the binary search re-evaluates
    # the Theorem 6 counts O(log UB) times
    per_class_asc = [sorted(pjs) for pjs in per_class]
    per_class_sum = [sum(pjs) for pjs in per_class]

    def group_counts(T: int) -> list[int] | None:
        counts = []
        total = 0
        for pjs, s in zip(per_class_asc, per_class_sum):
            cu = presorted_class_count(pjs, s, T)
            counts.append(cu)
            total += cu
            if total > budget:
                return None
        return counts

    lb = max(inst.pmax, ceil(area_bound(inst)))
    T = counts = None
    if fast_paths_enabled():
        hints = getattr(_hints, "value", None)
        if hints is not None:
            hint = hints.get(inst.digest())
            if hint is not None:
                counts = group_counts(hint)
                if counts is not None:
                    T = hint    # exact precomputed search result
    if T is None:
        hi = int(trivial_upper_bound(inst))
        lo = lb
        # Standard binary search for the smallest feasible integral
        # guess. The upper bound is always feasible: the optimum is
        # <= UB and the counting argument is a valid lower bound on
        # slots used by *any* schedule of makespan T, hence
        # counts(UB) <= counts(OPT) <= c*m.
        if group_counts(hi) is None:  # pragma: no cover - defensive
            raise InfeasibleInstanceError(inst.num_classes, budget)
        while lo < hi:
            mid = (lo + hi) // 2
            if group_counts(mid) is not None:
                hi = mid
            else:
                lo = mid + 1
        T = hi
        counts = group_counts(T)
        assert counts is not None

    # Split each class into C_u groups of whole jobs via LPT, then round
    # robin the groups by non-ascending load.
    groups: list[list[int]] = []   # lists of job indices
    group_loads: list[int] = []
    for u, pjs in enumerate(per_class):
        jobs = inst.jobs_of_class(u)
        parts = lpt_partition(pjs, counts[u])
        for part in parts:
            if not part and counts[u] > 1:
                # LPT may leave a group empty when a class has fewer jobs
                # than groups; empty groups carry no jobs and no load but
                # still exist conceptually — skip them in the allotment.
                continue
            groups.append([jobs[i] for i in part])
            group_loads.append(sum(pjs[i] for i in part))

    rows = round_robin_assignment(group_loads, m)
    sched = NonPreemptiveSchedule(inst.num_jobs, m)
    for machine_pos, items in enumerate(rows):
        for item in items:
            for j in groups[item]:
                sched.assign(j, machine_pos)
    return NonPreemptiveResult(schedule=sched, guess=T, lower_bound=lb,
                               makespan=sched.makespan(inst))
