"""Constant-factor approximation algorithms (Section 3 of the paper)."""

from .borders import (advanced_binary_search, candidate_borders,
                      smallest_feasible_border, split_count)
from .compact import CompactSplittableSchedule
from .lpt import lpt_makespan, lpt_partition
from .nonpreemptive import NonPreemptiveResult, solve_nonpreemptive
from .preemptive import PreemptiveResult, solve_preemptive
from .round_robin import lemma3_bound, round_robin_assignment, round_robin_rows
from .splittable import SplittableResult, solve_splittable
from .splitting import SubClass, split_classes

__all__ = [
    "solve_splittable",
    "solve_preemptive",
    "solve_nonpreemptive",
    "SplittableResult",
    "PreemptiveResult",
    "NonPreemptiveResult",
    "CompactSplittableSchedule",
    "split_classes",
    "SubClass",
    "split_count",
    "candidate_borders",
    "smallest_feasible_border",
    "advanced_binary_search",
    "round_robin_assignment",
    "round_robin_rows",
    "lemma3_bound",
    "lpt_partition",
    "lpt_makespan",
]
