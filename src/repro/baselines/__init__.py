"""Folklore baselines the paper's algorithms are compared against."""

from .bin_packing import ffd_binary_search_schedule, ffd_pack
from .list_scheduling import greedy_list_schedule, lpt_class_schedule
from .mcnaughton import mcnaughton_makespan, mcnaughton_schedule

__all__ = [
    "greedy_list_schedule",
    "lpt_class_schedule",
    "ffd_pack",
    "ffd_binary_search_schedule",
    "mcnaughton_schedule",
    "mcnaughton_makespan",
]
