"""McNaughton's wrap-around rule — the class-oblivious preemptive optimum.

For preemptive scheduling *without* class constraints, McNaughton (1959)
achieves the optimal makespan ``max(pmax, sum p_j / m)`` by laying jobs out
on a single timeline and wrapping at ``T``. We implement it (a) as the
classical baseline the preemptive experiments compare against on
unconstrained instances, and (b) as a certificate: when ``c >= C`` the
paper's problem degenerates and our algorithms must match it.

The wrap produces at most ``m - 1`` preempted jobs, and wrapped pieces
never overlap themselves because every job has ``p_j <= T``.
"""

from __future__ import annotations

from fractions import Fraction

from ..core.errors import UnsupportedInstanceError
from ..core.instance import Instance
from ..core.schedule import PreemptiveSchedule

__all__ = ["mcnaughton_schedule", "mcnaughton_makespan",
           "mcnaughton_supported"]


def mcnaughton_supported(inst: Instance) -> bool:
    """The registry ``supports`` predicate: McNaughton only handles
    instances whose class constraints never bind (``c >= C``)."""
    return inst.normalized().is_trivially_unconstrained()


def mcnaughton_makespan(inst: Instance) -> Fraction:
    """``max(pmax, area)`` — optimal when class constraints do not bind."""
    return max(Fraction(inst.pmax), Fraction(inst.total_load, inst.machines))


def mcnaughton_schedule(inst: Instance,
                        enforce_classes: bool = True) -> PreemptiveSchedule:
    """The wrap-around schedule at ``T = max(pmax, area)``.

    With ``enforce_classes=True`` (default) the instance must be trivially
    unconstrained (``c >= C``) — otherwise McNaughton may violate the
    class slots and we refuse with
    :class:`~repro.core.errors.UnsupportedInstanceError`: the instance is
    perfectly valid, this algorithm just does not apply. Pass ``False``
    to build the class-oblivious schedule anyway (used by the experiments
    to quantify what the class constraints cost).
    """
    inst_n = inst.normalized()
    if enforce_classes and not inst_n.is_trivially_unconstrained():
        raise UnsupportedInstanceError(
            "McNaughton ignores class constraints; this instance has "
            f"C={inst_n.num_classes} > c={inst_n.class_slots}")
    T = mcnaughton_makespan(inst_n)
    sched = PreemptiveSchedule(inst.machines)
    machine = 0
    clock = Fraction(0)
    for j, p in enumerate(inst_n.processing_times):
        remaining = Fraction(p)
        while remaining > 0:
            room = T - clock
            if room == 0:
                machine += 1
                clock = Fraction(0)
                room = T
            take = min(remaining, room)
            sched.assign(machine, j, clock, take)
            clock += take
            remaining -= take
    return sched
