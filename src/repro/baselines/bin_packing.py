"""Class-constrained first-fit-decreasing (CCBP-style baseline).

The bin-packing view of CCS: guess a makespan ``T``, pack jobs into
machines of capacity ``T`` and ``c`` class slots by first-fit-decreasing,
and binary search the smallest ``T`` for which at most ``m`` machines are
opened. This mirrors the CCBP heuristics from the literature the paper
builds on (Xavier & Miyazawa; Epstein et al.) and serves as the strongest
"folklore" baseline in experiment B1.
"""

from __future__ import annotations

from ..core.bounds import trivial_upper_bound
from ..core.errors import InfeasibleScheduleError
from ..core.instance import Instance
from ..core.schedule import NonPreemptiveSchedule

__all__ = ["ffd_pack", "ffd_binary_search_schedule"]


def ffd_pack(inst: Instance, T: int) -> list[list[int]] | None:
    """First-fit-decreasing into bins of capacity ``T`` with ``c`` class
    slots; returns the bins (lists of jobs) or ``None`` if a job does not
    fit into any bin even when opening a new one (job > T)."""
    inst = inst.normalized()
    c = inst.class_slots
    bins: list[list[int]] = []
    loads: list[int] = []
    classes: list[set[int]] = []
    order = sorted(range(inst.num_jobs),
                   key=lambda j: (-inst.processing_times[j], j))
    for j in order:
        p, u = inst.processing_times[j], inst.classes[j]
        if p > T:
            return None
        placed = False
        for bi in range(len(bins)):
            if loads[bi] + p <= T and (u in classes[bi]
                                       or len(classes[bi]) < c):
                bins[bi].append(j)
                loads[bi] += p
                classes[bi].add(u)
                placed = True
                break
        if not placed:
            bins.append([j])
            loads.append(p)
            classes.append({u})
    return bins


def ffd_binary_search_schedule(inst: Instance) -> NonPreemptiveSchedule:
    """Smallest ``T`` for which FFD opens at most ``m`` bins.

    Note FFD bin counts are not monotone in ``T`` in general; we take the
    smallest accepted ``T`` on the search path (the folklore heuristic, not
    a guarantee).
    """
    inst = inst.normalized()
    inst.require_feasible()
    lo = max(inst.pmax, -(-inst.total_load // inst.machines))
    hi = int(trivial_upper_bound(inst))
    best: tuple[int, list[list[int]]] | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        bins = ffd_pack(inst, mid)
        if bins is not None and len(bins) <= inst.machines:
            best = (mid, bins)
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise InfeasibleScheduleError("FFD found no feasible packing")
    _, bins = best
    sched = NonPreemptiveSchedule(inst.num_jobs, inst.machines)
    for bi, jobs in enumerate(bins):
        for j in jobs:
            sched.assign(j, bi)
    return sched
