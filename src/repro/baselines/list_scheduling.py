"""Class-aware greedy baselines.

These are the natural heuristics a practitioner would reach for before the
paper's algorithms existed; the benchmark suite compares them against the
paper's algorithms (experiment B1 in DESIGN.md). Both respect the class
constraint, so the comparison is guarantee vs. no-guarantee, not feasible
vs. infeasible.

* :func:`greedy_list_schedule` — jobs in arrival order onto the least
  loaded machine that can legally take the job's class (opening a class
  slot if needed). No guarantee: a bad class-slot commitment early on can
  force terrible placements later.
* :func:`lpt_class_schedule` — same, but jobs sorted by LPT. Still no
  guarantee under scarce class slots.

Both can *fail* (dead-end: no machine can take the class). A provably
infeasible instance (``C > c * m``) raises the uniform
:class:`~repro.core.errors.InfeasibleInstanceError` up front; a dead-end
on a *feasible* instance — a bad class-slot commitment early on — raises
:class:`~repro.core.errors.InfeasibleScheduleError`. The engine maps
both onto report status ``infeasible`` (for a no-guarantee baseline that
status only ever means "this heuristic found no schedule"); callers who
need to know whether the *instance* is to blame check
``Instance.is_feasible()`` or catch the distinct exception types.
"""

from __future__ import annotations

from ..core.errors import InfeasibleScheduleError
from ..core.instance import Instance
from ..core.schedule import NonPreemptiveSchedule

__all__ = ["greedy_list_schedule", "lpt_class_schedule"]


def _place(inst: Instance, order: list[int]) -> NonPreemptiveSchedule:
    m = min(inst.machines, inst.num_jobs)
    c = inst.class_slots
    loads = [0] * m
    classes: list[set[int]] = [set() for _ in range(m)]
    sched = NonPreemptiveSchedule(inst.num_jobs, inst.machines)
    for j in order:
        u = inst.classes[j]
        # candidate machines: already hosting u, or with a free class slot
        best = None
        for i in range(m):
            if u in classes[i] or len(classes[i]) < c:
                if best is None or loads[i] < loads[best]:
                    best = i
        if best is None:
            raise InfeasibleScheduleError(
                "greedy dead-end: no machine can host the class", job=j)
        loads[best] += inst.processing_times[j]
        classes[best].add(u)
        sched.assign(j, best)
    return sched


def greedy_list_schedule(inst: Instance) -> NonPreemptiveSchedule:
    """Least-loaded feasible machine, jobs in input order."""
    inst = inst.normalized()
    inst.require_feasible()
    return _place(inst, list(range(inst.num_jobs)))


def lpt_class_schedule(inst: Instance) -> NonPreemptiveSchedule:
    """Least-loaded feasible machine, jobs in LPT order."""
    inst = inst.normalized()
    inst.require_feasible()
    order = sorted(range(inst.num_jobs),
                   key=lambda j: (-inst.processing_times[j], j))
    return _place(inst, order)
