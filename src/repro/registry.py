"""Declarative solver registry — the single dispatch point for every
surface (CLI, engine, benchmarks, analysis, examples).

Each algorithm registers once with its metadata: problem ``variant``
(splittable / preemptive / non-preemptive), its *proven* approximation
ratio (with the theorem it comes from), the keyword arguments it accepts,
and whether it pulls in the SciPy/HiGHS MILP backend. Consumers resolve
solvers by name::

    from repro.registry import get_solver, list_solvers

    spec = get_solver("nonpreemptive")
    raw = spec.solve(inst)              # -> RawSolve(schedule, guess, ...)
    for spec in list_solvers(variant="splittable"):
        print(spec.name, spec.ratio_label)

or by *capability* — what guarantee they need rather than which
implementation provides it::

    from repro.registry import select_solver

    spec = select_solver(variant="nonpreemptive",
                         max_ratio="7/3", allow_milp=False)

:func:`find_solvers` returns every match ranked best-guarantee-first;
:func:`select_solver` picks the winner or raises
:class:`NoMatchingSolverError`. The typed front door for this is
:class:`repro.api.SolverQuery`.

Adding a new algorithm is one ``register(...)`` call — the CLI ``list`` /
``batch`` / ``compare`` subcommands, the execution engine, and the README
algorithm table pick it up automatically.

Solver callables are wrapped lazily where they would drag in heavy
dependencies (the PTASes and exact MILPs import SciPy only when first
run), so ``import repro.registry`` stays light.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Iterable

from .core.bounds import nonpreemptive_lower_bound
from .core.errors import CCSError
from .core.instance import Instance

__all__ = [
    "RawSolve",
    "SolverSpec",
    "UnknownSolverError",
    "NoMatchingSolverError",
    "find_solvers",
    "get_solver",
    "list_solvers",
    "parse_ratio_bound",
    "register",
    "select_solver",
    "solver_names",
    "suggest_solvers",
]

VARIANTS = ("splittable", "preemptive", "nonpreemptive")
KINDS = ("approx", "ptas", "exact", "baseline")

#: Coarse wall-clock tiers (seconds on a small instance) used by the
#: capability query's ``time_budget`` filter. Deliberately pessimistic
#: for the MILP-backed kinds: a budget below a tier rules the kind out.
KIND_COST_TIERS = {"baseline": 0.01, "approx": 0.1, "ptas": 30.0,
                   "exact": 60.0}


class UnknownSolverError(CCSError, KeyError):
    """Raised when a solver name does not resolve in the registry."""


class NoMatchingSolverError(CCSError, LookupError):
    """Raised when no registered solver satisfies a capability query."""


@dataclass(frozen=True)
class RawSolve:
    """What a registered solver callable returns, before the execution
    engine normalises it into a :class:`~repro.engine.report.SolveReport`.

    ``schedule`` is ``None`` for value-only solvers (the exact MILPs),
    in which case ``makespan`` carries the optimum directly. ``guess`` is
    the solver's certified reference value ``T`` (a lower bound on OPT for
    the constant-factor algorithms), so ``makespan / guess`` is an
    *a posteriori* ratio certificate.
    """

    schedule: Any | None
    guess: Fraction | int | float | None
    makespan: Fraction | int | float | None = None
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class SolverSpec:
    """Registry entry: one algorithm plus its metadata."""

    name: str
    variant: str                      # which CCS variant it schedules
    kind: str                         # approx | ptas | exact | baseline
    ratio: Fraction | None            # proven ratio; None = no guarantee
    ratio_label: str                  # human form: "2", "7/3", "1+eps", "-"
    theorem: str                      # provenance in the paper ("" if none)
    summary: str
    run: Callable[..., RawSolve]
    accepts: tuple[str, ...] = ()     # accepted keyword arguments
    needs_milp: bool = False          # pulls in the SciPy/HiGHS backend
    #: Solves through the n-fold IP substrate (``repro.nfold``): a
    #: warm-started guess search building one block ILP per guess. The
    #: heavyweight path whose IP dimensions are machine-count-free —
    #: ``allow_nfold=False`` opts a query out of it wholesale, the same
    #: way ``allow_milp=False`` drops the SciPy/HiGHS-backed solvers.
    needs_nfold: bool = False
    #: Accuracy a PTAS runs at when the caller names neither ``epsilon``
    #: nor ``delta``: ``spec.solve(inst)`` just works, at the coarse/fast
    #: end of the accuracy spectrum. ``None`` for non-PTAS solvers.
    default_epsilon: Fraction | None = None
    #: Capability predicate: ``False`` means this solver cannot handle
    #: the (perfectly valid) instance — running it would raise
    #: :class:`~repro.core.errors.UnsupportedInstanceError`. ``None``
    #: means "supports everything". Kept lazy so probing it never drags
    #: in the MILP backend.
    supports_fn: Callable[[Instance], bool] | None = None

    def supports(self, inst: Instance) -> bool:
        """Whether this solver can run ``inst`` at all (capability, not
        feasibility — an infeasible instance is 'supported' and reported
        infeasible uniformly)."""
        return self.supports_fn is None or self.supports_fn(inst)

    def solve(self, inst: Instance, **kwargs: Any) -> RawSolve:
        """Run the solver, rejecting kwargs it does not accept.

        A PTAS called with neither ``epsilon`` nor ``delta`` runs at its
        registry-visible :attr:`default_epsilon` instead of raising.
        """
        unknown = sorted(set(kwargs) - set(self.accepts))
        if unknown:
            raise TypeError(
                f"solver {self.name!r} does not accept {unknown}; "
                f"accepted kwargs: {sorted(self.accepts) or 'none'}")
        if self.default_epsilon is not None and "epsilon" in self.accepts \
                and "epsilon" not in kwargs and "delta" not in kwargs:
            kwargs = dict(kwargs, epsilon=self.default_epsilon)
        return self.run(inst, **kwargs)


_REGISTRY: dict[str, SolverSpec] = {}
_ALIASES: dict[str, str] = {}


def register(spec: SolverSpec, aliases: Iterable[str] = ()) -> SolverSpec:
    """Add a solver to the registry (idempotent per unique name)."""
    if spec.variant not in VARIANTS:
        raise ValueError(f"unknown variant {spec.variant!r}")
    if spec.kind not in KINDS:
        raise ValueError(f"unknown kind {spec.kind!r}")
    if spec.name in _REGISTRY or spec.name in _ALIASES:
        raise ValueError(f"solver {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    for alias in aliases:
        if alias in _REGISTRY or alias in _ALIASES:
            raise ValueError(f"alias {alias!r} already registered")
        _ALIASES[alias] = spec.name
    return spec


def suggest_solvers(name: str, n: int = 3) -> list[str]:
    """Registered names (and aliases) close to a misspelled ``name``."""
    return difflib.get_close_matches(
        name, solver_names(include_aliases=True), n=n, cutoff=0.5)


def get_solver(name: str) -> SolverSpec:
    """Resolve ``name`` (or a registered alias) to its :class:`SolverSpec`."""
    key = _ALIASES.get(name, name)
    try:
        return _REGISTRY[key]
    except KeyError:
        close = suggest_solvers(name)
        hint = f"; did you mean {', '.join(close)}?" if close else ""
        raise UnknownSolverError(
            f"unknown solver {name!r}{hint} (registered: "
            f"{', '.join(solver_names())})") from None


def list_solvers(variant: str | None = None,
                 kind: str | None = None) -> list[SolverSpec]:
    """All registered solvers, optionally filtered, in registration order."""
    specs = list(_REGISTRY.values())
    if variant is not None:
        specs = [s for s in specs if s.variant == variant]
    if kind is not None:
        specs = [s for s in specs if s.kind == kind]
    return specs


def solver_names(include_aliases: bool = False) -> list[str]:
    names = list(_REGISTRY)
    if include_aliases:
        names += list(_ALIASES)
    return names


# --------------------------------------------------------------------- #
# capability queries
# --------------------------------------------------------------------- #

def parse_ratio_bound(bound: Fraction | str | int | float) -> Fraction:
    """The one parser for ratio bounds everywhere (registry queries,
    :class:`repro.api.SolverQuery`, the HTTP wire): a number, a decimal
    string, or exact ``"num/den"``; must be positive."""
    try:
        if isinstance(bound, str):
            num, _, den = bound.partition("/")
            ratio = (Fraction(int(num), int(den)) if den
                     else Fraction(num))
        else:
            ratio = Fraction(bound)
    except (ValueError, TypeError, ZeroDivisionError):
        raise ValueError(f"invalid ratio bound {bound!r}; expected a "
                         "number or 'num/den'")
    if ratio <= 0:
        raise ValueError(f"ratio bound must be > 0, got {bound!r}")
    return ratio


def effective_ratio(spec: SolverSpec,
                    epsilon: float | None = None) -> Fraction | None:
    """The guarantee ``spec`` can certify for a capability query.

    Exact solvers are 1. A PTAS has no fixed ratio — it becomes
    ``1 + epsilon`` once the query names an accuracy, and no guarantee
    at all otherwise. Constant-factor algorithms carry their theorem
    ratio; baselines carry ``None``.
    """
    if spec.kind == "exact":
        return Fraction(1)
    if spec.kind == "ptas":
        return None if epsilon is None else 1 + Fraction(epsilon)
    return spec.ratio


def find_solvers(*, variant: str | None = None, kind: str | None = None,
                 max_ratio: Fraction | str | int | float | None = None,
                 epsilon: float | None = None, allow_milp: bool = True,
                 allow_nfold: bool = True,
                 time_budget: float | None = None,
                 instance: Instance | None = None) -> list[SolverSpec]:
    """Every registered solver satisfying the capability constraints,
    ranked best first.

    Filters: ``variant``/``kind`` match the metadata exactly;
    ``max_ratio`` keeps solvers whose :func:`effective_ratio` is proven
    and ``<=`` the bound; ``epsilon`` asks for accuracy ``1 + epsilon``
    (PTASes qualify and will be run with that epsilon, exact solvers
    always qualify, constant-factor ones only when their ratio fits);
    ``allow_milp=False`` drops anything needing the SciPy/HiGHS backend;
    ``allow_nfold=False`` drops the n-fold-IP-backed solvers the same
    way; ``time_budget`` (seconds per run) excludes kinds whose
    :data:`KIND_COST_TIERS` tier exceeds it; ``instance`` drops solvers
    whose :meth:`SolverSpec.supports` predicate rejects that concrete
    instance (McNaughton on class-constrained inputs, MILPs past their
    machine cap), so capability selection skips them instead of handing
    back a solver that would immediately report ``unsupported``.

    Ranking: strongest proven guarantee first (unproven last), ties
    broken by lighter dependencies (no MILP / n-fold machinery first)
    and then registration order — so the result is deterministic.
    """
    if variant is not None and variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    if kind is not None and kind not in KINDS:
        raise ValueError(f"unknown kind {kind!r}")
    bound = parse_ratio_bound(max_ratio) if max_ratio is not None else None
    if epsilon is not None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        eps_bound = 1 + Fraction(epsilon)
        bound = eps_bound if bound is None else min(bound, eps_bound)

    out = []
    for order, spec in enumerate(_REGISTRY.values()):
        if variant is not None and spec.variant != variant:
            continue
        if kind is not None and spec.kind != kind:
            continue
        if not allow_milp and spec.needs_milp:
            continue
        if not allow_nfold and spec.needs_nfold:
            continue
        if time_budget is not None \
                and KIND_COST_TIERS[spec.kind] > time_budget:
            continue
        if instance is not None and not spec.supports(instance):
            continue
        ratio = effective_ratio(spec, epsilon)
        if bound is not None and (ratio is None or ratio > bound):
            continue
        rank = (0 if ratio is not None else 1,
                ratio if ratio is not None else Fraction(0),
                1 if (spec.needs_milp or spec.needs_nfold) else 0, order)
        out.append((rank, spec))
    out.sort(key=lambda pair: pair[0])
    return [spec for _, spec in out]


def select_solver(**criteria: Any) -> SolverSpec:
    """The best solver for a capability query (see :func:`find_solvers`),
    or :class:`NoMatchingSolverError` when nothing qualifies."""
    found = find_solvers(**criteria)
    if not found:
        described = ", ".join(f"{k}={v!r}" for k, v in criteria.items()
                              if v is not None)
        raise NoMatchingSolverError(
            f"no registered solver matches {described or 'the query'}; "
            f"see `repro list` for the registry")
    return found[0]


# --------------------------------------------------------------------- #
# adapters: normalise every solver family onto RawSolve
# --------------------------------------------------------------------- #

def _run_splittable(inst: Instance) -> RawSolve:
    from .approx.splittable import solve_splittable
    res = solve_splittable(inst)
    return RawSolve(res.schedule, res.guess)


def _run_preemptive(inst: Instance) -> RawSolve:
    from .approx.preemptive import solve_preemptive
    res = solve_preemptive(inst)
    return RawSolve(res.schedule, res.guess,
                    extra={"optimal": res.optimal})


def _run_nonpreemptive(inst: Instance) -> RawSolve:
    from .approx.nonpreemptive import solve_nonpreemptive
    res = solve_nonpreemptive(inst)
    return RawSolve(res.schedule, res.guess)


def _ptas_adapter(impl_name: str) -> Callable[..., RawSolve]:
    def run(inst: Instance, **kwargs: Any) -> RawSolve:
        import importlib
        module = importlib.import_module(
            f".ptas.{impl_name.split('_', 1)[1]}", __package__)
        res = getattr(module, impl_name)(inst, **kwargs)
        return RawSolve(res.schedule, res.guess,
                        extra={"epsilon": str(res.epsilon),
                               "delta": str(res.delta),
                               "guesses_tried": res.guesses_tried})
    return run


def _run_lpt(inst: Instance) -> RawSolve:
    from .baselines.list_scheduling import lpt_class_schedule
    return RawSolve(lpt_class_schedule(inst), nonpreemptive_lower_bound(inst))


def _run_greedy(inst: Instance) -> RawSolve:
    from .baselines.list_scheduling import greedy_list_schedule
    return RawSolve(greedy_list_schedule(inst),
                    nonpreemptive_lower_bound(inst))


def _run_ffd(inst: Instance) -> RawSolve:
    from .baselines.bin_packing import ffd_binary_search_schedule
    return RawSolve(ffd_binary_search_schedule(inst),
                    nonpreemptive_lower_bound(inst))


def _run_round_robin(inst: Instance) -> RawSolve:
    """Whole-class round robin: classes in non-ascending load order,
    cyclically over the machines. The natural zero-thought baseline; it
    ignores the slot budget, so on slot-scarce instances validation fails
    and the engine reports the run as infeasible."""
    from .approx.round_robin import round_robin_assignment
    from .core.schedule import NonPreemptiveSchedule
    norm = inst.normalized()
    rows = round_robin_assignment(norm.class_loads(), norm.machines)
    sched = NonPreemptiveSchedule(norm.num_jobs, norm.machines)
    for i, classes_on_i in enumerate(rows):
        for u in classes_on_i:
            for j in norm.jobs_of_class(u):
                sched.assign(j, i)
    return RawSolve(sched, nonpreemptive_lower_bound(norm))


def _run_mcnaughton(inst: Instance) -> RawSolve:
    from .baselines.mcnaughton import mcnaughton_makespan, mcnaughton_schedule
    return RawSolve(mcnaughton_schedule(inst), mcnaughton_makespan(inst))


def _milp_adapter(fn_name: str) -> Callable[[Instance], RawSolve]:
    def run(inst: Instance) -> RawSolve:
        from . import exact
        value = getattr(exact, fn_name)(inst)
        return RawSolve(None, value, makespan=value)
    return run


def _run_brute_force(inst: Instance) -> RawSolve:
    from .exact.brute_force import opt_nonpreemptive_bruteforce
    value, sched = opt_nonpreemptive_bruteforce(inst, return_schedule=True)
    return RawSolve(sched, value)


def _nfold_adapter(fn_name: str) -> Callable[..., RawSolve]:
    """Lazy bridge into :mod:`repro.nfold.registry_solvers`.

    The n-fold substrate package must not import the registry (it sits a
    layer below), so the registry reaches the run functions by module
    path at call time, mirroring :func:`_milp_adapter`.
    """
    def run(inst: Instance, **kwargs: object) -> RawSolve:
        from .nfold import registry_solvers
        return getattr(registry_solvers, fn_name)(inst, **kwargs)
    return run


# --------------------------------------------------------------------- #
# capability predicates (lazy: probing them must not import SciPy)
# --------------------------------------------------------------------- #

#: The coarse/fast accuracy a PTAS runs at when the caller names neither
#: epsilon nor delta: 7/2 derives the minimal grid q = 2 through
#: :func:`repro.ptas.common.delta_for_epsilon` — the same accuracy the
#: CLI's ``--delta 2`` default has always used.
DEFAULT_PTAS_EPSILON = Fraction(7, 2)


#: Mirror of :data:`repro.exact.milp._MAX_MACHINES`, duplicated here so
#: probing ``supports()`` never imports SciPy (a test asserts the two
#: stay equal).
_MILP_MACHINE_CAP = 64


def _milp_supports(inst: Instance) -> bool:
    # within the machine cap after the more-machines-than-jobs clamp
    # (sound for the regimes where jobs cannot self-parallelise)
    return min(inst.machines, max(inst.num_jobs, 1)) <= _MILP_MACHINE_CAP


def _milp_splittable_supports(inst: Instance) -> bool:
    # the clamp is unsound for splittable scheduling (the optimum keeps
    # improving with m), so the splittable MILP supports only literal
    # machine counts within its cap
    return inst.machines <= _MILP_MACHINE_CAP


#: Mirrors of ``repro.ptas.<module>.DEFAULT_MACHINE_CAP``, duplicated
#: for the same SciPy-free-probing reason as :data:`_MILP_MACHINE_CAP`
#: (the same test pins them to the modules' values).
_PTAS_MACHINE_CAPS = {"splittable": 20_000, "preemptive": 12,
                      "nonpreemptive": 20_000}


def _ptas_machine_cap_supports(module: str) -> Callable[[Instance], bool]:
    """True iff the machine count fits the module's explicit-PTAS cap
    (the preemptive PTAS additionally short-circuits ``m >= n``, where it
    never builds the configuration MILP)."""
    cap = _PTAS_MACHINE_CAPS[module]

    def check(inst: Instance) -> bool:
        if module == "preemptive" and inst.machines >= inst.num_jobs:
            return True
        return inst.machines <= cap
    return check


def _mcnaughton_supports(inst: Instance) -> bool:
    from .baselines.mcnaughton import mcnaughton_supported
    return mcnaughton_supported(inst)


#: Caps for the ``nfold-*`` solvers. Their IP dimensions depend only on
#: the class structure — ``m`` enters the program as a single right-hand
#: side — so the machine cap is only the int64 safety bound of the
#: builders, while classes and slots bound the block sizes that the
#: config enumeration is exponential in.
_NFOLD_CLASS_CAP = 12
_NFOLD_SLOT_CAP = 3
_NFOLD_MACHINE_CAP = 10**15


def _nfold_supports(variant: str) -> Callable[[Instance], bool]:
    """Capability predicate for the n-fold solvers.

    The preemptive one short-circuits ``m >= n`` (closed form, no IP
    ever built). Everything else needs the HiGHS backend for the
    per-guess block ILPs plus small class structure: these solvers are
    the path that stays live when ``m`` blows past every MILP/PTAS
    machine cap, so the machine bound here is only int64 safety.
    """
    def check(inst: Instance) -> bool:
        if variant == "preemptive" and inst.machines >= inst.num_jobs:
            return True
        if inst.num_classes > _NFOLD_CLASS_CAP:
            return False
        if inst.class_slots > _NFOLD_SLOT_CAP:
            return False
        if inst.machines > _NFOLD_MACHINE_CAP:
            return False
        from .nfold.milp_backend import milp_available
        return milp_available()
    return check


# --------------------------------------------------------------------- #
# registrations
# --------------------------------------------------------------------- #

register(SolverSpec(
    name="splittable", variant="splittable", kind="approx",
    ratio=Fraction(2), ratio_label="2", theorem="Theorem 4",
    summary="Advanced border search + class splitting + round robin",
    run=_run_splittable))

register(SolverSpec(
    name="preemptive", variant="preemptive", kind="approx",
    ratio=Fraction(2), ratio_label="2", theorem="Theorem 5",
    summary="Splittable layout legalised into a preemptive timetable",
    run=_run_preemptive))

register(SolverSpec(
    name="nonpreemptive", variant="nonpreemptive", kind="approx",
    ratio=Fraction(7, 3), ratio_label="7/3", theorem="Theorem 6",
    summary="Slot-counting binary search + per-class LPT groups",
    run=_run_nonpreemptive))

register(SolverSpec(
    name="ptas-splittable", variant="splittable", kind="ptas",
    ratio=None, ratio_label="1+eps", theorem="Theorems 10/11",
    summary="Configuration MILP over rounded class modules",
    run=_ptas_adapter("ptas_splittable"),
    accepts=("epsilon", "delta", "theorem11"), needs_milp=True,
    default_epsilon=DEFAULT_PTAS_EPSILON,
    supports_fn=_ptas_machine_cap_supports("splittable")))

register(SolverSpec(
    name="ptas-preemptive", variant="preemptive", kind="ptas",
    ratio=None, ratio_label="1+eps", theorem="Theorem 19",
    summary="Configuration MILP + wrap-around legalisation",
    run=_ptas_adapter("ptas_preemptive"),
    accepts=("epsilon", "delta"), needs_milp=True,
    default_epsilon=DEFAULT_PTAS_EPSILON,
    supports_fn=_ptas_machine_cap_supports("preemptive")))

register(SolverSpec(
    name="ptas-nonpreemptive", variant="nonpreemptive", kind="ptas",
    ratio=None, ratio_label="1+eps", theorem="Theorem 14",
    summary="Rounded job sizes + configuration MILP",
    run=_ptas_adapter("ptas_nonpreemptive"),
    accepts=("epsilon", "delta"), needs_milp=True,
    default_epsilon=DEFAULT_PTAS_EPSILON,
    supports_fn=_ptas_machine_cap_supports("nonpreemptive")))

register(SolverSpec(
    name="milp-nonpreemptive", variant="nonpreemptive", kind="exact",
    ratio=Fraction(1), ratio_label="1 (exact)", theorem="",
    summary="Assignment MILP (ground truth for small instances)",
    run=_milp_adapter("opt_nonpreemptive"), needs_milp=True,
    supports_fn=_milp_supports),
    aliases=("milp",))

register(SolverSpec(
    name="milp-splittable", variant="splittable", kind="exact",
    ratio=Fraction(1), ratio_label="1 (exact)", theorem="",
    summary="Per-class fluid MILP (ground truth for small instances)",
    run=_milp_adapter("opt_splittable"), needs_milp=True,
    supports_fn=_milp_splittable_supports))

register(SolverSpec(
    name="milp-preemptive", variant="preemptive", kind="exact",
    ratio=Fraction(1), ratio_label="1 (exact)", theorem="",
    summary="Per-job fluid MILP (ground truth for small instances)",
    run=_milp_adapter("opt_preemptive"), needs_milp=True,
    supports_fn=_milp_supports))

register(SolverSpec(
    name="brute-force", variant="nonpreemptive", kind="exact",
    ratio=Fraction(1), ratio_label="1 (exact)", theorem="",
    summary="Branch-and-bound DFS for micro instances (n <= ~10)",
    run=_run_brute_force))

register(SolverSpec(
    name="lpt", variant="nonpreemptive", kind="baseline",
    ratio=None, ratio_label="-", theorem="",
    summary="Class-aware LPT list scheduling (no guarantee)",
    run=_run_lpt))

register(SolverSpec(
    name="greedy", variant="nonpreemptive", kind="baseline",
    ratio=None, ratio_label="-", theorem="",
    summary="Least-loaded feasible machine, jobs in input order",
    run=_run_greedy))

register(SolverSpec(
    name="ffd", variant="nonpreemptive", kind="baseline",
    ratio=None, ratio_label="-", theorem="",
    summary="First-fit-decreasing bin packing + binary search on T",
    run=_run_ffd))

register(SolverSpec(
    name="round-robin", variant="nonpreemptive", kind="baseline",
    ratio=None, ratio_label="-", theorem="",
    summary="Whole-class round robin (may violate slot budget)",
    run=_run_round_robin))

register(SolverSpec(
    name="mcnaughton", variant="preemptive", kind="baseline",
    ratio=None, ratio_label="1 (if c >= C)", theorem="",
    summary="Wrap-around rule; optimal when classes never bind",
    run=_run_mcnaughton, supports_fn=_mcnaughton_supports))

register(SolverSpec(
    name="nfold-splittable", variant="splittable", kind="ptas",
    ratio=None, ratio_label="1+eps", theorem="Theorem 1 / Section 4.1",
    summary="Warm-started guess search over n-fold config ILPs",
    run=_nfold_adapter("run_nfold_splittable"),
    accepts=("epsilon", "delta"), needs_nfold=True,
    default_epsilon=DEFAULT_PTAS_EPSILON,
    supports_fn=_nfold_supports("splittable")))

register(SolverSpec(
    name="nfold-preemptive", variant="preemptive", kind="ptas",
    ratio=None, ratio_label="1+eps", theorem="Theorem 1 / Section 4.1",
    summary="N-fold splittable relaxation + wrap-around legalisation",
    run=_nfold_adapter("run_nfold_preemptive"),
    accepts=("epsilon", "delta"), needs_nfold=True,
    default_epsilon=DEFAULT_PTAS_EPSILON,
    supports_fn=_nfold_supports("preemptive")))

register(SolverSpec(
    name="nfold-nonpreemptive", variant="nonpreemptive", kind="ptas",
    ratio=None, ratio_label="1+eps", theorem="Theorem 1 / Section 4.2",
    summary="Integral guess search over n-fold slot/config ILPs",
    run=_nfold_adapter("run_nfold_nonpreemptive"),
    accepts=("epsilon", "delta"), needs_nfold=True,
    default_epsilon=DEFAULT_PTAS_EPSILON,
    supports_fn=_nfold_supports("nonpreemptive")))
