"""Worker nodes: the transport-agnostic execution layer.

A :class:`WorkerNode` owns N drainer threads that poll *any*
:class:`~repro.service.storage.StoreBackend` via ``claim_next`` — the
store's atomic conditional claim is the only coordination, so any
number of nodes (threads in the server process, or whole separate
``repro worker`` processes) can drain one store with no job ever
executed twice. Each claimed job runs its instance x algorithms grid
through a :class:`repro.api.Session` (the same facade every other
consumer uses) with the store's sharded result cache plugged in, and
persists the resulting reports.

Crash safety. A supervisor thread heartbeats the lease of every
in-flight job, reclaims jobs whose lease expired anywhere in the fleet
(their worker died or hung — the store requeues them with exponential
backoff + full jitter, or quarantines them once ``max_attempts`` is
spent), and respawns drainer threads that died (e.g. to an injected
``drainer_loop`` fault). Retryable job failures (broken pools, injected
faults, I/O errors) are requeued with the same backoff; non-retryable
ones (bad input) fail terminally on the first attempt. Nodes never call
``recover_incomplete`` — recovery is a *server boot* operation; a node
joining a live fleet must not clobber its peers' leases.

Drainers are plain threads, not the main thread, so the engine's
``SIGALRM`` timeout cannot arm for inline solves; per-run timeouts here
rely on :mod:`repro.engine.runner`'s watchdog-thread fallback (or, with
``engine_workers > 1``, on ``SIGALRM`` inside the pool workers, which do
run solver code on their main thread).

:func:`run_worker` is the ``repro worker --store URL`` foreground entry:
a standalone process holding nothing but a store connection and its
drainers, SIGTERM/SIGINT releasing its leases on the way out.
"""

from __future__ import annotations

import itertools
import os
import random
import sqlite3
import threading
import time
from concurrent.futures.process import BrokenProcessPool

from ..api import BatchRequest, Session
from ..faults import injection
from ..faults.injection import FaultInjected
from ..obs.log import get_logger
from ..obs.metrics import REGISTRY
from ..obs.trace import trace_context
from .store import JobRecord

__all__ = ["WorkerNode", "run_worker", "retryable"]

_log = get_logger("repro.service.worker")

QUEUE_DEPTH = REGISTRY.gauge(
    "repro_queue_depth", "Jobs waiting in the queue (in-flight excluded).")
JOBS_ACTIVE = REGISTRY.gauge(
    "repro_jobs_active", "Jobs currently being solved by a drainer.")
JOBS_COMPLETED = REGISTRY.counter(
    "repro_jobs_completed_total", "Jobs finished, by terminal status.",
    labelnames=("status",))
_DRAIN_SECONDS = REGISTRY.histogram(
    "repro_job_drain_seconds",
    "Wall time from claim to persisted result, per job.")
JOB_RETRIES = REGISTRY.counter(
    "repro_job_retries_total",
    "Jobs requeued for another attempt, by reason "
    "(error = drainer caught a retryable failure; "
    "reclaim = lease expired and the supervisor took the job back).",
    labelnames=("reason",))
LEASE_RECLAIMS = REGISTRY.counter(
    "repro_lease_reclaims_total",
    "Expired job leases reclaimed by the supervisor.")
_DRAINER_RESTARTS = REGISTRY.counter(
    "repro_drainer_restarts_total",
    "Drainer threads respawned by the supervisor after dying mid-job.")
WORKER_CLAIMS = REGISTRY.counter(
    "repro_worker_claims_total",
    "Jobs claimed by this process's worker nodes, by node name.",
    labelnames=("worker",))

_NODE_IDS = itertools.count()


def retryable(exc: BaseException) -> bool:
    """Whether a job failure is worth another attempt. Infrastructure
    trouble (dead pools, injected faults, I/O hiccups) is; malformed
    input (``ValueError`` and friends from the solvers) is not."""
    if isinstance(exc, (BrokenProcessPool, FaultInjected, OSError,
                        ConnectionError, MemoryError,
                        sqlite3.OperationalError)):
        return True
    if isinstance(exc, RuntimeError):
        msg = str(exc).lower()
        return "shutdown" in msg or "broken" in msg
    return False


class WorkerNode:
    """N drainer threads + a supervisor, polling one store backend.

    Parameters
    ----------
    store:
        Any :class:`~repro.service.storage.StoreBackend`. The node holds
        no state the store does not; several nodes — across processes —
        may share one store.
    workers:
        Drainer threads claiming and solving jobs (0 = supervision-only:
        the node still heartbeats/reclaims, useful for an accept-only
        server fronting external workers).
    engine_workers:
        Process fan-out per job. The default 0 solves inline on the
        drainer thread — one process, ``workers`` concurrent solves;
        raise it to fan each job out over processes.
    name:
        This node's identity for ``claimed_by`` stamps and per-worker
        claim counters; unique-per-process default.
    default_timeout:
        Per-run timeout (seconds) for jobs that carry none.
    lease_seconds:
        Length of the store lease a drainer holds (and keeps
        heartbeating) while running a job. ``None`` disables leases and
        supervision — the legacy die-and-recover-on-restart behaviour.
    reclaim_interval:
        Supervisor tick (heartbeats, reclaims, drainer respawn).
        Default: a third of the lease, capped at 1s.
    retry_backoff_base / retry_backoff_cap:
        Exponential-backoff envelope for retries: attempt ``k`` waits
        ``uniform(0, min(cap, base * 2**(k-1)))`` seconds (full jitter).
    poll_interval:
        How long an idle drainer sleeps between ``claim_next`` polls
        (local submitters cut it short via :meth:`notify`).
    """

    def __init__(self, store, *, workers: int = 2, engine_workers: int = 0,
                 name: str | None = None,
                 default_timeout: float | None = None,
                 lease_seconds: float | None = 30.0,
                 reclaim_interval: float | None = None,
                 retry_backoff_base: float = 0.2,
                 retry_backoff_cap: float = 30.0,
                 poll_interval: float = 0.25) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if lease_seconds is not None and lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be > 0 or None, got {lease_seconds}")
        self.store = store
        self.workers = workers
        self.engine_workers = engine_workers
        self.name = name or f"node-{os.getpid()}-{next(_NODE_IDS)}"
        self.default_timeout = default_timeout
        self.lease_seconds = lease_seconds
        if reclaim_interval is None and lease_seconds is not None:
            reclaim_interval = min(1.0, lease_seconds / 3.0)
        self.reclaim_interval = reclaim_interval
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        self.poll_interval = poll_interval
        self.cache = store.cache
        self._session = Session(workers=engine_workers, cache=self.cache)
        self._cv = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._supervisor: threading.Thread | None = None
        self._inflight: set[str] = set()
        self._active = 0
        self._stopping = False
        self._names = itertools.count()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "WorkerNode":
        """Spawn the drainers and (when leases are on) the supervisor."""
        if self.engine_workers > 1 and self.workers > 0:
            # pre-warm the shared engine pool to the *aggregate* demand:
            # each drainer's batch caps its own fan-out at engine_workers,
            # so concurrent jobs need workers x engine_workers width to
            # run at full parallelism
            from ..engine.pool import get_pool
            get_pool(self.workers * self.engine_workers)
        with self._cv:
            self._stopping = False
        for _ in range(self.workers):
            self._spawn_drainer()
        if self.lease_seconds is not None:
            # supervision runs even with zero drainers: an accept-only
            # server must still reclaim leases its external workers drop
            self._supervisor = threading.Thread(
                target=self._supervise_loop, daemon=True,
                name=f"repro-supervisor-{self.name}")
            self._supervisor.start()
        return self

    def _spawn_drainer(self) -> threading.Thread:
        t = threading.Thread(
            target=self._drain_loop, daemon=True,
            name=f"repro-drainer-{self.name}-{next(self._names)}")
        t.start()
        self._threads.append(t)
        return t

    def stop(self, wait: bool = True, *, grace: float | None = None) -> int:
        """Stop claiming; drainers exit after their current job.

        With ``grace`` set, waits at most that many seconds for in-flight
        jobs, then releases the leases of whatever is still running so
        another node (or the next start) can pick the work up without
        burning a retry attempt. Returns the number of leases released."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        deadline = (time.monotonic() + grace) if grace is not None else None
        if wait:
            for t in self._threads:
                if deadline is None:
                    t.join()
                else:
                    t.join(max(0.0, deadline - time.monotonic()))
        if self._supervisor is not None:
            self._supervisor.join(1.0 if grace is not None else None)
            self._supervisor = None
        released = 0
        with self._cv:
            leftover = list(self._inflight)
        for job_id in leftover:
            if self.store.release_lease(job_id):
                released += 1
                _log.warning("lease_released", job_id=job_id)
        self._threads.clear()
        return released

    def notify(self) -> None:
        """Wake idle drainers now — a local submitter's shortcut past the
        poll interval."""
        with self._cv:
            self._cv.notify_all()

    def active(self) -> int:
        """Jobs this node is solving right now."""
        with self._cv:
            return self._active

    def join(self, timeout: float | None = None) -> bool:
        """Block until the store holds no claimable work and this node is
        idle. Other nodes' in-flight jobs are invisible here — fleet
        callers should poll the store's counts instead."""
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        while True:
            with self._cv:
                idle = self._active == 0
            if idle and self.store.count_jobs("queued") == 0:
                return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)

    # ------------------------------------------------------------------ #
    # draining
    # ------------------------------------------------------------------ #

    def _backoff(self, attempts: int) -> float:
        """Full-jitter exponential backoff for retry attempt ``attempts``."""
        ceiling = min(self.retry_backoff_cap,
                      self.retry_backoff_base * 2 ** max(0, attempts - 1))
        return random.uniform(0.0, ceiling)

    def _drain_loop(self) -> None:
        while True:
            with self._cv:
                if self._stopping:
                    return
            job = self.store.claim_next(self.lease_seconds,
                                        worker=self.name)
            if job is None:
                with self._cv:
                    if self._stopping:
                        return
                    self._cv.wait(self.poll_interval)
                continue
            WORKER_CLAIMS.inc(worker=self.name)
            QUEUE_DEPTH.set(self.store.count_jobs("queued"))
            # a drainer_loop fault fires *after* the claim and *before*
            # in-flight tracking: the thread dies holding a live lease,
            # and only supervision (lease reclaim + drainer respawn)
            # saves the job
            injection.maybe_raise("drainer_loop")
            with self._cv:
                self._inflight.add(job.id)
                self._active += 1
                JOBS_ACTIVE.set(self._active)
            try:
                self._execute_claimed(job)
            finally:
                with self._cv:
                    self._inflight.discard(job.id)
                    self._active -= 1
                    JOBS_ACTIVE.set(self._active)
                    self._cv.notify_all()

    def _execute_claimed(self, job: JobRecord) -> None:
        # re-enter the job's submission trace on this drainer thread
        # (contextvars do not cross threads); jobs from a pre-trace
        # database get a fresh ID so their reports are still correlated
        with trace_context(job.trace_id):
            t0 = time.monotonic()
            _log.info("job_started", job_id=job.id, label=job.label,
                      worker=self.name, attempt=job.attempts,
                      algorithms=len(job.algorithms))
            timeout = job.timeout if job.timeout is not None \
                else self.default_timeout
            try:
                reports = self._session.solve_batch(BatchRequest.create(
                    [(job.label or job.id, job.instance)],
                    list(job.algorithms), timeout=timeout))
                finished = self.store.finish_job(job.id, reports)
            except Exception as exc:    # noqa: BLE001 — job fails, node lives
                self._job_failed(job, exc, time.monotonic() - t0)
                return
            elapsed = time.monotonic() - t0
            if not finished:
                # our lease was reclaimed mid-run and a retry superseded
                # us; the store refused the stale write
                _log.warning("job_finish_stale", job_id=job.id,
                             wall_time_s=round(elapsed, 6))
                return
            JOBS_COMPLETED.inc(status="done")
            _DRAIN_SECONDS.observe(elapsed)
            _log.info("job_finished", job_id=job.id, status="done",
                      error="", wall_time_s=round(elapsed, 6))

    def _job_failed(self, job: JobRecord, exc: Exception,
                    elapsed: float) -> None:
        """Route a failed attempt: requeue with backoff, quarantine, or
        fail terminally. Runs on the drainer thread, inside the job's
        trace context."""
        error = f"{type(exc).__name__}: {exc}"
        attempts = job.attempts     # fetched post-claim: already counted
        if retryable(exc) and self.lease_seconds is not None:
            if attempts < job.max_attempts:
                delay = self._backoff(attempts)
                if self.store.requeue_job(job.id, error=error, delay=delay):
                    JOB_RETRIES.inc(reason="error")
                    _log.warning("job_retrying", job_id=job.id, error=error,
                                 attempt=attempts,
                                 max_attempts=job.max_attempts,
                                 delay_s=round(delay, 3))
                return
            if self.store.quarantine_job(
                    job.id, f"{error} (attempt {attempts}/"
                    f"{job.max_attempts}, no attempts left)"):
                JOBS_COMPLETED.inc(status="quarantined")
                _DRAIN_SECONDS.observe(elapsed)
                _log.error("job_quarantined", job_id=job.id, error=error,
                           attempt=attempts, wall_time_s=round(elapsed, 6))
            return
        try:
            finished = self.store.finish_job(job.id, [], error=error)
        except Exception as exc2:   # noqa: BLE001 — e.g. store_commit fault
            # the failure record itself failed to commit; leave the row
            # running — lease reclaim will retry or quarantine it
            _log.warning("job_fail_commit_failed", job_id=job.id,
                         error=f"{type(exc2).__name__}: {exc2}")
            return
        if finished:
            JOBS_COMPLETED.inc(status="failed")
            _DRAIN_SECONDS.observe(elapsed)
            _log.warning("job_finished", job_id=job.id, status="failed",
                         error=error, wall_time_s=round(elapsed, 6))

    # ------------------------------------------------------------------ #
    # supervision
    # ------------------------------------------------------------------ #

    def _supervise_loop(self) -> None:
        interval = self.reclaim_interval or 1.0
        while True:
            with self._cv:
                if self._cv.wait_for(lambda: self._stopping,
                                     timeout=interval):
                    return
            try:
                self._tick()
            except Exception as exc:    # noqa: BLE001 — supervisor survives
                _log.error("supervisor_error",
                           error=f"{type(exc).__name__}: {exc}")

    def _tick(self) -> None:
        """One supervisor pass: heartbeat, reclaim, gauge, respawn."""
        with self._cv:
            inflight = list(self._inflight)
        for job_id in inflight:
            self.store.heartbeat(job_id, self.lease_seconds)

        requeued, quarantined = self.store.reclaim_expired(self._backoff)
        for rec in requeued:
            LEASE_RECLAIMS.inc()
            JOB_RETRIES.inc(reason="reclaim")
            _log.warning("lease_reclaimed", job_id=rec.id,
                         trace_id=rec.trace_id, attempt=rec.attempts,
                         max_attempts=rec.max_attempts,
                         claimed_by=rec.claimed_by)
            self.notify()       # the requeued job may be due immediately
        for rec in quarantined:
            LEASE_RECLAIMS.inc()
            JOBS_COMPLETED.inc(status="quarantined")
            _log.error("job_quarantined", job_id=rec.id,
                       trace_id=rec.trace_id, error=rec.error,
                       attempt=rec.attempts)

        QUEUE_DEPTH.set(self.store.count_jobs("queued"))

        for i, t in enumerate(self._threads):
            if not t.is_alive() and not self._stopping:
                _DRAINER_RESTARTS.inc()
                _log.warning("drainer_restarted", died=t.name)
                self._threads[i] = threading.Thread(
                    target=self._drain_loop, daemon=True,
                    name=f"repro-drainer-{self.name}-{next(self._names)}")
                self._threads[i].start()


def run_worker(store_url: str, *, workers: int = 2, engine_workers: int = 0,
               name: str | None = None, lease_seconds: float | None = 30.0,
               default_timeout: float | None = None,
               poll_interval: float = 0.25, drain_grace: float = 10.0,
               quiet: bool = False, log_level: str | None = None) -> None:
    """Run a standalone worker node in the foreground (``repro worker``).

    Opens ``store_url``, drains it until SIGTERM/SIGINT, then stops
    gracefully: in-flight jobs get up to ``drain_grace`` seconds, leases
    that cannot finish are released back to the store untouched, and the
    process exits 0. Several such processes against one SQLite store —
    plus, typically, a ``repro serve --no-embedded-workers`` front door —
    form the fleet topology."""
    import signal as _signal

    from ..engine.pool import shutdown_pool
    from ..obs.log import set_level
    from .storage import open_store

    set_level(log_level or ("warning" if quiet else "info"))
    store = open_store(store_url)
    node = WorkerNode(store, workers=workers, engine_workers=engine_workers,
                      name=name, lease_seconds=lease_seconds,
                      default_timeout=default_timeout,
                      poll_interval=poll_interval)
    node.start()
    print(f"repro worker {node.name!r} draining {store.url} "
          f"({workers} drainer(s), engine_workers={engine_workers})",
          flush=True)
    stop = threading.Event()
    previous = {}
    try:
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            previous[sig] = _signal.signal(
                sig, lambda signum, frame: stop.set())
    except (ValueError, OSError):   # pragma: no cover - non-main thread
        pass
    try:
        while not stop.wait(0.5):
            pass
        print(f"shutting down (draining up to {drain_grace:g}s)", flush=True)
    except KeyboardInterrupt:       # signal handlers not installed
        print("shutting down", flush=True)
    finally:
        for sig, handler in previous.items():
            try:
                _signal.signal(sig, handler)
            except (ValueError, OSError):   # pragma: no cover
                pass
        released = node.stop(wait=True, grace=drain_grace)
        store.close()
        shutdown_pool(wait=False)
        if released:
            print(f"released {released} unfinished lease(s)", flush=True)
