"""Python client for the scheduling service (stdlib ``urllib`` only).

Speaks the versioned ``/v1`` API: the uniform error envelope is decoded
into :class:`ServiceError` (with its machine-readable ``code``),
``GET /v1/jobs`` pagination is exposed via :meth:`ServiceClient.jobs_page`,
and :meth:`ServiceClient.solve` drives the synchronous ``POST /v1/solve``
endpoint with a :class:`repro.api.SolveRequest`.

Used by the test suite, ``repro submit``, the examples and the remote
backend of :class:`repro.api.Session`; any other HTTP client works just
as well — the API is plain JSON (see :mod:`repro.service.server` for the
routes and curl examples in the README).

::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    job = client.submit(inst, ["splittable", ("ptas-splittable",
                                              {"delta": 2})])
    reports = client.wait(job["id"])          # list[SolveReport]
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..core.instance import Instance
from ..engine.report import SolveReport
from ..io import instance_to_dict
from ..obs.trace import TRACE_HEADER, current_trace_id

if TYPE_CHECKING:    # pragma: no cover - typing only
    from ..api import SolveRequest

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP error from the service, with its decoded error envelope.

    ``code`` is the machine-readable envelope code (``unknown_solver``,
    ``not_found``, ...), or ``""`` for pre-envelope/legacy bodies.
    """

    def __init__(self, status: int, message: str, *, code: str = "",
                 detail: Any = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.code = code
        self.detail = detail


def _decode_error(status: int, payload: Any) -> ServiceError:
    err = payload.get("error") if isinstance(payload, dict) else None
    if isinstance(err, dict):       # the /v1 envelope
        return ServiceError(status, str(err.get("message", "")),
                            code=str(err.get("code", "")),
                            detail=err.get("detail"))
    if isinstance(err, str):        # legacy flat shape
        return ServiceError(status, err)
    return ServiceError(status, str(payload))


class ServiceClient:
    """Minimal blocking client for one service endpoint.

    ``api_prefix`` selects the surface; the default is the versioned
    ``/v1`` routes. Pass ``api_prefix=""`` to talk to the deprecated
    legacy aliases of an old server. ``sync_solve_budget`` is how long
    the server may spend on a ``POST /v1/solve`` submitted without its
    own timeout — match it to the server's ``--timeout`` when that is
    raised above the 60s default, or the client socket closes while the
    server is still solving.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 api_prefix: str = "/v1",
                 sync_solve_budget: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.api_prefix = api_prefix
        self.sync_solve_budget = sync_solve_budget

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    #: Transient connection failures retried for idempotent requests.
    _RETRIABLE = (ConnectionResetError, ConnectionRefusedError,
                  ConnectionAbortedError)
    _RETRIES = 4
    _RETRY_BASE = 0.05
    _RETRY_CAP = 2.0
    _RETRY_AFTER_CAP = 30.0

    @classmethod
    def _backoff_delay(cls, attempt: int) -> float:
        """Full-jitter exponential backoff: attempt ``k`` (0-based) waits
        ``uniform(0, min(cap, base * 2**k))`` — fixed linear sleeps
        resynchronize a thundering herd; jitter spreads it out."""
        return random.uniform(0.0, min(cls._RETRY_CAP,
                                       cls._RETRY_BASE * 2 ** attempt))

    def _request(self, method: str, path: str, body: dict | None = None,
                 transport_timeout: float | None = None) -> Any:
        headers = {"Content-Type": "application/json"}
        trace_id = current_trace_id()
        if trace_id is not None:
            # propagate the caller's ambient trace so server logs, the
            # job row and the resulting reports all correlate with it
            headers[TRACE_HEADER] = trace_id
        req = urllib.request.Request(
            self.base_url + self.api_prefix + path, method=method,
            data=json.dumps(body).encode() if body is not None else None,
            headers=headers)
        # GETs are idempotent, so a connection dropped under load — or a
        # 503 from an overloaded/draining server — is safely retried with
        # exponential backoff; a POST is never resent (double-submit)
        attempts = self._RETRIES if method == "GET" else 1
        for attempt in range(attempts):
            try:
                with urllib.request.urlopen(
                        req,
                        timeout=transport_timeout or self.timeout) as resp:
                    return json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                try:
                    payload = json.loads(exc.read())
                except (json.JSONDecodeError, ValueError):
                    payload = {"error": str(exc.reason)}
                if exc.code == 503 and attempt < attempts - 1 \
                        and method == "GET":
                    # honor Retry-After when the server names a delay
                    retry_after = exc.headers.get("Retry-After") \
                        if exc.headers is not None else None
                    try:
                        delay = min(float(retry_after),
                                    self._RETRY_AFTER_CAP)
                    except (TypeError, ValueError):
                        delay = self._backoff_delay(attempt)
                    time.sleep(delay)
                    continue
                raise _decode_error(exc.code, payload) from None
            except self._RETRIABLE:
                if attempt == attempts - 1:
                    raise
                time.sleep(self._backoff_delay(attempt))
            except urllib.error.URLError as exc:
                if isinstance(exc.reason, self._RETRIABLE) \
                        and attempt < attempts - 1:
                    time.sleep(self._backoff_delay(attempt))
                else:
                    raise

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #

    def solve(self, request: "SolveRequest") -> SolveReport:
        """``POST /v1/solve`` — synchronous solve of one small instance."""
        return SolveReport.from_dict(self.solve_raw(request)["report"])

    def solve_raw(self, request: "SolveRequest") -> dict:
        """``POST /v1/solve``, returning the raw payload — the canonical
        echo of the request under ``"request"`` plus its ``"report"``.

        The transport deadline outlasts the server-side solve budget
        (``request.timeout``, or ``sync_solve_budget`` when unset): a
        POST is never retried, so closing the socket early would lose
        the report of a solve the server finishes anyway."""
        budget = (request.timeout if request.timeout is not None
                  else self.sync_solve_budget)
        return self._request("POST", "/solve", request.to_dict(),
                             transport_timeout=max(self.timeout,
                                                   budget + 10.0))

    def submit(self, inst: Instance | Mapping[str, Any],
               algorithms: Iterable[str | tuple[str, Mapping[str, Any]]],
               *, label: str = "", priority: int = 0,
               timeout: float | None = None) -> dict:
        """``POST /v1/jobs``; returns the created job record as a dict."""
        algos: list[Any] = []
        for item in algorithms:
            if isinstance(item, str):
                algos.append(item)
            else:
                name, kwargs = item
                algos.append([name, dict(kwargs or {})])
        body = {
            "instance": (instance_to_dict(inst)
                         if isinstance(inst, Instance) else dict(inst)),
            "algorithms": algos, "label": label, "priority": priority,
        }
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}``."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs_page(self, status: str | None = None, limit: int = 50,
                  offset: int = 0) -> dict:
        """``GET /v1/jobs`` — one page plus pagination metadata
        (``total``, ``limit``, ``offset``, ``next_offset``)."""
        path = f"/jobs?limit={limit}&offset={offset}"
        if status is not None:
            path += f"&status={status}"
        return self._request("GET", path)

    def jobs(self, status: str | None = None, limit: int = 50,
             offset: int = 0) -> list[dict]:
        """``GET /v1/jobs``, just the records of one page."""
        return self.jobs_page(status, limit, offset)["jobs"]

    def reports(self, job_id: str) -> list[SolveReport]:
        """``GET /v1/jobs/{id}/reports``, decoded back into SolveReports
        (fractions arrive exact thanks to the num/den wire encoding)."""
        payload = self._request("GET", f"/jobs/{job_id}/reports")
        return [SolveReport.from_dict(d) for d in payload["reports"]]

    def results_for_digest(self, digest: str) -> list[SolveReport]:
        """``GET /v1/results/{digest}`` — the cross-client cache view."""
        payload = self._request("GET", f"/results/{digest}")
        return [SolveReport.from_dict(d) for d in payload["reports"]]

    def solvers(self) -> list[dict]:
        """``GET /v1/solvers``."""
        return self._request("GET", "/solvers")["solvers"]

    def health(self) -> dict:
        """``GET /v1/healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /v1/metrics`` — the raw Prometheus text exposition
        (the one non-JSON payload, so it bypasses ``_request``)."""
        req = urllib.request.Request(
            self.base_url + self.api_prefix + "/metrics", method="GET")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.read().decode()
        except urllib.error.HTTPError as exc:
            raise ServiceError(exc.code, str(exc.reason)) from None

    @staticmethod
    def job_failure(job: Mapping[str, Any]) -> ServiceError:
        """The one way a terminally unsuccessful job becomes an exception
        — ``wait`` and the remote Session backend must agree on
        ``code=\"job_failed\"`` (``\"job_quarantined\"`` for jobs that
        exhausted their retry attempts)."""
        status = job.get("status", "failed")
        return ServiceError(
            500, f"job {job['id']} {status}: {job.get('error', '')}",
            code=("job_quarantined" if status == "quarantined"
                  else "job_failed"))

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll: float = 0.05, poll_max: float = 1.0) -> list[SolveReport]:
        """Poll until the job finishes; return its reports.

        The poll interval starts at ``poll`` and backs off geometrically
        (with jitter) up to ``poll_max``, so long jobs are not hammered
        at submission cadence. Raises :class:`TimeoutError` if the job
        is still pending after ``timeout`` seconds, and
        :class:`ServiceError` (status 500) if the job itself failed or
        was quarantined server-side.
        """
        deadline = time.monotonic() + timeout
        interval = poll
        while True:
            job = self.job(job_id)
            if job["status"] == "done":
                return self.reports(job_id)
            if job["status"] in ("failed", "quarantined"):
                raise self.job_failure(job)
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(min(random.uniform(interval * 0.5, interval),
                           max(0.0, deadline - now)))
            interval = min(interval * 1.6, poll_max)
