"""Python client for the scheduling service (stdlib ``urllib`` only).

Used by the test suite, ``repro submit`` and the examples; any other
HTTP client works just as well — the API is plain JSON (see
:mod:`repro.service.server` for the routes and curl examples in the
README).

::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8080")
    job = client.submit(inst, ["splittable", ("ptas-splittable",
                                              {"delta": 2})])
    reports = client.wait(job["id"])          # list[SolveReport]
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterable, Mapping

from ..core.instance import Instance
from ..engine.report import SolveReport
from ..io import instance_to_dict

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP error from the service, with its decoded JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Minimal blocking client for one service endpoint."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    #: Transient connection failures retried for idempotent requests.
    _RETRIABLE = (ConnectionResetError, ConnectionRefusedError,
                  ConnectionAbortedError)
    _RETRIES = 3

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> Any:
        req = urllib.request.Request(
            self.base_url + path, method=method,
            data=json.dumps(body).encode() if body is not None else None,
            headers={"Content-Type": "application/json"})
        # GETs are idempotent, so a connection dropped under load is
        # safely retried; a POST is never resent (it could double-submit)
        attempts = self._RETRIES if method == "GET" else 1
        for attempt in range(attempts):
            try:
                with urllib.request.urlopen(req,
                                            timeout=self.timeout) as resp:
                    return json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                try:
                    payload = json.loads(exc.read())
                    message = payload.get("error", str(payload))
                except (json.JSONDecodeError, ValueError):
                    message = exc.reason
                raise ServiceError(exc.code, message) from None
            except self._RETRIABLE:
                if attempt == attempts - 1:
                    raise
                time.sleep(0.05 * (attempt + 1))
            except urllib.error.URLError as exc:
                if isinstance(exc.reason, self._RETRIABLE) \
                        and attempt < attempts - 1:
                    time.sleep(0.05 * (attempt + 1))
                else:
                    raise

    # ------------------------------------------------------------------ #
    # API
    # ------------------------------------------------------------------ #

    def submit(self, inst: Instance | Mapping[str, Any],
               algorithms: Iterable[str | tuple[str, Mapping[str, Any]]],
               *, label: str = "", priority: int = 0,
               timeout: float | None = None) -> dict:
        """``POST /jobs``; returns the created job record as a dict."""
        algos: list[Any] = []
        for item in algorithms:
            if isinstance(item, str):
                algos.append(item)
            else:
                name, kwargs = item
                algos.append([name, dict(kwargs or {})])
        body = {
            "instance": (instance_to_dict(inst)
                         if isinstance(inst, Instance) else dict(inst)),
            "algorithms": algos, "label": label, "priority": priority,
        }
        if timeout is not None:
            body["timeout"] = timeout
        return self._request("POST", "/jobs", body)

    def job(self, job_id: str) -> dict:
        """``GET /jobs/{id}``."""
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self, status: str | None = None, limit: int = 100) -> list[dict]:
        """``GET /jobs``."""
        path = f"/jobs?limit={limit}"
        if status is not None:
            path += f"&status={status}"
        return self._request("GET", path)["jobs"]

    def reports(self, job_id: str) -> list[SolveReport]:
        """``GET /jobs/{id}/reports``, decoded back into SolveReports
        (fractions arrive exact thanks to the num/den wire encoding)."""
        payload = self._request("GET", f"/jobs/{job_id}/reports")
        return [SolveReport.from_dict(d) for d in payload["reports"]]

    def results_for_digest(self, digest: str) -> list[SolveReport]:
        """``GET /results/{digest}`` — the cross-client cache view."""
        payload = self._request("GET", f"/results/{digest}")
        return [SolveReport.from_dict(d) for d in payload["reports"]]

    def solvers(self) -> list[dict]:
        """``GET /solvers``."""
        return self._request("GET", "/solvers")["solvers"]

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def wait(self, job_id: str, *, timeout: float = 60.0,
             poll: float = 0.05) -> list[SolveReport]:
        """Poll until the job finishes; return its reports.

        Raises :class:`TimeoutError` if the job is still pending after
        ``timeout`` seconds, and :class:`ServiceError` (status 500) if
        the job itself failed server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] == "done":
                return self.reports(job_id)
            if job["status"] == "failed":
                raise ServiceError(500, f"job {job_id} failed: "
                                        f"{job.get('error', '')}")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout}s")
            time.sleep(poll)
