"""SQLite-backed persistence for the scheduling service.

One database file holds everything the service must not lose on restart:

* ``jobs`` — every submitted job with its full input (instance JSON,
  algorithm list, priority, timeout) and lifecycle timestamps, so a
  restarted server re-enqueues whatever was queued or mid-flight;
* ``reports`` — the ordered :class:`~repro.engine.report.SolveReport`
  rows a finished job produced (JSON per row, fractions stay exact via
  the report's ``num/den`` wire encoding);
* ``results`` — a cross-client report cache keyed by
  :func:`~repro.engine.cache.cache_key` and indexed by
  ``Instance.digest()``, exposed through :class:`SqliteReportCache` so
  the engine's ``run_batch(cache=...)`` hook reads and writes it
  directly. Two clients submitting the same instance share work even
  across server restarts.

SQLite is accessed from many threads (HTTP handlers + queue drainers);
one connection with ``check_same_thread=False`` behind an RLock keeps
the store simple and safely serialised, and WAL mode keeps readers off
the writers' backs for other processes inspecting the file.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from ..core.instance import Instance
from ..engine.cache import CACHE_HITS, CACHE_MISSES
from ..engine.report import SolveReport
from ..faults import injection
from ..io import instance_from_dict, instance_to_dict

__all__ = ["JobStore", "JobRecord", "SqliteReportCache", "JOB_STATUSES",
           "TERMINAL_STATUSES", "DEFAULT_MAX_ATTEMPTS"]

#: Lifecycle of a job. ``queued`` and ``running`` survive restarts as
#: ``queued`` (until their attempts run out); ``done``, ``failed`` and
#: ``quarantined`` are terminal. ``quarantined`` is where a job lands
#: after exhausting ``max_attempts`` — repeatedly crashing work must
#: neither loop forever nor masquerade as an ordinary failure.
JOB_STATUSES = ("queued", "running", "done", "failed", "quarantined")

#: The statuses a job can never leave.
TERMINAL_STATUSES = ("done", "failed", "quarantined")

#: Attempts a job gets before quarantine, unless overridden per job.
DEFAULT_MAX_ATTEMPTS = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    status          TEXT NOT NULL,
    priority        INTEGER NOT NULL DEFAULT 0,
    label           TEXT NOT NULL DEFAULT '',
    instance        TEXT NOT NULL,
    instance_digest TEXT NOT NULL,
    algorithms      TEXT NOT NULL,
    timeout         REAL,
    error           TEXT NOT NULL DEFAULT '',
    submitted_at    REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    trace_id        TEXT,
    lease_expires_at REAL,
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL DEFAULT 3,
    next_attempt_at REAL
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);

CREATE TABLE IF NOT EXISTS reports (
    job_id TEXT NOT NULL,
    seq    INTEGER NOT NULL,
    report TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);

CREATE TABLE IF NOT EXISTS results (
    key             TEXT PRIMARY KEY,
    instance_digest TEXT NOT NULL,
    report          TEXT NOT NULL,
    stored_at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_digest ON results(instance_digest);
"""


@dataclass(frozen=True)
class JobRecord:
    """One row of the ``jobs`` table, decoded."""

    id: str
    status: str
    priority: int
    label: str
    instance: Instance
    instance_digest: str
    algorithms: tuple[tuple[str, dict], ...]
    timeout: float | None
    error: str = ""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    trace_id: str | None = None
    lease_expires_at: float | None = None
    attempts: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    next_attempt_at: float | None = None

    def to_dict(self) -> dict:
        """JSON-safe summary (what ``GET /jobs/{id}`` returns)."""
        return {
            "id": self.id, "status": self.status, "priority": self.priority,
            "label": self.label, "instance_digest": self.instance_digest,
            "algorithms": [[name, kwargs] for name, kwargs in self.algorithms],
            "timeout": self.timeout, "error": self.error,
            "submitted_at": self.submitted_at, "started_at": self.started_at,
            "finished_at": self.finished_at, "trace_id": self.trace_id,
            "lease_expires_at": self.lease_expires_at,
            "attempts": self.attempts, "max_attempts": self.max_attempts,
            "next_attempt_at": self.next_attempt_at,
        }


def _row_to_record(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        id=row["id"], status=row["status"], priority=row["priority"],
        label=row["label"],
        instance=instance_from_dict(json.loads(row["instance"])),
        instance_digest=row["instance_digest"],
        algorithms=tuple((name, dict(kwargs))
                         for name, kwargs in json.loads(row["algorithms"])),
        timeout=row["timeout"], error=row["error"],
        submitted_at=row["submitted_at"], started_at=row["started_at"],
        finished_at=row["finished_at"], trace_id=row["trace_id"],
        lease_expires_at=row["lease_expires_at"],
        attempts=row["attempts"], max_attempts=row["max_attempts"],
        next_attempt_at=row["next_attempt_at"])


class JobStore:
    """Thread-safe persistent job + report + result-cache store."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._migrate()
            self._conn.commit()

    def _migrate(self) -> None:
        """Bring a pre-existing database up to the current schema.
        Caller holds the lock; additive-column-only, so old and new
        processes can share one file during a rolling restart."""
        cols = {row["name"] for row in
                self._conn.execute("PRAGMA table_info(jobs)")}
        if "trace_id" not in cols:
            self._conn.execute("ALTER TABLE jobs ADD COLUMN trace_id TEXT")
        for name, decl in (
                ("lease_expires_at", "REAL"),
                ("attempts", "INTEGER NOT NULL DEFAULT 0"),
                ("max_attempts",
                 f"INTEGER NOT NULL DEFAULT {DEFAULT_MAX_ATTEMPTS}"),
                ("next_attempt_at", "REAL")):
            if name not in cols:
                self._conn.execute(
                    f"ALTER TABLE jobs ADD COLUMN {name} {decl}")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------ #
    # jobs
    # ------------------------------------------------------------------ #

    def create_job(self, inst: Instance,
                   algorithms: Iterable[tuple[str, Mapping[str, Any]]],
                   *, label: str = "", priority: int = 0,
                   timeout: float | None = None,
                   trace_id: str | None = None,
                   max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> JobRecord:
        """Persist a new ``queued`` job and return its record."""
        job_id = uuid.uuid4().hex[:16]
        algos = tuple((name, dict(kwargs or {})) for name, kwargs in algorithms)
        if not algos:
            raise ValueError("a job needs at least one algorithm")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        now = time.time()
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs (id, status, priority, label, instance, "
                "instance_digest, algorithms, timeout, submitted_at, "
                "trace_id, max_attempts) "
                "VALUES (?, 'queued', ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (job_id, int(priority), label,
                 json.dumps(instance_to_dict(inst)), inst.digest(),
                 json.dumps([[n, k] for n, k in algos]), timeout, now,
                 trace_id, int(max_attempts)))
            self._conn.commit()
        return JobRecord(id=job_id, status="queued", priority=int(priority),
                         label=label, instance=inst,
                         instance_digest=inst.digest(), algorithms=algos,
                         timeout=timeout, submitted_at=now,
                         trace_id=trace_id, max_attempts=int(max_attempts))

    def get_job(self, job_id: str) -> JobRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return _row_to_record(row) if row is not None else None

    def list_jobs(self, status: str | None = None,
                  limit: int = 100, offset: int = 0) -> list[JobRecord]:
        """Most recent jobs first, optionally filtered by status.

        ``offset`` skips past rows for pagination; id breaks ties in
        ``submitted_at`` so pages never overlap or skip."""
        q = "SELECT * FROM jobs"
        params: tuple = ()
        if status is not None:
            q += " WHERE status = ?"
            params = (status,)
        q += " ORDER BY submitted_at DESC, id LIMIT ? OFFSET ?"
        with self._lock:
            rows = self._conn.execute(
                q, params + (int(limit), int(offset))).fetchall()
        return [_row_to_record(r) for r in rows]

    def count_jobs(self, status: str | None = None) -> int:
        """Total jobs (for one status, or overall) — pagination totals."""
        q = "SELECT COUNT(*) FROM jobs"
        params: tuple = ()
        if status is not None:
            q += " WHERE status = ?"
            params = (status,)
        with self._lock:
            (n,) = self._conn.execute(q, params).fetchone()
        return n

    def claim_job(self, job_id: str,
                  lease_seconds: float | None = None) -> bool:
        """Atomically flip one ``queued`` job to ``running``, counting the
        attempt and (when ``lease_seconds`` is given) stamping a lease.

        Returns False when the job is gone, already claimed, or parked
        behind its retry backoff (``next_attempt_at`` in the future) —
        the queue can hold duplicate ids (e.g. a job both submitted live
        and re-enqueued by recovery), and exactly one drainer must win.
        A claim without a lease never expires — the legacy single-node
        behaviour, recovered only by a restart."""
        now = time.time()
        lease = now + lease_seconds if lease_seconds else None
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET status='running', started_at=?, "
                "lease_expires_at=?, attempts=attempts+1 "
                "WHERE id=? AND status='queued' "
                "AND (next_attempt_at IS NULL OR next_attempt_at<=?)",
                (now, lease, job_id, now))
            self._conn.commit()
            return cur.rowcount == 1

    def heartbeat(self, job_id: str, lease_seconds: float) -> bool:
        """Extend a ``running`` job's lease; False when the job is no
        longer running (finished, or reclaimed out from under us)."""
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET lease_expires_at=? "
                "WHERE id=? AND status='running'",
                (time.time() + lease_seconds, job_id))
            self._conn.commit()
            return cur.rowcount == 1

    def requeue_job(self, job_id: str, *, error: str = "",
                    delay: float = 0.0) -> bool:
        """Put a ``running`` job back in line after a retryable failure,
        due again ``delay`` seconds from now. The attempt stays counted."""
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET status='queued', started_at=NULL, "
                "lease_expires_at=NULL, next_attempt_at=?, error=? "
                "WHERE id=? AND status='running'",
                (time.time() + max(0.0, delay), error, job_id))
            self._conn.commit()
            return cur.rowcount == 1

    def release_lease(self, job_id: str) -> bool:
        """Hand a ``running`` job back untouched — graceful shutdown's
        path for work it cannot finish in its drain grace. Unlike
        :meth:`requeue_job` the attempt is *refunded*: the job was not
        at fault, and an orderly restart must not eat its retry budget."""
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET status='queued', started_at=NULL, "
                "lease_expires_at=NULL, next_attempt_at=NULL, "
                "attempts=CASE WHEN attempts>0 THEN attempts-1 ELSE 0 END "
                "WHERE id=? AND status='running'", (job_id,))
            self._conn.commit()
            return cur.rowcount == 1

    def quarantine_job(self, job_id: str, error: str) -> bool:
        """Terminally park a ``running`` job that exhausted its attempts."""
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET status='quarantined', error=?, "
                "finished_at=?, lease_expires_at=NULL "
                "WHERE id=? AND status='running'",
                (error, time.time(), job_id))
            self._conn.commit()
            return cur.rowcount == 1

    def reclaim_expired(self, backoff) -> tuple[list[JobRecord],
                                                list[JobRecord]]:
        """Sweep ``running`` jobs whose lease expired (their drainer died
        or hung past its heartbeat): requeue those with attempts left —
        due after ``backoff(attempts)`` seconds — and quarantine the
        rest. Returns ``(requeued, quarantined)`` records with their
        post-sweep fields, so the caller can re-index and log them."""
        now = time.time()
        requeued: list[JobRecord] = []
        quarantined: list[JobRecord] = []
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE status='running' "
                "AND lease_expires_at IS NOT NULL "
                "AND lease_expires_at<=?", (now,)).fetchall()
            for row in rows:
                rec = _row_to_record(row)
                note = (f"lease expired mid-run (attempt "
                        f"{rec.attempts}/{rec.max_attempts})")
                if rec.error:
                    note += f"; last error: {rec.error}"
                if rec.attempts >= rec.max_attempts:
                    self._conn.execute(
                        "UPDATE jobs SET status='quarantined', error=?, "
                        "finished_at=?, lease_expires_at=NULL WHERE id=?",
                        (note, now, rec.id))
                    quarantined.append(replace(
                        rec, status="quarantined", error=note,
                        finished_at=now, lease_expires_at=None))
                else:
                    due = now + max(0.0, float(backoff(rec.attempts)))
                    self._conn.execute(
                        "UPDATE jobs SET status='queued', started_at=NULL, "
                        "lease_expires_at=NULL, next_attempt_at=?, error=? "
                        "WHERE id=?", (due, note, rec.id))
                    requeued.append(replace(
                        rec, status="queued", error=note, started_at=None,
                        lease_expires_at=None, next_attempt_at=due))
            self._conn.commit()
        return requeued, quarantined

    def finish_job(self, job_id: str, reports: Iterable[SolveReport],
                   *, error: str = "") -> bool:
        """Store a job's reports and flip it to ``done`` (or ``failed``).

        The flip is conditional on the job still being ``running``:
        returns False — storing nothing — when it is not, so a drainer
        whose lease was reclaimed mid-run cannot clobber the outcome of
        the retry that superseded it."""
        injection.maybe_raise("store_commit")
        status = "failed" if error else "done"
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET status=?, error=?, finished_at=?, "
                "lease_expires_at=NULL WHERE id=? AND status='running'",
                (status, error, time.time(), job_id))
            if cur.rowcount != 1:
                self._conn.rollback()
                return False
            self._conn.execute("DELETE FROM reports WHERE job_id=?", (job_id,))
            self._conn.executemany(
                "INSERT INTO reports (job_id, seq, report) VALUES (?, ?, ?)",
                [(job_id, seq, json.dumps(rep.to_dict()))
                 for seq, rep in enumerate(reports)])
            self._conn.commit()
        return True

    def reports_for(self, job_id: str) -> list[SolveReport]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT report FROM reports WHERE job_id=? ORDER BY seq",
                (job_id,)).fetchall()
        return [SolveReport.from_dict(json.loads(r["report"])) for r in rows]

    def recover_incomplete(self) -> list[JobRecord]:
        """Flip ``running`` leftovers back to ``queued`` — except those
        already out of attempts, which are quarantined — and return every
        job the queue must pick up again, oldest submission first, so a
        restart preserves FIFO order within a priority level. Call once
        at server start: a crash mid-solve must not strand work in
        ``running`` forever. Recovery clears any retry backoff: the new
        process starts with a clean slate."""
        now = time.time()
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET status='quarantined', finished_at=?, "
                "lease_expires_at=NULL, "
                "error='process died mid-run with no attempts left "
                "(attempts ' || attempts || '/' || max_attempts || ')' "
                "WHERE status='running' AND attempts>=max_attempts",
                (now,))
            self._conn.execute(
                "UPDATE jobs SET status='queued', started_at=NULL, "
                "lease_expires_at=NULL, next_attempt_at=NULL "
                "WHERE status='running'")
            self._conn.execute(
                "UPDATE jobs SET next_attempt_at=NULL "
                "WHERE status='queued'")
            self._conn.commit()
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE status='queued' "
                "ORDER BY submitted_at").fetchall()
        return [_row_to_record(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """Job counts per status (zero-filled for missing statuses)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        out = {s: 0 for s in JOB_STATUSES}
        out.update({r["status"]: r["n"] for r in rows})
        return out

    # ------------------------------------------------------------------ #
    # cross-client result cache
    # ------------------------------------------------------------------ #

    def cache_get(self, key: str) -> SolveReport | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT report FROM results WHERE key=?", (key,)).fetchone()
        if row is None:
            return None
        try:
            return SolveReport.from_dict(json.loads(row["report"]))
        except (ValueError, TypeError, json.JSONDecodeError):
            return None     # corrupt entry: treat as a miss

    def cache_put(self, key: str, digest: str, report: SolveReport) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, instance_digest, report, stored_at) VALUES (?,?,?,?)",
                (key, digest, json.dumps(report.to_dict()), time.time()))
            self._conn.commit()

    def cached_reports_for_digest(self, digest: str) -> list[SolveReport]:
        """Every cached report for one instance content hash — the store
        doubles as a digest-indexed ReportCache across clients."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT report FROM results WHERE instance_digest=? "
                "ORDER BY stored_at", (digest,)).fetchall()
        return [SolveReport.from_dict(json.loads(r["report"])) for r in rows]

    def cache_size(self) -> int:
        with self._lock:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()
        return n


class SqliteReportCache:
    """Adapter giving :class:`JobStore`'s ``results`` table the
    ``get``/``put`` interface ``run_batch(cache=...)`` expects, with the
    same hit/miss counters :class:`~repro.engine.cache.ReportCache`
    exposes (the service's ``/healthz`` reports them)."""

    def __init__(self, store: JobStore) -> None:
        self._store = store
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return self._store.cache_size()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, key: str) -> SolveReport | None:
        rep = self._store.cache_get(key)
        with self._lock:
            if rep is None:
                self.misses += 1
            else:
                self.hits += 1
        # mirrored into the process-global registry so /v1/healthz and
        # /v1/metrics read the same numbers (label "service" keeps the
        # SQLite results table distinct from the engine's ReportCache)
        if rep is None:
            CACHE_MISSES.inc(cache="service")
        else:
            CACHE_HITS.inc(cache="service")
        return rep

    def put(self, key: str, report: SolveReport) -> None:
        self._store.cache_put(key, report.instance_digest, report)
