"""SQLite-backed persistence for the scheduling service.

One database file holds everything the service must not lose on restart:

* ``jobs`` — every submitted job with its full input (instance JSON,
  algorithm list, priority, timeout) and lifecycle timestamps, so a
  restarted server re-enqueues whatever was queued or mid-flight;
* ``reports`` — the ordered :class:`~repro.engine.report.SolveReport`
  rows a finished job produced (JSON per row, fractions stay exact via
  the report's ``num/den`` wire encoding);
* ``results`` — a cross-client report cache keyed by
  :func:`~repro.engine.cache.cache_key` and indexed by
  ``Instance.digest()``, exposed through :class:`SqliteReportCache` so
  the engine's ``run_batch(cache=...)`` hook reads and writes it
  directly. Two clients submitting the same instance share work even
  across server restarts.

SQLite is accessed from many threads (HTTP handlers + queue drainers);
one connection with ``check_same_thread=False`` behind an RLock keeps
the store simple and safely serialised, and WAL mode keeps readers off
the writers' backs for other processes inspecting the file.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..core.instance import Instance
from ..engine.cache import CACHE_HITS, CACHE_MISSES
from ..engine.report import SolveReport
from ..io import instance_from_dict, instance_to_dict

__all__ = ["JobStore", "JobRecord", "SqliteReportCache", "JOB_STATUSES"]

#: Lifecycle of a job. ``queued`` and ``running`` survive restarts as
#: ``queued``; ``done`` and ``failed`` are terminal.
JOB_STATUSES = ("queued", "running", "done", "failed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    status          TEXT NOT NULL,
    priority        INTEGER NOT NULL DEFAULT 0,
    label           TEXT NOT NULL DEFAULT '',
    instance        TEXT NOT NULL,
    instance_digest TEXT NOT NULL,
    algorithms      TEXT NOT NULL,
    timeout         REAL,
    error           TEXT NOT NULL DEFAULT '',
    submitted_at    REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    trace_id        TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);

CREATE TABLE IF NOT EXISTS reports (
    job_id TEXT NOT NULL,
    seq    INTEGER NOT NULL,
    report TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);

CREATE TABLE IF NOT EXISTS results (
    key             TEXT PRIMARY KEY,
    instance_digest TEXT NOT NULL,
    report          TEXT NOT NULL,
    stored_at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_digest ON results(instance_digest);
"""


@dataclass(frozen=True)
class JobRecord:
    """One row of the ``jobs`` table, decoded."""

    id: str
    status: str
    priority: int
    label: str
    instance: Instance
    instance_digest: str
    algorithms: tuple[tuple[str, dict], ...]
    timeout: float | None
    error: str = ""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    trace_id: str | None = None

    def to_dict(self) -> dict:
        """JSON-safe summary (what ``GET /jobs/{id}`` returns)."""
        return {
            "id": self.id, "status": self.status, "priority": self.priority,
            "label": self.label, "instance_digest": self.instance_digest,
            "algorithms": [[name, kwargs] for name, kwargs in self.algorithms],
            "timeout": self.timeout, "error": self.error,
            "submitted_at": self.submitted_at, "started_at": self.started_at,
            "finished_at": self.finished_at, "trace_id": self.trace_id,
        }


def _row_to_record(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        id=row["id"], status=row["status"], priority=row["priority"],
        label=row["label"],
        instance=instance_from_dict(json.loads(row["instance"])),
        instance_digest=row["instance_digest"],
        algorithms=tuple((name, dict(kwargs))
                         for name, kwargs in json.loads(row["algorithms"])),
        timeout=row["timeout"], error=row["error"],
        submitted_at=row["submitted_at"], started_at=row["started_at"],
        finished_at=row["finished_at"], trace_id=row["trace_id"])


class JobStore:
    """Thread-safe persistent job + report + result-cache store."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._migrate()
            self._conn.commit()

    def _migrate(self) -> None:
        """Bring a pre-existing database up to the current schema.
        Caller holds the lock; additive-column-only, so old and new
        processes can share one file during a rolling restart."""
        cols = {row["name"] for row in
                self._conn.execute("PRAGMA table_info(jobs)")}
        if "trace_id" not in cols:
            self._conn.execute("ALTER TABLE jobs ADD COLUMN trace_id TEXT")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------ #
    # jobs
    # ------------------------------------------------------------------ #

    def create_job(self, inst: Instance,
                   algorithms: Iterable[tuple[str, Mapping[str, Any]]],
                   *, label: str = "", priority: int = 0,
                   timeout: float | None = None,
                   trace_id: str | None = None) -> JobRecord:
        """Persist a new ``queued`` job and return its record."""
        job_id = uuid.uuid4().hex[:16]
        algos = tuple((name, dict(kwargs or {})) for name, kwargs in algorithms)
        if not algos:
            raise ValueError("a job needs at least one algorithm")
        now = time.time()
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs (id, status, priority, label, instance, "
                "instance_digest, algorithms, timeout, submitted_at, "
                "trace_id) VALUES (?, 'queued', ?, ?, ?, ?, ?, ?, ?, ?)",
                (job_id, int(priority), label,
                 json.dumps(instance_to_dict(inst)), inst.digest(),
                 json.dumps([[n, k] for n, k in algos]), timeout, now,
                 trace_id))
            self._conn.commit()
        return JobRecord(id=job_id, status="queued", priority=int(priority),
                         label=label, instance=inst,
                         instance_digest=inst.digest(), algorithms=algos,
                         timeout=timeout, submitted_at=now,
                         trace_id=trace_id)

    def get_job(self, job_id: str) -> JobRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return _row_to_record(row) if row is not None else None

    def list_jobs(self, status: str | None = None,
                  limit: int = 100, offset: int = 0) -> list[JobRecord]:
        """Most recent jobs first, optionally filtered by status.

        ``offset`` skips past rows for pagination; id breaks ties in
        ``submitted_at`` so pages never overlap or skip."""
        q = "SELECT * FROM jobs"
        params: tuple = ()
        if status is not None:
            q += " WHERE status = ?"
            params = (status,)
        q += " ORDER BY submitted_at DESC, id LIMIT ? OFFSET ?"
        with self._lock:
            rows = self._conn.execute(
                q, params + (int(limit), int(offset))).fetchall()
        return [_row_to_record(r) for r in rows]

    def count_jobs(self, status: str | None = None) -> int:
        """Total jobs (for one status, or overall) — pagination totals."""
        q = "SELECT COUNT(*) FROM jobs"
        params: tuple = ()
        if status is not None:
            q += " WHERE status = ?"
            params = (status,)
        with self._lock:
            (n,) = self._conn.execute(q, params).fetchone()
        return n

    def claim_job(self, job_id: str) -> bool:
        """Atomically flip one ``queued`` job to ``running``.

        Returns False when the job is gone or already claimed — the
        queue can hold duplicate ids (e.g. a job both submitted live and
        re-enqueued by recovery), and exactly one drainer must win."""
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET status='running', started_at=? "
                "WHERE id=? AND status='queued'", (time.time(), job_id))
            self._conn.commit()
            return cur.rowcount == 1

    def finish_job(self, job_id: str, reports: Iterable[SolveReport],
                   *, error: str = "") -> None:
        """Store a job's reports and flip it to ``done`` (or ``failed``)."""
        status = "failed" if error else "done"
        with self._lock:
            self._conn.execute("DELETE FROM reports WHERE job_id=?", (job_id,))
            self._conn.executemany(
                "INSERT INTO reports (job_id, seq, report) VALUES (?, ?, ?)",
                [(job_id, seq, json.dumps(rep.to_dict()))
                 for seq, rep in enumerate(reports)])
            self._conn.execute(
                "UPDATE jobs SET status=?, error=?, finished_at=? WHERE id=?",
                (status, error, time.time(), job_id))
            self._conn.commit()

    def reports_for(self, job_id: str) -> list[SolveReport]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT report FROM reports WHERE job_id=? ORDER BY seq",
                (job_id,)).fetchall()
        return [SolveReport.from_dict(json.loads(r["report"])) for r in rows]

    def recover_incomplete(self) -> list[JobRecord]:
        """Flip ``running`` leftovers back to ``queued`` and return every
        job the queue must pick up again, oldest submission first — so a
        restart preserves FIFO order within a priority level. Call once
        at server start: a crash mid-solve must not strand work in
        ``running`` forever."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET status='queued', started_at=NULL "
                "WHERE status='running'")
            self._conn.commit()
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE status='queued' "
                "ORDER BY submitted_at").fetchall()
        return [_row_to_record(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """Job counts per status (zero-filled for missing statuses)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        out = {s: 0 for s in JOB_STATUSES}
        out.update({r["status"]: r["n"] for r in rows})
        return out

    # ------------------------------------------------------------------ #
    # cross-client result cache
    # ------------------------------------------------------------------ #

    def cache_get(self, key: str) -> SolveReport | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT report FROM results WHERE key=?", (key,)).fetchone()
        if row is None:
            return None
        try:
            return SolveReport.from_dict(json.loads(row["report"]))
        except (ValueError, TypeError, json.JSONDecodeError):
            return None     # corrupt entry: treat as a miss

    def cache_put(self, key: str, digest: str, report: SolveReport) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO results "
                "(key, instance_digest, report, stored_at) VALUES (?,?,?,?)",
                (key, digest, json.dumps(report.to_dict()), time.time()))
            self._conn.commit()

    def cached_reports_for_digest(self, digest: str) -> list[SolveReport]:
        """Every cached report for one instance content hash — the store
        doubles as a digest-indexed ReportCache across clients."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT report FROM results WHERE instance_digest=? "
                "ORDER BY stored_at", (digest,)).fetchall()
        return [SolveReport.from_dict(json.loads(r["report"])) for r in rows]

    def cache_size(self) -> int:
        with self._lock:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM results").fetchone()
        return n


class SqliteReportCache:
    """Adapter giving :class:`JobStore`'s ``results`` table the
    ``get``/``put`` interface ``run_batch(cache=...)`` expects, with the
    same hit/miss counters :class:`~repro.engine.cache.ReportCache`
    exposes (the service's ``/healthz`` reports them)."""

    def __init__(self, store: JobStore) -> None:
        self._store = store
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return self._store.cache_size()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, key: str) -> SolveReport | None:
        rep = self._store.cache_get(key)
        with self._lock:
            if rep is None:
                self.misses += 1
            else:
                self.hits += 1
        # mirrored into the process-global registry so /v1/healthz and
        # /v1/metrics read the same numbers (label "service" keeps the
        # SQLite results table distinct from the engine's ReportCache)
        if rep is None:
            CACHE_MISSES.inc(cache="service")
        else:
            CACHE_HITS.inc(cache="service")
        return rep

    def put(self, key: str, report: SolveReport) -> None:
        self._store.cache_put(key, report.instance_digest, report)
