"""SQLite reference implementation of the storage layer.

One database file holds everything the service must not lose on restart:

* ``jobs`` — every submitted job with its full input (instance JSON,
  algorithm list, priority, timeout) and lifecycle timestamps, so a
  restarted server re-enqueues whatever was queued or mid-flight;
* ``reports`` — the ordered :class:`~repro.engine.report.SolveReport`
  rows a finished job produced (JSON per row, fractions stay exact via
  the report's ``num/den`` wire encoding);
* ``worker_claims`` — cumulative claims per worker node, so a server
  can expose per-worker counters for workers living in *other*
  processes (their in-process metric registries are invisible here).

The cross-client result cache lives next to the database as N shard
files (``<path>.cache-<k>``, consistent-hashed by report key — see
:class:`~repro.resultcache.ShardedReportCache`), reached through the
same ``cache_get``/``cache_put`` seam as before; a pre-shard ``results``
table found in an old database is migrated into the shards on open.

Concurrency. The store is accessed from many threads (HTTP handlers +
worker-node drainers) and, in fleet topologies, from many *processes*.
File-backed stores open one connection per thread (WAL journal +
``busy_timeout`` + ``BEGIN IMMEDIATE`` write transactions), so readers
never block behind writers and concurrent writers queue on SQLite's own
lock instead of racing; ``:memory:`` stores — where every connection
would see a different empty database — keep the legacy single shared
connection behind an RLock.

This is the reference :class:`~repro.service.storage.StoreBackend`; the
in-memory twin used by tests and chaos lives in
:mod:`repro.service.storage`.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, replace
from typing import Any, Iterable, Mapping

from ..core.instance import Instance
from ..engine.report import SolveReport
from ..faults import injection
from ..io import instance_from_dict, instance_to_dict
from ..resultcache import (CACHE_HITS, CACHE_MISSES, DEFAULT_CACHE_SHARDS,
                           MemoryCacheShard, ShardedReportCache,
                           SqliteCacheShard)

__all__ = ["JobStore", "JobRecord", "SqliteReportCache", "JOB_STATUSES",
           "TERMINAL_STATUSES", "DEFAULT_MAX_ATTEMPTS"]

#: Lifecycle of a job. ``queued`` and ``running`` survive restarts as
#: ``queued`` (until their attempts run out); ``done``, ``failed`` and
#: ``quarantined`` are terminal. ``quarantined`` is where a job lands
#: after exhausting ``max_attempts`` — repeatedly crashing work must
#: neither loop forever nor masquerade as an ordinary failure.
JOB_STATUSES = ("queued", "running", "done", "failed", "quarantined")

#: The statuses a job can never leave.
TERMINAL_STATUSES = ("done", "failed", "quarantined")

#: Attempts a job gets before quarantine, unless overridden per job.
DEFAULT_MAX_ATTEMPTS = 3

#: How many eligible candidates ``claim_next`` races for before giving
#: up the poll — under N competing nodes, losing the first few atomic
#: claims is normal, losing eight in a row means the queue is drained.
_CLAIM_CANDIDATES = 8

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id              TEXT PRIMARY KEY,
    status          TEXT NOT NULL,
    priority        INTEGER NOT NULL DEFAULT 0,
    label           TEXT NOT NULL DEFAULT '',
    instance        TEXT NOT NULL,
    instance_digest TEXT NOT NULL,
    algorithms      TEXT NOT NULL,
    timeout         REAL,
    error           TEXT NOT NULL DEFAULT '',
    submitted_at    REAL NOT NULL,
    started_at      REAL,
    finished_at     REAL,
    trace_id        TEXT,
    lease_expires_at REAL,
    attempts        INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL DEFAULT 3,
    next_attempt_at REAL,
    claimed_by      TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs(status);

CREATE TABLE IF NOT EXISTS reports (
    job_id TEXT NOT NULL,
    seq    INTEGER NOT NULL,
    report TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);

CREATE TABLE IF NOT EXISTS worker_claims (
    worker TEXT PRIMARY KEY,
    claims INTEGER NOT NULL DEFAULT 0
);

CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class JobRecord:
    """One row of the ``jobs`` table, decoded."""

    id: str
    status: str
    priority: int
    label: str
    instance: Instance
    instance_digest: str
    algorithms: tuple[tuple[str, dict], ...]
    timeout: float | None
    error: str = ""
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    trace_id: str | None = None
    lease_expires_at: float | None = None
    attempts: int = 0
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    next_attempt_at: float | None = None
    claimed_by: str | None = None

    def to_dict(self) -> dict:
        """JSON-safe summary (what ``GET /jobs/{id}`` returns)."""
        return {
            "id": self.id, "status": self.status, "priority": self.priority,
            "label": self.label, "instance_digest": self.instance_digest,
            "algorithms": [[name, kwargs] for name, kwargs in self.algorithms],
            "timeout": self.timeout, "error": self.error,
            "submitted_at": self.submitted_at, "started_at": self.started_at,
            "finished_at": self.finished_at, "trace_id": self.trace_id,
            "lease_expires_at": self.lease_expires_at,
            "attempts": self.attempts, "max_attempts": self.max_attempts,
            "next_attempt_at": self.next_attempt_at,
            "claimed_by": self.claimed_by,
        }


def _row_to_record(row: sqlite3.Row) -> JobRecord:
    return JobRecord(
        id=row["id"], status=row["status"], priority=row["priority"],
        label=row["label"],
        instance=instance_from_dict(json.loads(row["instance"])),
        instance_digest=row["instance_digest"],
        algorithms=tuple((name, dict(kwargs))
                         for name, kwargs in json.loads(row["algorithms"])),
        timeout=row["timeout"], error=row["error"],
        submitted_at=row["submitted_at"], started_at=row["started_at"],
        finished_at=row["finished_at"], trace_id=row["trace_id"],
        lease_expires_at=row["lease_expires_at"],
        attempts=row["attempts"], max_attempts=row["max_attempts"],
        next_attempt_at=row["next_attempt_at"],
        claimed_by=row["claimed_by"])


class _Rollback(Exception):
    """Raised inside a :meth:`JobStore._write` block to abort the
    transaction without propagating — the conditional-UPDATE-lost path."""


class JobStore:
    """Thread- and process-safe persistent job + report + cache store.

    ``cache_shards`` sets the result-cache fan-out for a *fresh*
    database; an existing one keeps the count it was created with (the
    consistent-hash ring must match the shard files on disk).
    """

    def __init__(self, path: str | os.PathLike, *,
                 cache_shards: int | None = None) -> None:
        self.path = str(path)
        self._serial = self.path == ":memory:" \
            or self.path.startswith("file::memory:")
        self._lock = threading.RLock()
        self._tls = threading.local()
        self._conns: list[sqlite3.Connection] = []
        self._closed = False
        if self._serial:
            # every connection to :memory: is its own empty database, so
            # per-thread connections are impossible — serialise instead
            self._shared = self._connect()
        else:
            self._shared = None
        # executescript commits on its own (autocommit mode), so schema
        # setup stays outside the explicit-transaction helpers
        self._connection().executescript(_SCHEMA)
        with self._write() as conn:
            self._migrate(conn)
        self.cache = self._open_cache(cache_shards)
        self._migrate_legacy_results()

    # ------------------------------------------------------------------ #
    # connections & transactions
    # ------------------------------------------------------------------ #

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False so close() may run from any thread;
        # each connection is still *used* by one thread only (file mode)
        # or behind the RLock (memory mode). isolation_level=None puts
        # sqlite3 in autocommit so BEGIN IMMEDIATE below is explicit.
        conn = sqlite3.connect(self.path, check_same_thread=False,
                               isolation_level=None)
        conn.row_factory = sqlite3.Row
        if not self._serial:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA busy_timeout=10000")
        conn.execute("PRAGMA synchronous=NORMAL")
        with self._lock:
            self._conns.append(conn)
        return conn

    def _connection(self) -> sqlite3.Connection:
        if self._serial:
            return self._shared
        conn = getattr(self._tls, "conn", None)
        if conn is None:
            conn = self._connect()
            self._tls.conn = conn
        return conn

    @contextlib.contextmanager
    def _read(self):
        if self._serial:
            with self._lock:
                yield self._shared
        else:
            yield self._connection()

    @contextlib.contextmanager
    def _write(self):
        """One atomic write transaction (`BEGIN IMMEDIATE` ... COMMIT).

        Raising :class:`_Rollback` inside the block rolls back quietly —
        the caller signals "condition not met" via its own return value.
        Any other exception rolls back and propagates."""
        if self._serial:
            with self._lock:
                yield from self._tx(self._shared)
        else:
            yield from self._tx(self._connection())

    @staticmethod
    def _tx(conn: sqlite3.Connection):
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except _Rollback:
            conn.execute("ROLLBACK")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        else:
            conn.execute("COMMIT")

    def _migrate(self, conn: sqlite3.Connection) -> None:
        """Bring a pre-existing database up to the current schema —
        additive columns only, so old and new processes can share one
        file during a rolling restart."""
        cols = {row["name"] for row in conn.execute("PRAGMA table_info(jobs)")}
        for name, decl in (
                ("trace_id", "TEXT"),
                ("lease_expires_at", "REAL"),
                ("attempts", "INTEGER NOT NULL DEFAULT 0"),
                ("max_attempts",
                 f"INTEGER NOT NULL DEFAULT {DEFAULT_MAX_ATTEMPTS}"),
                ("next_attempt_at", "REAL"),
                ("claimed_by", "TEXT")):
            if name not in cols:
                conn.execute(f"ALTER TABLE jobs ADD COLUMN {name} {decl}")

    @property
    def url(self) -> str:
        """The ``store_url`` this store reopens under."""
        if self._serial:
            return "sqlite:///:memory:"
        return f"sqlite:///{self.path}"

    def close(self) -> None:
        self.cache.close()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for conn in self._conns:
                with contextlib.suppress(sqlite3.ProgrammingError):
                    conn.close()
            self._conns.clear()

    # ------------------------------------------------------------------ #
    # result-cache shards
    # ------------------------------------------------------------------ #

    def _meta_get(self, key: str) -> str | None:
        with self._read() as conn:
            row = conn.execute("SELECT value FROM meta WHERE key=?",
                               (key,)).fetchone()
        return row["value"] if row is not None else None

    def _meta_set(self, key: str, value: str) -> None:
        with self._write() as conn:
            conn.execute("INSERT OR REPLACE INTO meta (key, value) "
                         "VALUES (?, ?)", (key, value))

    def _open_cache(self, cache_shards: int | None) -> ShardedReportCache:
        if self._serial:
            count = cache_shards or DEFAULT_CACHE_SHARDS
            shards = [MemoryCacheShard() for _ in range(count)]
            return ShardedReportCache(shards, label="service")
        stored = self._meta_get("cache_shards")
        if stored is not None:
            # the ring must match the shard files already on disk; a
            # mismatched request would silently miss every old entry
            count = int(stored)
        else:
            count = cache_shards or DEFAULT_CACHE_SHARDS
            self._meta_set("cache_shards", str(count))
        shards = [SqliteCacheShard(f"{self.path}.cache-{k}")
                  for k in range(count)]
        return ShardedReportCache(shards, label="service")

    def _migrate_legacy_results(self) -> None:
        """Move a pre-shard ``results`` table into the shard files, then
        drop it — an old monolithic database keeps its warm cache."""
        with self._read() as conn:
            present = conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' "
                "AND name='results'").fetchone()
        if present is None:
            return
        with self._read() as conn:
            rows = conn.execute(
                "SELECT key, instance_digest, report FROM results "
                "ORDER BY stored_at").fetchall()
        for row in rows:
            try:
                rep = SolveReport.from_dict(json.loads(row["report"]))
            except (ValueError, TypeError, json.JSONDecodeError):
                continue    # corrupt legacy entry: drop it
            self.cache.store(row["key"], row["instance_digest"], rep)
        with self._write() as conn:
            conn.execute("DROP TABLE results")

    # ------------------------------------------------------------------ #
    # jobs
    # ------------------------------------------------------------------ #

    def create_job(self, inst: Instance,
                   algorithms: Iterable[tuple[str, Mapping[str, Any]]],
                   *, label: str = "", priority: int = 0,
                   timeout: float | None = None,
                   trace_id: str | None = None,
                   max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> JobRecord:
        """Persist a new ``queued`` job and return its record."""
        job_id = uuid.uuid4().hex[:16]
        algos = tuple((name, dict(kwargs or {})) for name, kwargs in algorithms)
        if not algos:
            raise ValueError("a job needs at least one algorithm")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        now = time.time()
        with self._write() as conn:
            conn.execute(
                "INSERT INTO jobs (id, status, priority, label, instance, "
                "instance_digest, algorithms, timeout, submitted_at, "
                "trace_id, max_attempts) "
                "VALUES (?, 'queued', ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (job_id, int(priority), label,
                 json.dumps(instance_to_dict(inst)), inst.digest(),
                 json.dumps([[n, k] for n, k in algos]), timeout, now,
                 trace_id, int(max_attempts)))
        return JobRecord(id=job_id, status="queued", priority=int(priority),
                         label=label, instance=inst,
                         instance_digest=inst.digest(), algorithms=algos,
                         timeout=timeout, submitted_at=now,
                         trace_id=trace_id, max_attempts=int(max_attempts))

    def get_job(self, job_id: str) -> JobRecord | None:
        with self._read() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return _row_to_record(row) if row is not None else None

    def list_jobs(self, status: str | None = None,
                  limit: int = 100, offset: int = 0) -> list[JobRecord]:
        """Most recent jobs first, optionally filtered by status.

        ``offset`` skips past rows for pagination; id breaks ties in
        ``submitted_at`` so pages never overlap or skip."""
        q = "SELECT * FROM jobs"
        params: tuple = ()
        if status is not None:
            q += " WHERE status = ?"
            params = (status,)
        q += " ORDER BY submitted_at DESC, id LIMIT ? OFFSET ?"
        with self._read() as conn:
            rows = conn.execute(q, params + (int(limit),
                                             int(offset))).fetchall()
        return [_row_to_record(r) for r in rows]

    def count_jobs(self, status: str | None = None) -> int:
        """Total jobs (for one status, or overall) — pagination totals."""
        q = "SELECT COUNT(*) FROM jobs"
        params: tuple = ()
        if status is not None:
            q += " WHERE status = ?"
            params = (status,)
        with self._read() as conn:
            (n,) = conn.execute(q, params).fetchone()
        return n

    def claim_job(self, job_id: str, lease_seconds: float | None = None,
                  *, worker: str = "") -> bool:
        """Atomically flip one ``queued`` job to ``running``, counting
        the attempt and (when ``lease_seconds`` is given) stamping a
        lease plus the claiming ``worker``'s name.

        Returns False when the job is gone, already claimed, or parked
        behind its retry backoff (``next_attempt_at`` in the future) —
        any number of worker nodes may race one id, and exactly one must
        win. A claim without a lease never expires — the legacy
        single-node behaviour, recovered only by a restart."""
        now = time.time()
        lease = now + lease_seconds if lease_seconds else None
        claimed = False
        with self._write() as conn:
            cur = conn.execute(
                "UPDATE jobs SET status='running', started_at=?, "
                "lease_expires_at=?, attempts=attempts+1, claimed_by=? "
                "WHERE id=? AND status='queued' "
                "AND (next_attempt_at IS NULL OR next_attempt_at<=?)",
                (now, lease, worker or None, job_id, now))
            if cur.rowcount != 1:
                raise _Rollback
            if worker:
                conn.execute(
                    "INSERT INTO worker_claims (worker, claims) "
                    "VALUES (?, 1) ON CONFLICT(worker) "
                    "DO UPDATE SET claims=claims+1", (worker,))
            claimed = True
        return claimed

    def claim_next(self, lease_seconds: float | None = None,
                   *, worker: str = "") -> JobRecord | None:
        """Claim the most urgent eligible ``queued`` job — highest
        priority first, FIFO within a priority level — and return its
        post-claim record (attempt counted, lease stamped), or ``None``
        when nothing is currently claimable.

        This is the one-call poll a :class:`WorkerNode` loops on: the
        SELECT is a snapshot, so each candidate is confirmed with the
        atomic conditional UPDATE of :meth:`claim_job`; racing nodes
        simply fall through to the next candidate."""
        now = time.time()
        with self._read() as conn:
            rows = conn.execute(
                "SELECT id FROM jobs WHERE status='queued' "
                "AND (next_attempt_at IS NULL OR next_attempt_at<=?) "
                "ORDER BY priority DESC, submitted_at, id LIMIT ?",
                (now, _CLAIM_CANDIDATES)).fetchall()
        for row in rows:
            if self.claim_job(row["id"], lease_seconds, worker=worker):
                return self.get_job(row["id"])
        return None

    def claims_by_worker(self) -> dict[str, int]:
        """Cumulative claims per worker node, across every process that
        ever claimed from this store."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT worker, claims FROM worker_claims").fetchall()
        return {row["worker"]: row["claims"] for row in rows}

    def heartbeat(self, job_id: str, lease_seconds: float) -> bool:
        """Extend a ``running`` job's lease; False when the job is no
        longer running (finished, or reclaimed out from under us)."""
        with self._write() as conn:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires_at=? "
                "WHERE id=? AND status='running'",
                (time.time() + lease_seconds, job_id))
            ok = cur.rowcount == 1
        return ok

    def requeue_job(self, job_id: str, *, error: str = "",
                    delay: float = 0.0) -> bool:
        """Put a ``running`` job back in line after a retryable failure,
        due again ``delay`` seconds from now. The attempt stays counted."""
        with self._write() as conn:
            cur = conn.execute(
                "UPDATE jobs SET status='queued', started_at=NULL, "
                "lease_expires_at=NULL, next_attempt_at=?, error=? "
                "WHERE id=? AND status='running'",
                (time.time() + max(0.0, delay), error, job_id))
            ok = cur.rowcount == 1
        return ok

    def release_lease(self, job_id: str) -> bool:
        """Hand a ``running`` job back untouched — graceful shutdown's
        path for work it cannot finish in its drain grace. Unlike
        :meth:`requeue_job` the attempt is *refunded*: the job was not
        at fault, and an orderly restart must not eat its retry budget."""
        with self._write() as conn:
            cur = conn.execute(
                "UPDATE jobs SET status='queued', started_at=NULL, "
                "lease_expires_at=NULL, next_attempt_at=NULL, "
                "attempts=CASE WHEN attempts>0 THEN attempts-1 ELSE 0 END "
                "WHERE id=? AND status='running'", (job_id,))
            ok = cur.rowcount == 1
        return ok

    def quarantine_job(self, job_id: str, error: str) -> bool:
        """Terminally park a ``running`` job that exhausted its attempts."""
        with self._write() as conn:
            cur = conn.execute(
                "UPDATE jobs SET status='quarantined', error=?, "
                "finished_at=?, lease_expires_at=NULL "
                "WHERE id=? AND status='running'",
                (error, time.time(), job_id))
            ok = cur.rowcount == 1
        return ok

    def reclaim_expired(self, backoff) -> tuple[list[JobRecord],
                                                list[JobRecord]]:
        """Sweep ``running`` jobs whose lease expired (their worker died
        or hung past its heartbeat): requeue those with attempts left —
        due after ``backoff(attempts)`` seconds — and quarantine the
        rest. Returns ``(requeued, quarantined)`` records with their
        post-sweep fields, so the caller can re-index and log them."""
        now = time.time()
        requeued: list[JobRecord] = []
        quarantined: list[JobRecord] = []
        with self._write() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE status='running' "
                "AND lease_expires_at IS NOT NULL "
                "AND lease_expires_at<=?", (now,)).fetchall()
            for row in rows:
                rec = _row_to_record(row)
                note = (f"lease expired mid-run (attempt "
                        f"{rec.attempts}/{rec.max_attempts})")
                if rec.error:
                    note += f"; last error: {rec.error}"
                if rec.attempts >= rec.max_attempts:
                    conn.execute(
                        "UPDATE jobs SET status='quarantined', error=?, "
                        "finished_at=?, lease_expires_at=NULL WHERE id=?",
                        (note, now, rec.id))
                    quarantined.append(replace(
                        rec, status="quarantined", error=note,
                        finished_at=now, lease_expires_at=None))
                else:
                    due = now + max(0.0, float(backoff(rec.attempts)))
                    conn.execute(
                        "UPDATE jobs SET status='queued', started_at=NULL, "
                        "lease_expires_at=NULL, next_attempt_at=?, error=? "
                        "WHERE id=?", (due, note, rec.id))
                    requeued.append(replace(
                        rec, status="queued", error=note, started_at=None,
                        lease_expires_at=None, next_attempt_at=due))
        return requeued, quarantined

    def finish_job(self, job_id: str, reports: Iterable[SolveReport],
                   *, error: str = "") -> bool:
        """Store a job's reports and flip it to ``done`` (or ``failed``).

        The flip is conditional on the job still being ``running``:
        returns False — storing nothing — when it is not, so a worker
        whose lease was reclaimed mid-run cannot clobber the outcome of
        the retry that superseded it."""
        injection.maybe_raise("store_commit")
        status = "failed" if error else "done"
        finished = False
        with self._write() as conn:
            cur = conn.execute(
                "UPDATE jobs SET status=?, error=?, finished_at=?, "
                "lease_expires_at=NULL WHERE id=? AND status='running'",
                (status, error, time.time(), job_id))
            if cur.rowcount != 1:
                raise _Rollback
            conn.execute("DELETE FROM reports WHERE job_id=?", (job_id,))
            conn.executemany(
                "INSERT INTO reports (job_id, seq, report) VALUES (?, ?, ?)",
                [(job_id, seq, json.dumps(rep.to_dict()))
                 for seq, rep in enumerate(reports)])
            finished = True
        return finished

    def reports_for(self, job_id: str) -> list[SolveReport]:
        with self._read() as conn:
            rows = conn.execute(
                "SELECT report FROM reports WHERE job_id=? ORDER BY seq",
                (job_id,)).fetchall()
        return [SolveReport.from_dict(json.loads(r["report"])) for r in rows]

    def recover_incomplete(self) -> list[JobRecord]:
        """Flip ``running`` leftovers back to ``queued`` — except those
        already out of attempts, which are quarantined — and return every
        job the queue must pick up again, oldest submission first, so a
        restart preserves FIFO order within a priority level. Call once
        at *server* start (never from a worker node joining a live
        fleet — it would clobber its peers' leases): a crash mid-solve
        must not strand work in ``running`` forever. Recovery clears any
        retry backoff: the new process starts with a clean slate."""
        now = time.time()
        with self._write() as conn:
            conn.execute(
                "UPDATE jobs SET status='quarantined', finished_at=?, "
                "lease_expires_at=NULL, "
                "error='process died mid-run with no attempts left "
                "(attempts ' || attempts || '/' || max_attempts || ')' "
                "WHERE status='running' AND attempts>=max_attempts",
                (now,))
            conn.execute(
                "UPDATE jobs SET status='queued', started_at=NULL, "
                "lease_expires_at=NULL, next_attempt_at=NULL "
                "WHERE status='running'")
            conn.execute(
                "UPDATE jobs SET next_attempt_at=NULL "
                "WHERE status='queued'")
        with self._read() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE status='queued' "
                "ORDER BY submitted_at").fetchall()
        return [_row_to_record(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """Job counts per status (zero-filled for missing statuses)."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        out = {s: 0 for s in JOB_STATUSES}
        out.update({r["status"]: r["n"] for r in rows})
        return out

    # ------------------------------------------------------------------ #
    # cross-client result cache (delegates to the shards)
    # ------------------------------------------------------------------ #

    def cache_get(self, key: str) -> SolveReport | None:
        return self.cache.peek(key)

    def cache_put(self, key: str, digest: str, report: SolveReport) -> None:
        self.cache.store(key, digest, report)

    def cached_reports_for_digest(self, digest: str) -> list[SolveReport]:
        """Every cached report for one instance content hash — the store
        doubles as a digest-indexed ReportCache across clients."""
        return self.cache.reports_for_digest(digest)

    def cache_size(self) -> int:
        return self.cache.size()


class SqliteReportCache:
    """Adapter giving a store's result cache the ``get``/``put``
    interface ``run_batch(cache=...)`` expects, with the same hit/miss
    counters :class:`~repro.resultcache.ReportCache` exposes. Kept for
    callers that count hits per-adapter; new code can hand
    ``store.cache`` (a counting :class:`ShardedReportCache`) to the
    engine directly."""

    def __init__(self, store: JobStore) -> None:
        self._store = store
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return self._store.cache_size()

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def get(self, key: str) -> SolveReport | None:
        rep = self._store.cache_get(key)
        with self._lock:
            if rep is None:
                self.misses += 1
            else:
                self.hits += 1
        # mirrored into the process-global registry so /v1/healthz and
        # /v1/metrics read the same numbers (label "service" keeps the
        # persistent store cache distinct from the engine's ReportCache)
        if rep is None:
            CACHE_MISSES.inc(cache="service")
        else:
            CACHE_HITS.inc(cache="service")
        return rep

    def put(self, key: str, report: SolveReport) -> None:
        self._store.cache_put(key, report.instance_digest, report)
