"""The storage layer's contract and its non-SQLite backends.

:class:`StoreBackend` is the protocol every store speaks — the full
create/claim/heartbeat/requeue/finish/cache surface the queue, the
worker nodes, the HTTP server and chaos all program against. Two
implementations ship:

* :class:`~repro.service.store.JobStore` — the SQLite reference
  implementation (WAL, per-thread connections, shard files for the
  result cache); the only backend multiple *processes* can share.
* :class:`MemoryStore` — a pure-dict twin with identical lease/retry
  semantics, for tests and chaos campaigns that want a store with zero
  filesystem footprint (and a place to wedge failures without touching
  SQLite).

Construction goes through :func:`open_store`, which parses the
``store_url`` syntax used by ``repro serve --store``, ``repro worker
--store`` and ``repro chaos --store``::

    sqlite:///relative/path.db     SQLite file (also: bare paths)
    sqlite:////absolute/path.db    SQLite file, absolute
    memory://                      in-process MemoryStore
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import replace
from typing import (Any, Iterable, Mapping, Protocol, runtime_checkable)

from ..core.instance import Instance
from ..engine.report import SolveReport
from ..faults import injection
from ..resultcache import (DEFAULT_CACHE_SHARDS, MemoryCacheShard,
                           ShardedReportCache)
from .store import DEFAULT_MAX_ATTEMPTS, JOB_STATUSES, JobRecord, JobStore

__all__ = ["StoreBackend", "MemoryStore", "open_store"]


@runtime_checkable
class StoreBackend(Protocol):
    """What the queue, worker nodes, server and chaos require of a store.

    The lease semantics are the contract's heart — see
    :class:`~repro.service.store.JobStore` (the reference
    implementation) for the authoritative docstrings. Every method must
    be safe to call from any thread.
    """

    @property
    def url(self) -> str: ...

    def close(self) -> None: ...

    # jobs
    def create_job(self, inst: Instance,
                   algorithms: Iterable[tuple[str, Mapping[str, Any]]],
                   *, label: str = "", priority: int = 0,
                   timeout: float | None = None,
                   trace_id: str | None = None,
                   max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> JobRecord: ...
    def get_job(self, job_id: str) -> JobRecord | None: ...
    def list_jobs(self, status: str | None = None, limit: int = 100,
                  offset: int = 0) -> list[JobRecord]: ...
    def count_jobs(self, status: str | None = None) -> int: ...
    def counts(self) -> dict[str, int]: ...

    # lease protocol
    def claim_job(self, job_id: str, lease_seconds: float | None = None,
                  *, worker: str = "") -> bool: ...
    def claim_next(self, lease_seconds: float | None = None,
                   *, worker: str = "") -> JobRecord | None: ...
    def claims_by_worker(self) -> dict[str, int]: ...
    def heartbeat(self, job_id: str, lease_seconds: float) -> bool: ...
    def requeue_job(self, job_id: str, *, error: str = "",
                    delay: float = 0.0) -> bool: ...
    def release_lease(self, job_id: str) -> bool: ...
    def quarantine_job(self, job_id: str, error: str) -> bool: ...
    def reclaim_expired(self, backoff) -> tuple[list[JobRecord],
                                                list[JobRecord]]: ...
    def finish_job(self, job_id: str, reports: Iterable[SolveReport],
                   *, error: str = "") -> bool: ...
    def reports_for(self, job_id: str) -> list[SolveReport]: ...
    def recover_incomplete(self) -> list[JobRecord]: ...

    # result cache
    def cache_get(self, key: str) -> SolveReport | None: ...
    def cache_put(self, key: str, digest: str,
                  report: SolveReport) -> None: ...
    def cached_reports_for_digest(self, digest: str) -> list[SolveReport]: ...
    def cache_size(self) -> int: ...


class MemoryStore:
    """In-memory :class:`StoreBackend` with full lease-protocol parity.

    Everything lives in dicts behind one RLock; reports and instances
    are held as objects (no serialisation round-trip). Semantics —
    attempt counting, backoff parking, stale-writer refusal, recovery
    ordering, error strings — mirror :class:`JobStore` exactly, so the
    two backends are interchangeable under the conformance suite.
    """

    def __init__(self, *, cache_shards: int | None = None) -> None:
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._reports: dict[str, list[SolveReport]] = {}
        self._claims: dict[str, int] = {}
        self.cache = ShardedReportCache(
            [MemoryCacheShard()
             for _ in range(cache_shards or DEFAULT_CACHE_SHARDS)],
            label="service")

    @property
    def url(self) -> str:
        return "memory://"

    def close(self) -> None:
        self.cache.close()

    # ------------------------------------------------------------------ #
    # jobs
    # ------------------------------------------------------------------ #

    def create_job(self, inst: Instance,
                   algorithms: Iterable[tuple[str, Mapping[str, Any]]],
                   *, label: str = "", priority: int = 0,
                   timeout: float | None = None,
                   trace_id: str | None = None,
                   max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> JobRecord:
        algos = tuple((name, dict(kwargs or {}))
                      for name, kwargs in algorithms)
        if not algos:
            raise ValueError("a job needs at least one algorithm")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        job = JobRecord(id=uuid.uuid4().hex[:16], status="queued",
                        priority=int(priority), label=label, instance=inst,
                        instance_digest=inst.digest(), algorithms=algos,
                        timeout=timeout, submitted_at=time.time(),
                        trace_id=trace_id, max_attempts=int(max_attempts))
        with self._lock:
            self._jobs[job.id] = job
        return job

    def get_job(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self, status: str | None = None,
                  limit: int = 100, offset: int = 0) -> list[JobRecord]:
        with self._lock:
            jobs = [j for j in self._jobs.values()
                    if status is None or j.status == status]
        jobs.sort(key=lambda j: (-j.submitted_at, j.id))
        return jobs[int(offset):int(offset) + int(limit)]

    def count_jobs(self, status: str | None = None) -> int:
        with self._lock:
            return sum(1 for j in self._jobs.values()
                       if status is None or j.status == status)

    def counts(self) -> dict[str, int]:
        out = {s: 0 for s in JOB_STATUSES}
        with self._lock:
            for job in self._jobs.values():
                out[job.status] = out.get(job.status, 0) + 1
        return out

    # ------------------------------------------------------------------ #
    # lease protocol
    # ------------------------------------------------------------------ #

    def claim_job(self, job_id: str, lease_seconds: float | None = None,
                  *, worker: str = "") -> bool:
        now = time.time()
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status != "queued":
                return False
            if job.next_attempt_at is not None and job.next_attempt_at > now:
                return False
            self._jobs[job_id] = replace(
                job, status="running", started_at=now,
                lease_expires_at=(now + lease_seconds
                                  if lease_seconds else None),
                attempts=job.attempts + 1, claimed_by=worker or None)
            if worker:
                self._claims[worker] = self._claims.get(worker, 0) + 1
            return True

    def claim_next(self, lease_seconds: float | None = None,
                   *, worker: str = "") -> JobRecord | None:
        now = time.time()
        with self._lock:
            eligible = [j for j in self._jobs.values()
                        if j.status == "queued"
                        and (j.next_attempt_at is None
                             or j.next_attempt_at <= now)]
            eligible.sort(key=lambda j: (-j.priority, j.submitted_at, j.id))
            for job in eligible:
                if self.claim_job(job.id, lease_seconds, worker=worker):
                    return self._jobs[job.id]
        return None

    def claims_by_worker(self) -> dict[str, int]:
        with self._lock:
            return dict(self._claims)

    def heartbeat(self, job_id: str, lease_seconds: float) -> bool:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status != "running":
                return False
            self._jobs[job_id] = replace(
                job, lease_expires_at=time.time() + lease_seconds)
            return True

    def requeue_job(self, job_id: str, *, error: str = "",
                    delay: float = 0.0) -> bool:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status != "running":
                return False
            self._jobs[job_id] = replace(
                job, status="queued", started_at=None, lease_expires_at=None,
                next_attempt_at=time.time() + max(0.0, delay), error=error)
            return True

    def release_lease(self, job_id: str) -> bool:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status != "running":
                return False
            self._jobs[job_id] = replace(
                job, status="queued", started_at=None, lease_expires_at=None,
                next_attempt_at=None, attempts=max(0, job.attempts - 1))
            return True

    def quarantine_job(self, job_id: str, error: str) -> bool:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status != "running":
                return False
            self._jobs[job_id] = replace(
                job, status="quarantined", error=error,
                finished_at=time.time(), lease_expires_at=None)
            return True

    def reclaim_expired(self, backoff) -> tuple[list[JobRecord],
                                                list[JobRecord]]:
        now = time.time()
        requeued: list[JobRecord] = []
        quarantined: list[JobRecord] = []
        with self._lock:
            for job in list(self._jobs.values()):
                if job.status != "running" or job.lease_expires_at is None \
                        or job.lease_expires_at > now:
                    continue
                note = (f"lease expired mid-run (attempt "
                        f"{job.attempts}/{job.max_attempts})")
                if job.error:
                    note += f"; last error: {job.error}"
                if job.attempts >= job.max_attempts:
                    self._jobs[job.id] = replace(
                        job, status="quarantined", error=note,
                        finished_at=now, lease_expires_at=None)
                    quarantined.append(self._jobs[job.id])
                else:
                    due = now + max(0.0, float(backoff(job.attempts)))
                    self._jobs[job.id] = replace(
                        job, status="queued", error=note, started_at=None,
                        lease_expires_at=None, next_attempt_at=due)
                    requeued.append(self._jobs[job.id])
        return requeued, quarantined

    def finish_job(self, job_id: str, reports: Iterable[SolveReport],
                   *, error: str = "") -> bool:
        injection.maybe_raise("store_commit")
        status = "failed" if error else "done"
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status != "running":
                return False
            self._jobs[job_id] = replace(
                job, status=status, error=error, finished_at=time.time(),
                lease_expires_at=None)
            self._reports[job_id] = list(reports)
            return True

    def reports_for(self, job_id: str) -> list[SolveReport]:
        with self._lock:
            return list(self._reports.get(job_id, []))

    def recover_incomplete(self) -> list[JobRecord]:
        now = time.time()
        with self._lock:
            for job in list(self._jobs.values()):
                if job.status == "running":
                    if job.attempts >= job.max_attempts:
                        self._jobs[job.id] = replace(
                            job, status="quarantined", finished_at=now,
                            lease_expires_at=None,
                            error=("process died mid-run with no attempts "
                                   f"left (attempts {job.attempts}/"
                                   f"{job.max_attempts})"))
                    else:
                        self._jobs[job.id] = replace(
                            job, status="queued", started_at=None,
                            lease_expires_at=None, next_attempt_at=None)
                elif job.status == "queued" and job.next_attempt_at:
                    self._jobs[job.id] = replace(job, next_attempt_at=None)
            queued = [j for j in self._jobs.values()
                      if j.status == "queued"]
        queued.sort(key=lambda j: j.submitted_at)
        return queued

    # ------------------------------------------------------------------ #
    # result cache
    # ------------------------------------------------------------------ #

    def cache_get(self, key: str) -> SolveReport | None:
        return self.cache.peek(key)

    def cache_put(self, key: str, digest: str, report: SolveReport) -> None:
        self.cache.store(key, digest, report)

    def cached_reports_for_digest(self, digest: str) -> list[SolveReport]:
        return self.cache.reports_for_digest(digest)

    def cache_size(self) -> int:
        return self.cache.size()


def open_store(url: str | os.PathLike, *,
               cache_shards: int | None = None) -> JobStore | MemoryStore:
    """Open a store from a ``store_url`` (or a bare SQLite path).

    ``sqlite:///jobs.db`` / ``sqlite:////var/lib/repro/jobs.db`` open
    the SQLite backend; ``memory://`` the in-process one (private to
    this process — every call returns a *fresh* empty store). Anything
    without a scheme is treated as a SQLite path, so existing ``--db``
    values keep working.
    """
    text = os.fspath(url)
    if text == "memory://" or text == "memory:":
        return MemoryStore(cache_shards=cache_shards)
    if text.startswith("sqlite://"):
        path = text[len("sqlite://"):]
        if path.startswith("/") and not path.startswith("//"):
            path = path[1:]         # sqlite:///rel.db -> rel.db
        elif path.startswith("//"):
            path = path[1:]         # sqlite:////abs.db -> /abs.db
        if not path or path == ":memory:":
            return JobStore(":memory:", cache_shards=cache_shards)
        return JobStore(path, cache_shards=cache_shards)
    if "://" in text:
        scheme = text.split("://", 1)[0]
        raise ValueError(
            f"unsupported store scheme {scheme!r} in {text!r}; "
            f"expected sqlite:///path or memory://")
    return JobStore(text, cache_shards=cache_shards)
