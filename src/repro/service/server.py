"""Stdlib-only threaded HTTP/JSON API over the job queue.

Endpoints::

    POST /jobs                submit one instance x algorithms job
    GET  /jobs                recent jobs (?status=queued&limit=50)
    GET  /jobs/{id}           job status + timestamps
    GET  /jobs/{id}/reports   the job's SolveReports (?format=ndjson
                              or Accept: application/x-ndjson streams
                              one report per line)
    GET  /results/{digest}    every cached report for an instance
                              content hash (cross-client cache view)
    GET  /solvers             the solver registry, rendered to JSON
    GET  /healthz             queue depth, job counts, cache hit rate

``POST /jobs`` body::

    {"instance": {"processing_times": [...], "classes": [...],
                  "machines": 4, "class_slots": 2},
     "algorithms": ["splittable", ["ptas-splittable", {"delta": 2}]],
     "label": "demo", "priority": 5, "timeout": 30.0}

Everything is ``http.server`` + ``json`` — no web framework, so the
service runs anywhere the package does. The HTTP layer is deliberately
thin: every handler delegates to :class:`~repro.service.store.JobStore`
/ :class:`~repro.service.queue.JobQueue`, which own all state.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..core.errors import InvalidInstanceError
from ..io import instance_from_dict
from ..registry import UnknownSolverError, get_solver, list_solvers
from .queue import JobQueue
from .store import JobStore

__all__ = ["SchedulingService", "serve"]

NDJSON = "application/x-ndjson"


class _BadRequest(Exception):
    """Maps to a 400 with the message as the JSON error body."""


def _parse_algorithms(raw: Any) -> list[tuple[str, dict]]:
    if not isinstance(raw, list) or not raw:
        raise _BadRequest("'algorithms' must be a non-empty list")
    out: list[tuple[str, dict]] = []
    for item in raw:
        if isinstance(item, str):
            name, kwargs = item, {}
        elif isinstance(item, list) and len(item) == 2 \
                and isinstance(item[0], str) and isinstance(item[1], dict):
            name, kwargs = item
        else:
            raise _BadRequest(
                f"algorithm entries are 'name' or ['name', {{kwargs}}]; "
                f"got {item!r}")
        try:
            spec = get_solver(name)     # unknown names fail at submit time
        except UnknownSolverError as exc:
            raise _BadRequest(str(exc.args[0]))
        unknown = sorted(set(kwargs) - set(spec.accepts))
        if unknown:
            raise _BadRequest(
                f"solver {spec.name!r} does not accept kwargs {unknown}")
        out.append((spec.name, dict(kwargs)))
    return out


def _parse_submission(body: dict) -> dict:
    if not isinstance(body, dict):
        raise _BadRequest("body must be a JSON object")
    if "instance" not in body:
        raise _BadRequest("missing 'instance'")
    try:
        inst = instance_from_dict(body["instance"])
    except (InvalidInstanceError, KeyError, TypeError, ValueError) as exc:
        raise _BadRequest(f"invalid instance: {exc}")
    timeout = body.get("timeout")
    if timeout is not None and (not isinstance(timeout, (int, float))
                                or timeout <= 0):
        raise _BadRequest("'timeout' must be a positive number")
    priority = body.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise _BadRequest("'priority' must be an integer")
    return dict(inst=inst,
                algorithms=_parse_algorithms(body.get("algorithms")),
                label=str(body.get("label", "")), priority=priority,
                timeout=float(timeout) if timeout is not None else None)


def _solver_dict(spec) -> dict:
    return {"name": spec.name, "variant": spec.variant, "kind": spec.kind,
            "ratio": spec.ratio_label, "theorem": spec.theorem or None,
            "needs_milp": spec.needs_milp,
            "accepts": list(spec.accepts), "summary": spec.summary}


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, fmt: str, *args) -> None:
        if not self.server.service.quiet:   # pragma: no cover - logging
            super().log_message(fmt, *args)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        data = json.dumps(payload, indent=2).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status)

    def _drain_body(self) -> bytes:
        # the body is always consumed, even for requests that error out:
        # leaving it unread would desync the next request on a reused
        # keep-alive connection (protocol_version is HTTP/1.1)
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    @staticmethod
    def _parse_body(raw: bytes) -> dict:
        if not raw:
            raise _BadRequest("missing request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}")

    def _query(self) -> tuple[str, dict[str, str]]:
        path, _, query = self.path.partition("?")
        params = {}
        for pair in query.split("&"):
            if "=" in pair:
                k, _, v = pair.partition("=")
                params[k] = v
        return path.rstrip("/") or "/", params

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:       # noqa: N802 — http.server API
        path, params = self._query()
        try:
            if path == "/healthz":
                return self._send_json(self.server.service.health())
            if path == "/solvers":
                return self._send_json(
                    {"solvers": [_solver_dict(s) for s in list_solvers()]})
            if path == "/jobs":
                status = params.get("status")
                try:
                    limit = int(params.get("limit", "100"))
                except ValueError:
                    raise _BadRequest(
                        f"'limit' must be an integer, "
                        f"got {params['limit']!r}")
                jobs = self.server.service.store.list_jobs(status=status,
                                                           limit=limit)
                return self._send_json({"jobs": [j.to_dict() for j in jobs]})
            parts = path.lstrip("/").split("/")
            if parts[0] == "jobs" and len(parts) == 2:
                return self._get_job(parts[1])
            if parts[0] == "jobs" and len(parts) == 3 \
                    and parts[2] == "reports":
                return self._get_reports(parts[1], params)
            if parts[0] == "results" and len(parts) == 2:
                reps = self.server.service.store.cached_reports_for_digest(
                    parts[1])
                return self._send_json(
                    {"instance_digest": parts[1],
                     "reports": [r.to_dict() for r in reps]})
            self._send_error_json(404, f"no route for GET {path}")
        except _BadRequest as exc:
            self._send_error_json(400, str(exc))

    def do_POST(self) -> None:      # noqa: N802 — http.server API
        path, _ = self._query()
        raw = self._drain_body()
        try:
            if path == "/jobs":
                sub = _parse_submission(self._parse_body(raw))
                job = self.server.service.queue.submit(
                    sub["inst"], sub["algorithms"], label=sub["label"],
                    priority=sub["priority"], timeout=sub["timeout"])
                return self._send_json(job.to_dict(), 201)
            self._send_error_json(404, f"no route for POST {path}")
        except _BadRequest as exc:
            self._send_error_json(400, str(exc))

    def _get_job(self, job_id: str) -> None:
        job = self.server.service.store.get_job(job_id)
        if job is None:
            return self._send_error_json(404, f"no job {job_id!r}")
        self._send_json(job.to_dict())

    def _get_reports(self, job_id: str, params: dict[str, str]) -> None:
        store = self.server.service.store
        job = store.get_job(job_id)
        if job is None:
            return self._send_error_json(404, f"no job {job_id!r}")
        if job.status not in ("done", "failed"):
            return self._send_json(
                {"error": f"job {job_id} is {job.status}; reports are "
                          "available once it is done", "status": job.status},
                409)
        reports = store.reports_for(job_id)
        ndjson = params.get("format") == "ndjson" or \
            NDJSON in (self.headers.get("Accept") or "")
        if ndjson:
            data = b"".join(json.dumps(r.to_dict()).encode() + b"\n"
                            for r in reports)
            self.send_response(200)
            self.send_header("Content-Type", NDJSON)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
            return
        self._send_json({"job_id": job_id, "status": job.status,
                         "error": job.error,
                         "reports": [r.to_dict() for r in reports]})


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # dozens of clients poll concurrently; the stdlib default backlog of
    # 5 drops connections under exactly the load the service exists for
    request_queue_size = 128
    service: "SchedulingService"


class SchedulingService:
    """The composed service: store + queue + HTTP server.

    ``port=0`` binds an ephemeral port (tests); read ``self.port`` after
    construction. ``start()`` recovers persisted jobs and begins serving
    in background threads; ``shutdown()`` stops cleanly (jobs still
    queued stay ``queued`` in the store for the next start).
    """

    def __init__(self, db_path: str, *, host: str = "127.0.0.1",
                 port: int = 8080, drainers: int = 2,
                 engine_workers: int = 0,
                 default_timeout: float | None = None,
                 quiet: bool = True) -> None:
        self.store = JobStore(db_path)
        self.queue = JobQueue(self.store, drainers=drainers,
                              engine_workers=engine_workers,
                              default_timeout=default_timeout)
        self.quiet = quiet
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.service = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None
        self._started_at = time.time()
        self.recovered = 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health(self) -> dict:
        cache = self.queue.cache
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self._started_at, 3),
            "queue_depth": self.queue.depth(),
            "active_jobs": self.queue.active(),
            "drainers": self.queue.drainers,
            "jobs": self.store.counts(),
            "cache": {"entries": len(cache), "hits": cache.hits,
                      "misses": cache.misses,
                      "hit_rate": round(cache.hit_rate, 4)},
        }

    def start(self) -> "SchedulingService":
        self.recovered = self.queue.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True, name="repro-http")
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self.queue.stop(wait=True)
        self.store.close()


def serve(db_path: str, *, host: str = "127.0.0.1", port: int = 8080,
          drainers: int = 2, engine_workers: int = 0,
          default_timeout: float | None = None,
          quiet: bool = False) -> None:
    """Run the service in the foreground until interrupted (CLI entry)."""
    svc = SchedulingService(db_path, host=host, port=port, drainers=drainers,
                            engine_workers=engine_workers,
                            default_timeout=default_timeout, quiet=quiet)
    svc.start()
    print(f"repro service listening on {svc.url}  "
          f"(db={db_path}, drainers={drainers}, "
          f"recovered {svc.recovered} job(s))", flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    finally:
        svc.shutdown()
