"""Stdlib-only threaded HTTP/JSON API over the job queue.

The stable, versioned surface lives under ``/v1``::

    POST /v1/solve            synchronous solve of one small instance
                              (a repro.api SolveRequest body; echoes the
                              canonical request plus its SolveReport)
    POST /v1/jobs             submit one instance x algorithms job
    GET  /v1/jobs             paginated jobs (?status=&limit=&offset=)
    GET  /v1/jobs/{id}        job status + timestamps
    GET  /v1/jobs/{id}/reports the job's SolveReports (?format=ndjson
                              or Accept: application/x-ndjson streams
                              one report per line)
    GET  /v1/results/{digest} every cached report for an instance
                              content hash (cross-client cache view)
    GET  /v1/solvers          the solver registry, rendered to JSON
    GET  /v1/healthz          queue depth, job counts, cache hit rate
    GET  /v1/metrics          Prometheus text exposition of the
                              process-wide metrics registry

Every ``/v1`` error is a uniform envelope::

    {"error": {"code": "unknown_solver",
               "message": "unknown solver 'splitable'; ...",
               "detail": {"suggestions": ["splittable", ...]}}}

with status-appropriate codes: ``invalid_json``, ``invalid_request``,
``unknown_solver``, ``no_matching_solver``, ``too_large``,
``infeasible`` (400), ``not_found`` (404), ``not_ready`` (409),
``body_too_large`` (413). ``infeasible`` is the stable code for an
instance that provably admits no schedule (``C > c * m``): the service
rejects it at submission instead of queueing work every solver would
refuse identically.

The pre-versioning routes (``/jobs``, ``/solvers``, ...) remain as thin
**deprecated** aliases with their original flat ``{"error": "..."}``
bodies, so older clients keep working; they answer with a
``Deprecation: true`` header and a ``Link`` to their ``/v1`` successor.

``POST /v1/jobs`` body::

    {"instance": {"processing_times": [...], "classes": [...],
                  "machines": 4, "class_slots": 2},
     "algorithms": ["splittable", ["ptas-splittable", {"delta": 2}]],
     "label": "demo", "priority": 5, "timeout": 30.0}

``POST /v1/solve`` takes a :class:`repro.api.SolveRequest` body — the
solver may be named (``"algorithm"``) or capability-selected
(``"query"``)::

    {"instance": {...}, "query": {"variant": "nonpreemptive",
                                  "max_ratio": "7/3"}}

Everything is ``http.server`` + ``json`` — no web framework, so the
service runs anywhere the package does. The HTTP layer is deliberately
thin: every handler delegates to :class:`~repro.service.store.JobStore`
/ :class:`~repro.service.queue.JobQueue` (and, for synchronous solves,
an in-process :class:`repro.api.Session`), which own all state.

Observability: every request enters a trace context — the ``X-Trace-Id``
header when the client sent a valid one, a fresh id otherwise. The id is
echoed in the response header, injected into every ``/v1`` JSON body
(``trace_id``), stored on submitted jobs, re-entered by the drainer that
runs them, and stamped into each resulting ``SolveReport.extra`` — one
id correlates the client call, the structured server/drainer log lines,
and the persisted reports. Request counts and latencies land in the
process-wide registry served at ``GET /v1/metrics``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..api import Session, SolveRequest
from ..core.errors import InfeasibleInstanceError, InvalidInstanceError
from ..resultcache import CACHE_HITS, CACHE_MISSES
from ..engine.pool import shutdown_pool
from ..io import instance_from_dict
from ..obs.log import get_logger
from ..obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..obs.metrics import REGISTRY
from ..obs.trace import (TRACE_HEADER, is_valid_trace_id, new_trace_id,
                         reset_trace_id, set_trace_id)
from ..registry import (NoMatchingSolverError, UnknownSolverError,
                        get_solver, list_solvers, suggest_solvers)
from .queue import JOBS_ACTIVE, QUEUE_DEPTH, JobQueue
from .storage import StoreBackend, open_store
from .store import JOB_STATUSES

__all__ = ["SchedulingService", "serve",
           "API_VERSION", "MAX_BODY_BYTES", "SYNC_SOLVE_MAX_JOBS"]

NDJSON = "application/x-ndjson"

API_VERSION = "v1"

#: Largest accepted request body. Instances past this belong in files,
#: not JSON-over-HTTP.
MAX_BODY_BYTES = 1 << 20

#: ``POST /v1/solve`` is for interactive-scale instances; bigger ones
#: must go through the asynchronous job queue.
SYNC_SOLVE_MAX_JOBS = 512

#: Jobs-per-page bounds for ``GET /v1/jobs``.
DEFAULT_PAGE_LIMIT = 50
MAX_PAGE_LIMIT = 500

_log = get_logger("repro.service.server")

_STORE_JOBS = REGISTRY.gauge(
    "repro_store_jobs", "Jobs in the backing store, by status "
    "(refreshed when /v1/metrics is scraped).", labelnames=("status",))
_STORE_WORKER_CLAIMS = REGISTRY.gauge(
    "repro_store_worker_claims", "Cumulative claims per worker node as "
    "recorded in the store — spans every process sharing it "
    "(refreshed when /v1/metrics is scraped).", labelnames=("worker",))
_HTTP_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total", "HTTP requests served, by normalized "
    "route, method and status code.",
    labelnames=("route", "method", "status"))
_HTTP_SECONDS = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request handling latency by normalized route and method.",
    labelnames=("route", "method"))

#: Fixed GET routes; parameterized ones are normalized below so metric
#: label cardinality stays bounded no matter what paths clients probe.
_FIXED_ROUTES = {"/", "/healthz", "/solvers", "/jobs", "/metrics", "/solve"}


def _route_label(sub: str) -> str:
    if sub in _FIXED_ROUTES:
        return sub
    parts = sub.lstrip("/").split("/")
    if parts[0] == "jobs" and len(parts) == 2:
        return "/jobs/{id}"
    if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "reports":
        return "/jobs/{id}/reports"
    if parts[0] == "results" and len(parts) == 2:
        return "/results/{digest}"
    return "other"


class _ApiError(Exception):
    """An HTTP error with its envelope fields."""

    def __init__(self, status: int, code: str, message: str,
                 detail: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.detail = detail


def _bad(code: str, message: str, detail: Any = None) -> _ApiError:
    return _ApiError(400, code, message, detail)


def _check_feasible(inst) -> None:
    """Reject provably unschedulable instances (``C > c * m``) with the
    stable ``infeasible`` envelope code — uniform across ``POST /v1/jobs``
    and ``POST /v1/solve``, mirroring
    :class:`~repro.core.errors.InfeasibleInstanceError` in the library."""
    try:
        inst.require_feasible()
    except InfeasibleInstanceError as exc:
        raise _bad("infeasible", str(exc),
                   {"num_classes": exc.num_classes,
                    "slot_budget": exc.slot_budget})


def _parse_algorithms(raw: Any) -> list[tuple[str, dict]]:
    if not isinstance(raw, list) or not raw:
        raise _bad("invalid_request", "'algorithms' must be a non-empty list")
    out: list[tuple[str, dict]] = []
    for item in raw:
        if isinstance(item, str):
            name, kwargs = item, {}
        elif isinstance(item, list) and len(item) == 2 \
                and isinstance(item[0], str) and isinstance(item[1], dict):
            name, kwargs = item
        else:
            raise _bad(
                "invalid_request",
                f"algorithm entries are 'name' or ['name', {{kwargs}}]; "
                f"got {item!r}")
        try:
            spec = get_solver(name)     # unknown names fail at submit time
        except UnknownSolverError as exc:
            raise _bad("unknown_solver", str(exc.args[0]),
                       {"name": name, "suggestions": suggest_solvers(name)})
        unknown = sorted(set(kwargs) - set(spec.accepts))
        if unknown:
            raise _bad(
                "invalid_request",
                f"solver {spec.name!r} does not accept kwargs {unknown}")
        out.append((spec.name, dict(kwargs)))
    return out


def _parse_submission(body: dict) -> dict:
    if not isinstance(body, dict):
        raise _bad("invalid_request", "body must be a JSON object")
    if "instance" not in body:
        raise _bad("invalid_request", "missing 'instance'")
    try:
        inst = instance_from_dict(body["instance"])
    except (InvalidInstanceError, KeyError, TypeError, ValueError) as exc:
        raise _bad("invalid_request", f"invalid instance: {exc}")
    _check_feasible(inst)
    timeout = body.get("timeout")
    if timeout is not None and (not isinstance(timeout, (int, float))
                                or timeout <= 0):
        raise _bad("invalid_request", "'timeout' must be a positive number")
    priority = body.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise _bad("invalid_request", "'priority' must be an integer")
    return dict(inst=inst,
                algorithms=_parse_algorithms(body.get("algorithms")),
                label=str(body.get("label", "")), priority=priority,
                timeout=float(timeout) if timeout is not None else None)


def _solver_dict(spec) -> dict:
    return {"name": spec.name, "variant": spec.variant, "kind": spec.kind,
            "ratio": spec.ratio_label, "theorem": spec.theorem or None,
            "needs_milp": spec.needs_milp,
            "needs_nfold": spec.needs_nfold,
            "accepts": list(spec.accepts), "summary": spec.summary,
            "default_epsilon": (None if spec.default_epsilon is None
                                else str(spec.default_epsilon)),
            "restricted": spec.supports_fn is not None}


def _split_version(path: str) -> tuple[bool, str]:
    """``/v1/jobs`` -> (True, "/jobs"); ``/jobs`` -> (False, "/jobs")."""
    if path == "/v1":
        return True, "/"
    if path.startswith("/v1/"):
        return True, path[len("/v1"):]
    return False, path


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: "_HTTPServer"

    #: Set per request: False while serving a legacy (unversioned) alias,
    #: which switches error bodies to the pre-/v1 flat shape and stamps
    #: deprecation headers on every response.
    _v1 = True
    _successor = ""
    _trace_id = ""
    _status = 0

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def log_message(self, fmt: str, *args) -> None:
        # the stdlib access log is replaced by the structured
        # ``http_request`` event emitted from _handle
        pass

    def _send_payload(self, data: bytes, content_type: str,
                      status: int = 200) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if self._trace_id:
            self.send_header(TRACE_HEADER, self._trace_id)
        if not self._v1:
            self.send_header("Deprecation", "true")
            self.send_header("Link",
                             f'<{self._successor}>; rel="successor-version"')
        self.end_headers()
        self.wfile.write(data)

    def _send_json(self, payload: Any, status: int = 200) -> None:
        if self._v1 and self._trace_id and isinstance(payload, dict) \
                and not payload.get("trace_id"):
            # every /v1 JSON body carries the request's trace id; a job
            # dict that already has its own (submission-time) id keeps it
            payload["trace_id"] = self._trace_id
        self._send_payload(json.dumps(payload, indent=2).encode() + b"\n",
                           "application/json", status)

    def _send_api_error(self, exc: _ApiError) -> None:
        if self._v1:
            body: dict = {"error": {"code": exc.code,
                                    "message": exc.message,
                                    "detail": exc.detail}}
        else:
            # the flat pre-/v1 shape older clients parse
            body = {"error": exc.message}
            if isinstance(exc.detail, dict) and "status" in exc.detail:
                body["status"] = exc.detail["status"]
        self._send_json(body, exc.status)

    def _drain_body(self) -> bytes:
        # the body is always consumed, even for requests that error out:
        # leaving it unread would desync the next request on a reused
        # keep-alive connection (protocol_version is HTTP/1.1)
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # too big to drain politely — drop the connection after the
            # error instead of reading megabytes we will reject anyway
            self.close_connection = True
            raise _ApiError(
                413, "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        return self.rfile.read(length) if length > 0 else b""

    @staticmethod
    def _parse_body(raw: bytes) -> dict:
        if not raw:
            raise _bad("invalid_json", "missing request body")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _bad("invalid_json", f"body is not valid JSON: {exc}")

    def _query(self) -> tuple[str, dict[str, str]]:
        path, _, query = self.path.partition("?")
        params = {}
        for pair in query.split("&"):
            if "=" in pair:
                k, _, v = pair.partition("=")
                params[k] = v
        return path.rstrip("/") or "/", params

    def _int_param(self, params: dict[str, str], key: str,
                   default: int, lo: int = 0,
                   hi: int | None = None) -> int:
        if key not in params:
            return default
        try:
            value = int(params[key])
        except ValueError:
            raise _bad("invalid_request",
                       f"'{key}' must be an integer, got {params[key]!r}")
        if value < lo or (hi is not None and value > hi):
            bounds = f"in [{lo}, {hi}]" if hi is not None else f">= {lo}"
            raise _bad("invalid_request",
                       f"'{key}' must be {bounds}, got {value}")
        return value

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:       # noqa: N802 — http.server API
        self._handle("GET")

    def do_POST(self) -> None:      # noqa: N802 — http.server API
        self._handle("POST")

    def _handle(self, method: str) -> None:
        """Per-request front door: enter the trace context (taken from a
        valid ``X-Trace-Id`` header, freshly generated otherwise), route,
        and record metrics plus one structured log line on the way out."""
        t0 = time.monotonic()
        path, params = self._query()
        self._v1, sub = _split_version(path)
        self._successor = f"/{API_VERSION}{sub}"
        header = self.headers.get(TRACE_HEADER) or ""
        self._trace_id = header if is_valid_trace_id(header) \
            else new_trace_id()
        self._status = 0
        token = set_trace_id(self._trace_id)
        try:
            if method == "GET":
                self._route_get(sub, params)
            else:
                self._route_post(path, sub)
        except _ApiError as exc:
            self._send_api_error(exc)
        finally:
            elapsed = time.monotonic() - t0
            route = _route_label(sub)
            status = self._status or 500    # no response sent = aborted
            _HTTP_REQUESTS.inc(route=route, method=method,
                               status=str(status))
            _HTTP_SECONDS.observe(elapsed, route=route, method=method)
            # --quiet demotes per-request chatter to debug level
            _log.log("debug" if self.server.service.quiet else "info",
                     "http_request", method=method, path=path, route=route,
                     status=status, duration_s=round(elapsed, 6))
            reset_trace_id(token)

    def _route_post(self, path: str, sub: str) -> None:
        raw = self._drain_body()
        if sub == "/jobs":
            return self._post_job(raw)
        if sub == "/solve" and self._v1:
            return self._post_solve(raw)
        raise _ApiError(404, "not_found", f"no route for POST {path}")

    def _route_get(self, sub: str, params: dict[str, str]) -> None:
        if sub == "/healthz":
            return self._send_json(self.server.service.health())
        if sub == "/metrics" and self._v1:
            # the store is shared fleet state the process registry cannot
            # see; derive its gauges at scrape time so one server scrape
            # reports every worker draining the same store
            self.server.service.refresh_store_gauges()
            return self._send_payload(REGISTRY.render().encode(),
                                      METRICS_CONTENT_TYPE)
        if sub == "/solvers":
            return self._send_json(
                {"solvers": [_solver_dict(s) for s in list_solvers()]})
        if sub == "/jobs":
            return self._get_jobs(params)
        parts = sub.lstrip("/").split("/")
        if parts[0] == "jobs" and len(parts) == 2:
            return self._get_job(parts[1])
        if parts[0] == "jobs" and len(parts) == 3 and parts[2] == "reports":
            return self._get_reports(parts[1], params)
        if parts[0] == "results" and len(parts) == 2:
            reps = self.server.service.store.cached_reports_for_digest(
                parts[1])
            return self._send_json(
                {"instance_digest": parts[1],
                 "reports": [r.to_dict() for r in reps]})
        raise _ApiError(404, "not_found", f"no route for GET {sub}")

    def _get_jobs(self, params: dict[str, str]) -> None:
        store = self.server.service.store
        if not self._v1:
            # the pre-/v1 contract: default 100, any integer limit, any
            # status string (unknown ones just match nothing), no
            # pagination metadata — old clients must keep working
            limit = self._int_param(params, "limit", 100,
                                    lo=-(1 << 62), hi=None)
            jobs = store.list_jobs(status=params.get("status"),
                                   limit=limit)
            return self._send_json({"jobs": [j.to_dict() for j in jobs]})
        status = params.get("status")
        if status is not None and status not in JOB_STATUSES:
            raise _bad("invalid_request",
                       f"unknown status {status!r}; "
                       f"one of: {', '.join(JOB_STATUSES)}")
        limit = self._int_param(params, "limit", DEFAULT_PAGE_LIMIT,
                                lo=1, hi=MAX_PAGE_LIMIT)
        offset = self._int_param(params, "offset", 0, lo=0)
        jobs = store.list_jobs(status=status, limit=limit, offset=offset)
        total = store.count_jobs(status=status)
        nxt = offset + len(jobs)
        self._send_json({"jobs": [j.to_dict() for j in jobs],
                         "total": total, "limit": limit, "offset": offset,
                         "next_offset": nxt if nxt < total else None})

    def _post_job(self, raw: bytes) -> None:
        sub = _parse_submission(self._parse_body(raw))
        job = self.server.service.queue.submit(
            sub["inst"], sub["algorithms"], label=sub["label"],
            priority=sub["priority"], timeout=sub["timeout"])
        self._send_json(job.to_dict(), 201)

    def _post_solve(self, raw: bytes) -> None:
        body = self._parse_body(raw)
        try:
            request = SolveRequest.from_dict(body)
        except (InvalidInstanceError, KeyError, TypeError,
                ValueError) as exc:
            raise _bad("invalid_request", f"invalid solve request: {exc}")
        _check_feasible(request.instance)
        if request.instance.num_jobs > SYNC_SOLVE_MAX_JOBS:
            raise _bad(
                "too_large",
                f"synchronous solves are capped at {SYNC_SOLVE_MAX_JOBS} "
                f"jobs (got {request.instance.num_jobs}); submit the "
                f"instance to POST /{API_VERSION}/jobs instead")
        try:
            # solver resolution happens inside the backend, exactly
            # once; its failures map to envelope codes here
            report = self.server.service.solve_sync(request)
        except UnknownSolverError as exc:
            raise _bad("unknown_solver", str(exc.args[0]),
                       {"name": request.algorithm,
                        "suggestions": suggest_solvers(
                            request.algorithm or "")})
        except NoMatchingSolverError as exc:
            raise _bad("no_matching_solver", str(exc),
                       request.query.to_dict())
        except (TypeError, ValueError) as exc:
            raise _bad("invalid_request", str(exc))
        self._send_json({"request": request.to_dict(),
                         "report": report.to_dict()})

    def _get_job(self, job_id: str) -> None:
        job = self.server.service.store.get_job(job_id)
        if job is None:
            raise _ApiError(404, "not_found", f"no job {job_id!r}")
        self._send_json(job.to_dict())

    def _get_reports(self, job_id: str, params: dict[str, str]) -> None:
        store = self.server.service.store
        job = store.get_job(job_id)
        if job is None:
            raise _ApiError(404, "not_found", f"no job {job_id!r}")
        if job.status not in ("done", "failed", "quarantined"):
            raise _ApiError(
                409, "not_ready",
                f"job {job_id} is {job.status}; reports are available "
                f"once it is done", {"status": job.status})
        reports = store.reports_for(job_id)
        ndjson = params.get("format") == "ndjson" or \
            NDJSON in (self.headers.get("Accept") or "")
        if ndjson:
            data = b"".join(json.dumps(r.to_dict()).encode() + b"\n"
                            for r in reports)
            return self._send_payload(data, NDJSON)
        self._send_json({"job_id": job_id, "status": job.status,
                         "error": job.error,
                         "reports": [r.to_dict() for r in reports]})


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # dozens of clients poll concurrently; the stdlib default backlog of
    # 5 drops connections under exactly the load the service exists for
    request_queue_size = 128
    service: "SchedulingService"


class SchedulingService:
    """The composed service: store backend + queue + HTTP server.

    ``db_path`` names the storage backend: a filesystem path (legacy), a
    ``store_url`` (``sqlite:///jobs.db``, ``memory://``), or an already
    open :class:`~repro.service.storage.StoreBackend` — the service then
    shares it and leaves closing to its owner. ``port=0`` binds an
    ephemeral port (tests); read ``self.port`` after construction.
    ``start()`` recovers persisted jobs and begins serving in background
    threads; ``shutdown()`` stops cleanly (jobs still queued stay
    ``queued`` in the store for the next start).

    ``embedded_workers=False`` runs the front door alone: jobs are
    accepted, persisted and supervised (expired leases still get
    reclaimed) but executed only by external ``repro worker`` processes
    pointed at the same store.
    """

    #: Ceiling for synchronous ``POST /v1/solve`` runs submitted without
    #: their own timeout — a handler thread must never hang forever.
    SYNC_DEFAULT_TIMEOUT = 60.0

    def __init__(self, db_path: str | StoreBackend, *,
                 host: str = "127.0.0.1",
                 port: int = 8080, drainers: int = 2,
                 engine_workers: int = 0,
                 default_timeout: float | None = None,
                 lease_seconds: float | None = 30.0,
                 max_attempts: int | None = None,
                 embedded_workers: bool = True,
                 cache_shards: int | None = None,
                 quiet: bool = True) -> None:
        if isinstance(db_path, StoreBackend):
            self.store = db_path
            self._owns_store = False
        else:
            self.store = open_store(str(db_path), cache_shards=cache_shards)
            self._owns_store = True
        if not embedded_workers:
            drainers = 0
        self.queue = JobQueue(self.store, drainers=drainers,
                              engine_workers=engine_workers,
                              default_timeout=default_timeout,
                              lease_seconds=lease_seconds,
                              max_attempts=max_attempts)
        # synchronous /v1/solve runs inline on the handler thread; no
        # shared cache so want_schedule requests always carry their
        # schedule instead of a cache-stripped report
        self._sync_session = Session()
        self.default_timeout = default_timeout
        self.quiet = quiet
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.service = self
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None
        self._started_at = time.time()
        self.recovered = 0
        self.released = 0

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def solve_sync(self, request: SolveRequest) -> Any:
        """Run one ``POST /v1/solve`` request inline, with the service's
        default timeout as a backstop."""
        if request.timeout is None:
            request = replace(
                request,
                timeout=self.default_timeout or self.SYNC_DEFAULT_TIMEOUT)
        return self._sync_session.solve(request)

    def health(self) -> dict:
        # health is a readout of the same registry /v1/metrics serves, so
        # the two endpoints can never disagree; counters are process-wide
        # and cumulative, gauges reflect the live queue
        hits = CACHE_HITS.value(cache="service")
        misses = CACHE_MISSES.value(cache="service")
        lookups = hits + misses
        return {
            "status": "ok",
            "api_version": API_VERSION,
            "uptime_s": round(time.time() - self._started_at, 3),
            "store": self.store.url,
            "queue_depth": int(QUEUE_DEPTH.value()),
            "active_jobs": int(JOBS_ACTIVE.value()),
            "drainers": self.queue.drainers,
            "jobs": self.store.counts(),
            "cache": {"entries": len(self.queue.cache), "hits": int(hits),
                      "misses": int(misses),
                      "hit_rate": round(hits / lookups, 4) if lookups
                      else 0.0},
        }

    def refresh_store_gauges(self) -> None:
        """Project shared store state (job counts, per-worker claim
        totals) into registry gauges — called on every metrics scrape so
        the numbers cover external workers too."""
        for status, count in self.store.counts().items():
            _STORE_JOBS.set(count, status=status)
        for worker, claims in self.store.claims_by_worker().items():
            _STORE_WORKER_CLAIMS.set(claims, worker=worker)

    def start(self) -> "SchedulingService":
        self.recovered = self.queue.start()
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True, name="repro-http")
        self._thread.start()
        return self

    def shutdown(self, *, drain_grace: float | None = None) -> None:
        """Stop serving. The HTTP front door closes first (no new work),
        then the queue drains: without ``drain_grace``, until every
        in-flight job finishes; with it, at most that many seconds — the
        leases of jobs still running are then released back to the store
        untouched, for the next start (or another node) to pick up."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
        self.released = self.queue.stop(wait=True, grace=drain_grace)
        if self._owns_store:
            self.store.close()
        # release the engine's shared process pool the drainers fanned out
        # over; it is rebuilt lazily if this process runs more batches
        shutdown_pool(wait=False)


def serve(db_path: str, *, host: str = "127.0.0.1", port: int = 8080,
          drainers: int = 2, engine_workers: int = 0,
          default_timeout: float | None = None,
          lease_seconds: float | None = 30.0,
          max_attempts: int | None = None,
          drain_grace: float = 10.0,
          embedded_workers: bool = True,
          cache_shards: int | None = None,
          quiet: bool = False, log_level: str | None = None) -> None:
    """Run the service in the foreground until interrupted (CLI entry).

    ``db_path`` may be a filesystem path or a ``store_url``
    (``sqlite:///jobs.db``, ``memory://``). ``embedded_workers=False``
    accepts and supervises jobs but leaves execution to external
    ``repro worker`` processes sharing the store.

    ``--quiet`` is now just a log level: it selects ``warning`` where the
    default is ``info``; an explicit ``log_level`` wins over both.

    SIGTERM and SIGINT both shut down gracefully: the HTTP listener
    closes (no new submissions), in-flight jobs get up to
    ``drain_grace`` seconds to finish, leases that cannot are released
    back to the store, and the process exits 0."""
    import signal as _signal

    from ..obs.log import set_level
    set_level(log_level or ("warning" if quiet else "info"))
    svc = SchedulingService(db_path, host=host, port=port, drainers=drainers,
                            engine_workers=engine_workers,
                            default_timeout=default_timeout,
                            lease_seconds=lease_seconds,
                            max_attempts=max_attempts,
                            embedded_workers=embedded_workers,
                            cache_shards=cache_shards, quiet=quiet)
    svc.start()
    workers = svc.queue.drainers if embedded_workers else "none (external)"
    print(f"repro service listening on {svc.url}/{API_VERSION}  "
          f"(store={svc.store.url}, workers={workers}, "
          f"recovered {svc.recovered} job(s))", flush=True)
    stop = threading.Event()
    previous = {}
    try:
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            previous[sig] = _signal.signal(
                sig, lambda signum, frame: stop.set())
    except (ValueError, OSError):   # pragma: no cover - non-main thread
        pass
    try:
        while not stop.wait(0.5):
            pass
        print(f"shutting down (draining up to {drain_grace:g}s)",
              flush=True)
    except KeyboardInterrupt:       # signal handlers not installed
        print("shutting down", flush=True)
    finally:
        for sig, handler in previous.items():
            try:
                _signal.signal(sig, handler)
            except (ValueError, OSError):   # pragma: no cover
                pass
        svc.shutdown(drain_grace=drain_grace)
        if svc.released:
            print(f"released {svc.released} unfinished lease(s)",
                  flush=True)
