"""Thread-safe priority job queue draining into the execution engine.

The queue owns N drainer threads. Each pops the highest-priority queued
job (FIFO within a priority level), claims it with a store lease, runs
its instance x algorithms grid through a :class:`repro.api.Session`
(the same facade every other consumer uses), and persists the resulting
reports. The session's cache hook points at the store's ``results``
table, so repeated digests are served without solver work — across
jobs, clients and restarts.

Crash safety. A supervisor thread heartbeats the lease of every
in-flight job, reclaims jobs whose lease expired (their drainer died or
hung — the store requeues them with exponential backoff + full jitter,
or quarantines them once ``max_attempts`` is spent), promotes
backoff-delayed retries into the heap when due, and respawns drainer
threads that died (e.g. to an injected ``drainer_loop`` fault or a
``CancelledError`` escaping a cancelled pool future). Retryable job
failures (broken pools, injected faults, I/O errors) are requeued with
the same backoff; non-retryable ones (bad input) fail terminally on the
first attempt.

Drainers are plain threads, not the main thread, so the engine's
``SIGALRM`` timeout cannot arm for inline solves; per-run timeouts here
rely on :mod:`repro.engine.runner`'s watchdog-thread fallback (or, with
``engine_workers > 1``, on ``SIGALRM`` inside the pool workers, which do
run solver code on their main thread).
"""

from __future__ import annotations

import heapq
import itertools
import random
import sqlite3
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Iterable, Mapping

from ..api import BatchRequest, Session
from ..core.instance import Instance
from ..faults import injection
from ..faults.injection import FaultInjected
from ..obs.log import get_logger
from ..obs.metrics import REGISTRY
from ..obs.trace import current_trace_id, trace_context
from .store import JobRecord, JobStore, SqliteReportCache

__all__ = ["JobQueue"]

_log = get_logger("repro.service.queue")

QUEUE_DEPTH = REGISTRY.gauge(
    "repro_queue_depth", "Jobs waiting in the queue (in-flight excluded).")
JOBS_ACTIVE = REGISTRY.gauge(
    "repro_jobs_active", "Jobs currently being solved by a drainer.")
_JOBS_SUBMITTED = REGISTRY.counter(
    "repro_jobs_submitted_total", "Jobs accepted into the queue.")
JOBS_COMPLETED = REGISTRY.counter(
    "repro_jobs_completed_total", "Jobs finished, by terminal status.",
    labelnames=("status",))
_DRAIN_SECONDS = REGISTRY.histogram(
    "repro_job_drain_seconds",
    "Wall time from claim to persisted result, per job.")
JOB_RETRIES = REGISTRY.counter(
    "repro_job_retries_total",
    "Jobs requeued for another attempt, by reason "
    "(error = drainer caught a retryable failure; "
    "reclaim = lease expired and the supervisor took the job back).",
    labelnames=("reason",))
LEASE_RECLAIMS = REGISTRY.counter(
    "repro_lease_reclaims_total",
    "Expired job leases reclaimed by the supervisor.")
_DRAINER_RESTARTS = REGISTRY.counter(
    "repro_drainer_restarts_total",
    "Drainer threads respawned by the supervisor after dying mid-job.")


class JobQueue:
    """Priority queue feeding persisted jobs to a ``repro.api.Session``.

    Parameters
    ----------
    store:
        The persistent job store; the queue never holds state the store
        does not — the heap is just an index over ``status='queued'``.
    drainers:
        Number of worker threads consuming jobs (0 = accept-only, useful
        for tests and draining-paused maintenance).
    engine_workers:
        Process fan-out per job. The default 0 solves inline on the
        drainer thread — one process, ``drainers`` concurrent solves;
        raise it to fan each job out over processes.
    default_timeout:
        Per-run timeout (seconds) for jobs submitted without their own.
    lease_seconds:
        Length of the store lease a drainer holds (and keeps
        heartbeating) while running a job. ``None`` disables leases and
        supervision — the legacy die-and-recover-on-restart behaviour.
    max_attempts:
        Attempts per job before quarantine (``None`` = store default).
    reclaim_interval:
        Supervisor tick (heartbeats, reclaims, retry promotion, drainer
        respawn). Default: a third of the lease, capped at 1s.
    retry_backoff_base / retry_backoff_cap:
        Exponential-backoff envelope for retries: attempt ``k`` waits
        ``uniform(0, min(cap, base * 2**(k-1)))`` seconds (full jitter).
    """

    def __init__(self, store: JobStore, *, drainers: int = 2,
                 engine_workers: int = 0,
                 default_timeout: float | None = None,
                 lease_seconds: float | None = 30.0,
                 max_attempts: int | None = None,
                 reclaim_interval: float | None = None,
                 retry_backoff_base: float = 0.2,
                 retry_backoff_cap: float = 30.0) -> None:
        if drainers < 0:
            raise ValueError(f"drainers must be >= 0, got {drainers}")
        if lease_seconds is not None and lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be > 0 or None, got {lease_seconds}")
        self.store = store
        self.cache = SqliteReportCache(store)
        self.drainers = drainers
        self.engine_workers = engine_workers
        self.default_timeout = default_timeout
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        if reclaim_interval is None and lease_seconds is not None:
            reclaim_interval = min(1.0, lease_seconds / 3.0)
        self.reclaim_interval = reclaim_interval
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        self._session = Session(workers=engine_workers, cache=self.cache)
        self._heap: list[tuple[int, int, str]] = []   # (-prio, seq, job_id)
        self._delayed: list[tuple[float, int, int, str]] = []
        self._seq = itertools.count()
        self._cv = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._supervisor: threading.Thread | None = None
        self._inflight: set[str] = set()
        self._active = 0
        self._stopping = False
        self._started = False
        self._names = itertools.count()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> int:
        """Recover persisted work, spawn the drainers (and, when leases
        are on, the supervisor). Returns the number of jobs re-enqueued
        from a previous process."""
        if self.engine_workers > 1 and self.drainers > 0:
            # pre-warm the shared engine pool to the *aggregate* demand:
            # each drainer's batch caps its own fan-out at engine_workers,
            # so concurrent jobs need drainers x engine_workers width to
            # run at full parallelism (matching the capacity the service
            # had when every run_batch built a private pool)
            from ..engine.pool import get_pool
            get_pool(self.drainers * self.engine_workers)
        recovered = self.store.recover_incomplete()
        with self._cv:
            self._stopping = False
            self._started = True
            for job in recovered:
                heapq.heappush(self._heap,
                               (-job.priority, next(self._seq), job.id))
            QUEUE_DEPTH.set(len(self._heap))
            self._cv.notify_all()
        for _ in range(self.drainers):
            self._spawn_drainer()
        if self.lease_seconds is not None and self.drainers > 0:
            self._supervisor = threading.Thread(
                target=self._supervise_loop, daemon=True,
                name="repro-supervisor")
            self._supervisor.start()
        return len(recovered)

    def _spawn_drainer(self) -> threading.Thread:
        t = threading.Thread(target=self._drain_loop, daemon=True,
                             name=f"repro-drainer-{next(self._names)}")
        t.start()
        self._threads.append(t)
        return t

    def stop(self, wait: bool = True, *, grace: float | None = None) -> int:
        """Stop accepting pops; drainers exit after their current job.

        With ``grace`` set, waits at most that many seconds for in-flight
        jobs, then releases the leases of whatever is still running so
        another process (or the next start) can pick the work up without
        burning a retry attempt. Returns the number of leases released."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        deadline = (time.monotonic() + grace) if grace is not None else None
        if wait:
            for t in self._threads:
                if deadline is None:
                    t.join()
                else:
                    t.join(max(0.0, deadline - time.monotonic()))
        if self._supervisor is not None:
            self._supervisor.join(1.0 if grace is not None else None)
            self._supervisor = None
        released = 0
        with self._cv:
            leftover = list(self._inflight)
        for job_id in leftover:
            if self.store.release_lease(job_id):
                released += 1
                _log.warning("lease_released", job_id=job_id)
        self._threads.clear()
        return released

    def join(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty (including delayed retries) and
        no drainer is mid-job."""
        with self._cv:
            return self._cv.wait_for(
                lambda: not self._heap and not self._delayed
                and self._active == 0, timeout)

    # ------------------------------------------------------------------ #
    # producing & introspection
    # ------------------------------------------------------------------ #

    def submit(self, inst: Instance,
               algorithms: Iterable[tuple[str, Mapping[str, Any]]],
               *, label: str = "", priority: int = 0,
               timeout: float | None = None) -> JobRecord:
        """Persist a job and wake a drainer. Safe from any thread."""
        if timeout is None:
            timeout = self.default_timeout
        kwargs: dict[str, Any] = {}
        if self.max_attempts is not None:
            kwargs["max_attempts"] = self.max_attempts
        job = self.store.create_job(inst, algorithms, label=label,
                                    priority=priority, timeout=timeout,
                                    trace_id=current_trace_id(), **kwargs)
        _JOBS_SUBMITTED.inc()
        with self._cv:
            heapq.heappush(self._heap, (-job.priority, next(self._seq),
                                        job.id))
            QUEUE_DEPTH.set(len(self._heap))
            self._cv.notify()
        return job

    def depth(self) -> int:
        """Jobs waiting in the queue (not counting in-flight ones)."""
        with self._cv:
            return len(self._heap)

    def active(self) -> int:
        """Jobs currently being solved by a drainer."""
        with self._cv:
            return self._active

    # ------------------------------------------------------------------ #
    # consuming
    # ------------------------------------------------------------------ #

    def _drain_loop(self) -> None:
        while True:
            with self._cv:
                self._cv.wait_for(lambda: self._heap or self._stopping)
                if self._stopping:
                    return
                _, _, job_id = heapq.heappop(self._heap)
                QUEUE_DEPTH.set(len(self._heap))
                self._active += 1
                JOBS_ACTIVE.set(self._active)
            try:
                self._run_job(job_id)
            finally:
                with self._cv:
                    self._active -= 1
                    JOBS_ACTIVE.set(self._active)
                    self._cv.notify_all()

    def _backoff(self, attempts: int) -> float:
        """Full-jitter exponential backoff for retry attempt ``attempts``."""
        ceiling = min(self.retry_backoff_cap,
                      self.retry_backoff_base * 2 ** max(0, attempts - 1))
        return random.uniform(0.0, ceiling)

    @staticmethod
    def _retryable(exc: BaseException) -> bool:
        """Whether a job failure is worth another attempt. Infrastructure
        trouble (dead pools, injected faults, I/O hiccups) is; malformed
        input (``ValueError`` and friends from the solvers) is not."""
        if isinstance(exc, (BrokenProcessPool, FaultInjected, OSError,
                            ConnectionError, MemoryError,
                            sqlite3.OperationalError)):
            return True
        if isinstance(exc, RuntimeError):
            msg = str(exc).lower()
            return "shutdown" in msg or "broken" in msg
        return False

    def _schedule_retry(self, job_id: str, priority: int,
                        due: float | None) -> None:
        """Park ``job_id`` until ``due`` (wall-clock), or push it straight
        into the heap when already due. Caller need not hold the cv."""
        now = time.time()
        with self._cv:
            if due is not None and due > now:
                heapq.heappush(self._delayed,
                               (due, -priority, next(self._seq), job_id))
            else:
                heapq.heappush(self._heap,
                               (-priority, next(self._seq), job_id))
                QUEUE_DEPTH.set(len(self._heap))
            self._cv.notify()

    def _run_job(self, job_id: str) -> None:
        if not self.store.claim_job(job_id, self.lease_seconds):
            # deleted, finished, another drainer won the id — or the job
            # is parked behind its retry backoff (e.g. after recovery
            # raced a reclaim); re-park it instead of dropping it
            job = self.store.get_job(job_id)
            if job is not None and job.status == "queued" \
                    and job.next_attempt_at is not None \
                    and job.next_attempt_at > time.time():
                self._schedule_retry(job_id, job.priority,
                                     job.next_attempt_at)
            return
        # a drainer_loop fault fires *after* the claim and *before*
        # in-flight tracking: the thread dies holding a live lease, and
        # only supervision (lease reclaim + drainer respawn) saves the job
        injection.maybe_raise("drainer_loop")
        with self._cv:
            self._inflight.add(job_id)
        try:
            self._execute_claimed(job_id)
        finally:
            with self._cv:
                self._inflight.discard(job_id)

    def _execute_claimed(self, job_id: str) -> None:
        job = self.store.get_job(job_id)
        # re-enter the job's submission trace on this drainer thread
        # (contextvars do not cross threads); jobs from a pre-trace
        # database get a fresh ID so their reports are still correlated
        with trace_context(job.trace_id):
            t0 = time.monotonic()
            _log.info("job_started", job_id=job_id, label=job.label,
                      attempt=job.attempts, algorithms=len(job.algorithms))
            try:
                reports = self._session.solve_batch(BatchRequest.create(
                    [(job.label or job_id, job.instance)],
                    list(job.algorithms), timeout=job.timeout))
                finished = self.store.finish_job(job_id, reports)
            except Exception as exc:    # noqa: BLE001 — job fails, queue lives
                self._job_failed(job, exc, time.monotonic() - t0)
                return
            elapsed = time.monotonic() - t0
            if not finished:
                # our lease was reclaimed mid-run and a retry superseded
                # us; the store refused the stale write
                _log.warning("job_finish_stale", job_id=job_id,
                             wall_time_s=round(elapsed, 6))
                return
            JOBS_COMPLETED.inc(status="done")
            _DRAIN_SECONDS.observe(elapsed)
            _log.info("job_finished", job_id=job_id, status="done",
                      error="", wall_time_s=round(elapsed, 6))

    def _job_failed(self, job: JobRecord, exc: Exception,
                    elapsed: float) -> None:
        """Route a failed attempt: requeue with backoff, quarantine, or
        fail terminally. Runs on the drainer thread, inside the job's
        trace context."""
        error = f"{type(exc).__name__}: {exc}"
        attempts = job.attempts     # fetched post-claim: already counted
        if self._retryable(exc) and self.lease_seconds is not None:
            if attempts < job.max_attempts:
                delay = self._backoff(attempts)
                if self.store.requeue_job(job.id, error=error, delay=delay):
                    JOB_RETRIES.inc(reason="error")
                    _log.warning("job_retrying", job_id=job.id, error=error,
                                 attempt=attempts,
                                 max_attempts=job.max_attempts,
                                 delay_s=round(delay, 3))
                    self._schedule_retry(job.id, job.priority,
                                         time.time() + delay)
                return
            if self.store.quarantine_job(
                    job.id, f"{error} (attempt {attempts}/"
                    f"{job.max_attempts}, no attempts left)"):
                JOBS_COMPLETED.inc(status="quarantined")
                _DRAIN_SECONDS.observe(elapsed)
                _log.error("job_quarantined", job_id=job.id, error=error,
                           attempt=attempts, wall_time_s=round(elapsed, 6))
            return
        try:
            finished = self.store.finish_job(job.id, [], error=error)
        except Exception as exc2:   # noqa: BLE001 — e.g. store_commit fault
            # the failure record itself failed to commit; leave the row
            # running — lease reclaim will retry or quarantine it
            _log.warning("job_fail_commit_failed", job_id=job.id,
                         error=f"{type(exc2).__name__}: {exc2}")
            return
        if finished:
            JOBS_COMPLETED.inc(status="failed")
            _DRAIN_SECONDS.observe(elapsed)
            _log.warning("job_finished", job_id=job.id, status="failed",
                         error=error, wall_time_s=round(elapsed, 6))

    # ------------------------------------------------------------------ #
    # supervision
    # ------------------------------------------------------------------ #

    def _supervise_loop(self) -> None:
        interval = self.reclaim_interval or 1.0
        while True:
            with self._cv:
                if self._cv.wait_for(lambda: self._stopping,
                                     timeout=interval):
                    return
            try:
                self._tick()
            except Exception as exc:    # noqa: BLE001 — supervisor survives
                _log.error("supervisor_error",
                           error=f"{type(exc).__name__}: {exc}")

    def _tick(self) -> None:
        """One supervisor pass: heartbeat, reclaim, promote, respawn."""
        with self._cv:
            inflight = list(self._inflight)
        for job_id in inflight:
            self.store.heartbeat(job_id, self.lease_seconds)

        requeued, quarantined = self.store.reclaim_expired(self._backoff)
        for rec in requeued:
            LEASE_RECLAIMS.inc()
            JOB_RETRIES.inc(reason="reclaim")
            _log.warning("lease_reclaimed", job_id=rec.id,
                         trace_id=rec.trace_id, attempt=rec.attempts,
                         max_attempts=rec.max_attempts)
            self._schedule_retry(rec.id, rec.priority, rec.next_attempt_at)
        for rec in quarantined:
            LEASE_RECLAIMS.inc()
            JOBS_COMPLETED.inc(status="quarantined")
            _log.error("job_quarantined", job_id=rec.id,
                       trace_id=rec.trace_id, error=rec.error,
                       attempt=rec.attempts)

        now = time.time()
        with self._cv:
            promoted = False
            while self._delayed and self._delayed[0][0] <= now:
                _, neg_prio, seq, job_id = heapq.heappop(self._delayed)
                heapq.heappush(self._heap, (neg_prio, seq, job_id))
                promoted = True
            if promoted:
                QUEUE_DEPTH.set(len(self._heap))
                self._cv.notify_all()

        for i, t in enumerate(self._threads):
            if not t.is_alive() and not self._stopping:
                _DRAINER_RESTARTS.inc()
                _log.warning("drainer_restarted", died=t.name)
                self._threads[i] = threading.Thread(
                    target=self._drain_loop, daemon=True,
                    name=f"repro-drainer-{next(self._names)}")
                self._threads[i].start()
