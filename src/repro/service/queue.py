"""Thread-safe priority job queue draining into the execution engine.

The queue owns N drainer threads. Each pops the highest-priority queued
job (FIFO within a priority level), marks it ``running`` in the
:class:`~repro.service.store.JobStore`, runs its instance x algorithms
grid through a :class:`repro.api.Session` (the same facade every other
consumer uses), and persists the resulting reports. The session's cache
hook points at the store's ``results`` table, so repeated digests are
served without solver work — across jobs, clients and restarts.

Drainers are plain threads, not the main thread, so the engine's
``SIGALRM`` timeout cannot arm for inline solves; per-run timeouts here
rely on :mod:`repro.engine.runner`'s watchdog-thread fallback (or, with
``engine_workers > 1``, on ``SIGALRM`` inside the pool workers, which do
run solver code on their main thread).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Iterable, Mapping

from ..api import BatchRequest, Session
from ..core.instance import Instance
from ..obs.log import get_logger
from ..obs.metrics import REGISTRY
from ..obs.trace import current_trace_id, trace_context
from .store import JobRecord, JobStore, SqliteReportCache

__all__ = ["JobQueue"]

_log = get_logger("repro.service.queue")

QUEUE_DEPTH = REGISTRY.gauge(
    "repro_queue_depth", "Jobs waiting in the queue (in-flight excluded).")
JOBS_ACTIVE = REGISTRY.gauge(
    "repro_jobs_active", "Jobs currently being solved by a drainer.")
_JOBS_SUBMITTED = REGISTRY.counter(
    "repro_jobs_submitted_total", "Jobs accepted into the queue.")
JOBS_COMPLETED = REGISTRY.counter(
    "repro_jobs_completed_total", "Jobs finished, by terminal status.",
    labelnames=("status",))
_DRAIN_SECONDS = REGISTRY.histogram(
    "repro_job_drain_seconds",
    "Wall time from claim to persisted result, per job.")


class JobQueue:
    """Priority queue feeding persisted jobs to a ``repro.api.Session``.

    Parameters
    ----------
    store:
        The persistent job store; the queue never holds state the store
        does not — the heap is just an index over ``status='queued'``.
    drainers:
        Number of worker threads consuming jobs (0 = accept-only, useful
        for tests and draining-paused maintenance).
    engine_workers:
        Process fan-out per job. The default 0 solves inline on the
        drainer thread — one process, ``drainers`` concurrent solves;
        raise it to fan each job out over processes.
    default_timeout:
        Per-run timeout (seconds) for jobs submitted without their own.
    """

    def __init__(self, store: JobStore, *, drainers: int = 2,
                 engine_workers: int = 0,
                 default_timeout: float | None = None) -> None:
        if drainers < 0:
            raise ValueError(f"drainers must be >= 0, got {drainers}")
        self.store = store
        self.cache = SqliteReportCache(store)
        self.drainers = drainers
        self.engine_workers = engine_workers
        self.default_timeout = default_timeout
        self._session = Session(workers=engine_workers, cache=self.cache)
        self._heap: list[tuple[int, int, str]] = []   # (-prio, seq, job_id)
        self._seq = itertools.count()
        self._cv = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._active = 0
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> int:
        """Recover persisted work, spawn the drainers. Returns the number
        of jobs re-enqueued from a previous process."""
        if self.engine_workers > 1 and self.drainers > 0:
            # pre-warm the shared engine pool to the *aggregate* demand:
            # each drainer's batch caps its own fan-out at engine_workers,
            # so concurrent jobs need drainers x engine_workers width to
            # run at full parallelism (matching the capacity the service
            # had when every run_batch built a private pool)
            from ..engine.pool import get_pool
            get_pool(self.drainers * self.engine_workers)
        recovered = self.store.recover_incomplete()
        with self._cv:
            self._stopping = False
            self._started = True
            for job in recovered:
                heapq.heappush(self._heap,
                               (-job.priority, next(self._seq), job.id))
            QUEUE_DEPTH.set(len(self._heap))
            self._cv.notify_all()
        for k in range(self.drainers):
            t = threading.Thread(target=self._drain_loop, daemon=True,
                                 name=f"repro-drainer-{k}")
            t.start()
            self._threads.append(t)
        return len(recovered)

    def stop(self, wait: bool = True) -> None:
        """Stop accepting pops; drainers exit after their current job."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        if wait:
            for t in self._threads:
                t.join()
        self._threads.clear()

    def join(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and no drainer is mid-job."""
        with self._cv:
            return self._cv.wait_for(
                lambda: not self._heap and self._active == 0, timeout)

    # ------------------------------------------------------------------ #
    # producing & introspection
    # ------------------------------------------------------------------ #

    def submit(self, inst: Instance,
               algorithms: Iterable[tuple[str, Mapping[str, Any]]],
               *, label: str = "", priority: int = 0,
               timeout: float | None = None) -> JobRecord:
        """Persist a job and wake a drainer. Safe from any thread."""
        if timeout is None:
            timeout = self.default_timeout
        job = self.store.create_job(inst, algorithms, label=label,
                                    priority=priority, timeout=timeout,
                                    trace_id=current_trace_id())
        _JOBS_SUBMITTED.inc()
        with self._cv:
            heapq.heappush(self._heap, (-job.priority, next(self._seq),
                                        job.id))
            QUEUE_DEPTH.set(len(self._heap))
            self._cv.notify()
        return job

    def depth(self) -> int:
        """Jobs waiting in the queue (not counting in-flight ones)."""
        with self._cv:
            return len(self._heap)

    def active(self) -> int:
        """Jobs currently being solved by a drainer."""
        with self._cv:
            return self._active

    # ------------------------------------------------------------------ #
    # consuming
    # ------------------------------------------------------------------ #

    def _drain_loop(self) -> None:
        while True:
            with self._cv:
                self._cv.wait_for(lambda: self._heap or self._stopping)
                if self._stopping:
                    return
                _, _, job_id = heapq.heappop(self._heap)
                QUEUE_DEPTH.set(len(self._heap))
                self._active += 1
                JOBS_ACTIVE.set(self._active)
            try:
                self._run_job(job_id)
            finally:
                with self._cv:
                    self._active -= 1
                    JOBS_ACTIVE.set(self._active)
                    self._cv.notify_all()

    def _run_job(self, job_id: str) -> None:
        if not self.store.claim_job(job_id):
            return      # deleted, finished, or another drainer won the id
        job = self.store.get_job(job_id)
        # re-enter the job's submission trace on this drainer thread
        # (contextvars do not cross threads); jobs from a pre-trace
        # database get a fresh ID so their reports are still correlated
        with trace_context(job.trace_id):
            t0 = time.monotonic()
            _log.info("job_started", job_id=job_id,
                      label=job.label, algorithms=len(job.algorithms))
            error = ""
            try:
                reports = self._session.solve_batch(BatchRequest.create(
                    [(job.label or job_id, job.instance)],
                    list(job.algorithms), timeout=job.timeout))
                self.store.finish_job(job_id, reports)
            except Exception as exc:    # noqa: BLE001 — job fails, queue lives
                error = f"{type(exc).__name__}: {exc}"
                self.store.finish_job(job_id, [], error=error)
            elapsed = time.monotonic() - t0
            status = "failed" if error else "done"
            JOBS_COMPLETED.inc(status=status)
            _DRAIN_SECONDS.observe(elapsed)
            _log.log("warning" if error else "info", "job_finished",
                     job_id=job_id, status=status, error=error,
                     wall_time_s=round(elapsed, 6))
