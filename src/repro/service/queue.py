"""Job intake facade over a :class:`~repro.service.worker.WorkerNode`.

Historically this module owned the whole consumption side of the
service: an in-process priority heap, the drainer threads, the retry
machinery and the lease supervisor. That machinery now lives in
:mod:`repro.service.worker` as the transport-agnostic
:class:`~repro.service.worker.WorkerNode`, which polls *any*
:class:`~repro.service.storage.StoreBackend` via its atomic
``claim_next`` — so the very same code drains jobs as embedded server
threads or as standalone ``repro worker`` processes, and the store's
``(priority DESC, submitted_at, id)`` claim order replaces the heap.

:class:`JobQueue` remains the embedded-mode API: submission (persist +
wake a drainer), recovery-on-start, and lifecycle (``start`` / ``stop``
/ ``join``) — a thin facade delegating execution to one private
``WorkerNode``. The drainer metrics and the retry/backoff helpers are
re-exported here unchanged for existing callers.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..core.instance import Instance
from ..obs.metrics import REGISTRY
from ..obs.trace import current_trace_id
from .store import JobRecord
from .worker import (_DRAIN_SECONDS, _DRAINER_RESTARTS, JOB_RETRIES,
                     JOBS_ACTIVE, JOBS_COMPLETED, LEASE_RECLAIMS,
                     QUEUE_DEPTH, WORKER_CLAIMS, WorkerNode, retryable)

__all__ = ["JobQueue", "QUEUE_DEPTH", "JOBS_ACTIVE", "JOBS_COMPLETED",
           "JOB_RETRIES", "LEASE_RECLAIMS", "WORKER_CLAIMS",
           "_DRAIN_SECONDS", "_DRAINER_RESTARTS"]

_JOBS_SUBMITTED = REGISTRY.counter(
    "repro_jobs_submitted_total", "Jobs accepted into the queue.")


class JobQueue:
    """Embedded job intake + drain: a store plus one worker node.

    Parameters
    ----------
    store:
        Any :class:`~repro.service.storage.StoreBackend`; the queue
        never holds state the store does not.
    drainers:
        Number of embedded worker threads consuming jobs (0 =
        accept-only, useful for tests, maintenance pauses, and servers
        fronting external ``repro worker`` processes).
    engine_workers:
        Process fan-out per job. The default 0 solves inline on the
        drainer thread — one process, ``drainers`` concurrent solves;
        raise it to fan each job out over processes.
    default_timeout:
        Per-run timeout (seconds) for jobs submitted without their own.
    lease_seconds:
        Length of the store lease a drainer holds (and keeps
        heartbeating) while running a job. ``None`` disables leases and
        supervision — the legacy die-and-recover-on-restart behaviour.
    max_attempts:
        Attempts per job before quarantine (``None`` = store default).
    reclaim_interval:
        Supervisor tick (heartbeats, reclaims, drainer respawn).
        Default: a third of the lease, capped at 1s.
    retry_backoff_base / retry_backoff_cap:
        Exponential-backoff envelope for retries: attempt ``k`` waits
        ``uniform(0, min(cap, base * 2**(k-1)))`` seconds (full jitter).
    """

    _retryable = staticmethod(retryable)

    def __init__(self, store, *, drainers: int = 2,
                 engine_workers: int = 0,
                 default_timeout: float | None = None,
                 lease_seconds: float | None = 30.0,
                 max_attempts: int | None = None,
                 reclaim_interval: float | None = None,
                 retry_backoff_base: float = 0.2,
                 retry_backoff_cap: float = 30.0) -> None:
        if drainers < 0:
            raise ValueError(f"drainers must be >= 0, got {drainers}")
        self.store = store
        self.drainers = drainers
        self.engine_workers = engine_workers
        self.default_timeout = default_timeout
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self._node = WorkerNode(
            store, workers=drainers, engine_workers=engine_workers,
            default_timeout=default_timeout, lease_seconds=lease_seconds,
            reclaim_interval=reclaim_interval,
            retry_backoff_base=retry_backoff_base,
            retry_backoff_cap=retry_backoff_cap)
        self.reclaim_interval = self._node.reclaim_interval
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        self.cache = self._node.cache
        self._session = self._node._session

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> int:
        """Recover persisted work, then start the embedded worker node.
        Returns the number of jobs re-enqueued from a previous process."""
        recovered = self.store.recover_incomplete()
        self._node.start()
        QUEUE_DEPTH.set(self.store.count_jobs("queued"))
        self._node.notify()
        return len(recovered)

    def stop(self, wait: bool = True, *, grace: float | None = None) -> int:
        """Stop the node; drainers exit after their current job.

        With ``grace`` set, waits at most that many seconds for in-flight
        jobs, then releases the leases of whatever is still running so
        another process (or the next start) can pick the work up without
        burning a retry attempt. Returns the number of leases released."""
        return self._node.stop(wait=wait, grace=grace)

    def join(self, timeout: float | None = None) -> bool:
        """Block until the store holds no claimable work (including
        backoff-delayed retries) and no drainer is mid-job."""
        return self._node.join(timeout)

    # ------------------------------------------------------------------ #
    # producing & introspection
    # ------------------------------------------------------------------ #

    def submit(self, inst: Instance,
               algorithms: Iterable[tuple[str, Mapping[str, Any]]],
               *, label: str = "", priority: int = 0,
               timeout: float | None = None) -> JobRecord:
        """Persist a job and wake a drainer. Safe from any thread."""
        if timeout is None:
            timeout = self.default_timeout
        kwargs: dict[str, Any] = {}
        if self.max_attempts is not None:
            kwargs["max_attempts"] = self.max_attempts
        job = self.store.create_job(inst, algorithms, label=label,
                                    priority=priority, timeout=timeout,
                                    trace_id=current_trace_id(), **kwargs)
        _JOBS_SUBMITTED.inc()
        QUEUE_DEPTH.set(self.store.count_jobs("queued"))
        self._node.notify()
        return job

    def depth(self) -> int:
        """Jobs waiting in the store (not counting in-flight ones)."""
        return self.store.count_jobs("queued")

    def active(self) -> int:
        """Jobs currently being solved by an embedded drainer."""
        return self._node.active()

    def _backoff(self, attempts: int) -> float:
        """Full-jitter exponential backoff for retry attempt ``attempts``."""
        return self._node._backoff(attempts)
