"""Scheduling-as-a-service: a persistent job store + worker nodes + an
HTTP API wrapping the batch execution engine.

The subsystem turns the repository from a CLI into a long-running
server: clients submit class-constrained scheduling work over HTTP,
poll it, and share solved results through a digest-indexed report cache
that survives restarts.

The service is split into three swappable layers:

* **Storage** — :class:`~repro.service.storage.StoreBackend` is the
  protocol every backend speaks; :func:`~repro.service.storage.open_store`
  builds one from a ``store_url`` (``sqlite:///jobs.db`` — WAL, safe
  across threads *and* processes — or ``memory://`` for tests/chaos).
  :class:`~repro.service.store.JobStore` is the SQLite reference
  implementation; results live in a consistent-hash-sharded cache
  (:mod:`repro.resultcache`).
* **Workers** — :class:`~repro.service.worker.WorkerNode` drains any
  backend via its atomic ``claim_next``; ``repro worker --store URL``
  runs one as a standalone process, and N of them share a store with
  no double execution. :class:`~repro.service.queue.JobQueue` is the
  embedded-mode facade the server uses.
* **HTTP** — :class:`~repro.service.server.SchedulingService` / ``serve``
  (``repro serve``), a stdlib threaded JSON API, versioned under ``/v1``
  with a uniform error envelope (the original unversioned routes remain
  as deprecated aliases); :class:`~repro.service.client.ServiceClient`
  is the Python client (``repro submit``, tests, examples, and the
  remote backend of :class:`repro.api.Session`).
"""

from .client import ServiceClient, ServiceError
from .queue import JobQueue
from .server import SchedulingService, serve
from .storage import MemoryStore, StoreBackend, open_store
from .store import (JOB_STATUSES, TERMINAL_STATUSES, JobRecord, JobStore,
                    SqliteReportCache)
from .worker import WorkerNode, run_worker

__all__ = ["JobStore", "JobRecord", "SqliteReportCache", "JobQueue",
           "StoreBackend", "MemoryStore", "open_store",
           "WorkerNode", "run_worker",
           "SchedulingService", "serve", "ServiceClient", "ServiceError",
           "JOB_STATUSES", "TERMINAL_STATUSES"]
