"""Scheduling-as-a-service: a persistent job queue + HTTP API wrapping
the batch execution engine.

The subsystem turns the repository from a CLI into a long-running
server: clients submit class-constrained scheduling work over HTTP,
poll it, and share solved results through a digest-indexed report store
that survives restarts.

The HTTP surface is versioned: the stable routes live under ``/v1``
with a uniform error envelope; the original unversioned routes remain
as deprecated aliases (see :mod:`repro.service.server`).

* :class:`~repro.service.store.JobStore` — SQLite persistence for jobs,
  their reports and the cross-client result cache.
* :class:`~repro.service.queue.JobQueue` — thread-safe priority queue
  draining each job through a :class:`repro.api.Session`.
* :class:`~repro.service.server.SchedulingService` / ``serve`` — the
  stdlib threaded HTTP/JSON API (``repro serve``).
* :class:`~repro.service.client.ServiceClient` — the Python client
  (``repro submit``, tests, examples, and the remote backend of
  :class:`repro.api.Session`).
"""

from .client import ServiceClient, ServiceError
from .queue import JobQueue
from .server import SchedulingService, serve
from .store import (JOB_STATUSES, TERMINAL_STATUSES, JobRecord, JobStore,
                    SqliteReportCache)

__all__ = ["JobStore", "JobRecord", "SqliteReportCache", "JobQueue",
           "SchedulingService", "serve", "ServiceClient", "ServiceError",
           "JOB_STATUSES", "TERMINAL_STATUSES"]
