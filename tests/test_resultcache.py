"""Tests for the unified result-cache module: the consistent-hash ring,
the shard implementations, the sharded cache's two protocol dialects,
and shard-count persistence on SQLite-backed stores."""

from fractions import Fraction

import pytest

from repro import Instance
from repro.engine import SolveReport
from repro.resultcache import (CACHE_SHARD_OPS, HashRing, MemoryCacheShard,
                               ShardedReportCache, SqliteCacheShard,
                               cache_key)
from repro.service import JobStore


@pytest.fixture
def inst() -> Instance:
    return Instance((5, 3, 8, 6, 2), (0, 0, 1, 2, 2), 2, 2)


def _report(inst: Instance, **over) -> SolveReport:
    base = dict(algorithm="splittable", instance_digest=inst.digest(),
                instance_label="x", variant="splittable",
                makespan=Fraction(22, 7), guess=Fraction(11, 7),
                certified_ratio=2.0, proven_ratio="2", wall_time_s=0.01,
                validated=True, extra={})
    base.update(over)
    return SolveReport(**base)


class TestHashRing:
    def test_deterministic(self):
        a, b = HashRing(4), HashRing(4)
        for k in range(200):
            assert a.shard_for(f"key-{k}") == b.shard_for(f"key-{k}")

    def test_every_shard_gets_traffic(self):
        ring = HashRing(4)
        counts = [0, 0, 0, 0]
        for k in range(1000):
            counts[ring.shard_for(f"key-{k}")] += 1
        # virtual nodes keep the split roughly even; 10% floor is a loose
        # sanity bound (ideal is 25% each)
        assert all(c >= 100 for c in counts), counts

    def test_resize_moves_only_an_arc(self):
        # consistent hashing's whole point: growing 4 -> 5 shards must
        # relocate roughly 1/5 of the keys, not reshuffle everything
        before, after = HashRing(4), HashRing(5)
        moved = sum(before.shard_for(f"key-{k}") != after.shard_for(f"key-{k}")
                    for k in range(1000))
        assert moved < 500, f"{moved}/1000 keys moved on a +1 resize"

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(4, replicas=0)


class TestShards:
    def test_memory_shard_round_trip(self, inst):
        shard = MemoryCacheShard()
        rep = _report(inst)
        shard.put("k", inst.digest(), rep)
        assert shard.get("k").makespan == rep.makespan
        assert shard.get("missing") is None
        assert shard.size() == 1

    def test_sqlite_shard_persists_across_reopen(self, tmp_path, inst):
        path = tmp_path / "shard-0.db"
        shard = SqliteCacheShard(path)
        shard.put("k", inst.digest(), _report(inst))
        shard.close()
        again = SqliteCacheShard(path)
        assert again.get("k") is not None
        assert again.size() == 1
        again.close()

    def test_sqlite_shard_overwrite_keeps_one_row(self, tmp_path, inst):
        shard = SqliteCacheShard(tmp_path / "s.db")
        shard.put("k", inst.digest(), _report(inst, algorithm="first"))
        shard.put("k", inst.digest(), _report(inst, algorithm="second"))
        assert shard.get("k").algorithm == "second"
        assert shard.size() == 1
        shard.close()


class TestShardedReportCache:
    def _cache(self, n=4, label="test-cache"):
        return ShardedReportCache([MemoryCacheShard() for _ in range(n)],
                                  label=label)

    def test_counting_protocol(self, inst):
        cache = self._cache()
        key = cache_key(inst, "splittable")
        assert cache.get(key) is None
        cache.put(key, _report(inst))
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert len(cache) == 1

    def test_peek_and_store_do_not_count(self, inst):
        cache = self._cache()
        cache.store("k", inst.digest(), _report(inst))
        assert cache.peek("k") is not None
        assert cache.peek("absent") is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_keys_spread_over_shards(self, inst):
        cache = self._cache()
        for k in range(64):
            cache.store(f"key-{k}", inst.digest(), _report(inst))
        sizes = [shard.size() for shard in cache.shards]
        assert sum(sizes) == 64
        assert sum(1 for s in sizes if s > 0) >= 2  # not all on one shard

    def test_shard_op_metrics(self, inst):
        cache = self._cache(label="metrics-probe")
        key = cache_key(inst, "lpt")
        shard = str(cache.shard_for(key))
        puts0 = CACHE_SHARD_OPS.value(cache="metrics-probe", shard=shard,
                                      op="put")
        hits0 = CACHE_SHARD_OPS.value(cache="metrics-probe", shard=shard,
                                      op="hit")
        cache.put(key, _report(inst))
        cache.get(key)
        assert CACHE_SHARD_OPS.value(cache="metrics-probe", shard=shard,
                                     op="put") == puts0 + 1
        assert CACHE_SHARD_OPS.value(cache="metrics-probe", shard=shard,
                                     op="hit") == hits0 + 1

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedReportCache([])


class TestStoreShardPersistence:
    def test_shard_count_is_pinned_in_meta(self, tmp_path, inst):
        # the ring must match the shard files on disk; a store created
        # with 2 shards keeps 2 even when reopened asking for 8
        path = tmp_path / "jobs.db"
        store = JobStore(path, cache_shards=2)
        keys = [f"key-{k}" for k in range(16)]
        for key in keys:
            store.cache_put(key, inst.digest(), _report(inst))
        assert len(store.cache.shards) == 2
        store.close()

        again = JobStore(path, cache_shards=8)
        assert len(again.cache.shards) == 2
        for key in keys:
            assert again.cache_get(key) is not None, key
        again.close()

    def test_shard_files_exist_on_disk(self, tmp_path, inst):
        path = tmp_path / "jobs.db"
        store = JobStore(path, cache_shards=3)
        for k in range(12):
            store.cache_put(f"key-{k}", inst.digest(), _report(inst))
        store.close()
        shard_files = sorted(p.name for p in tmp_path.glob("jobs.db.cache-*")
                             if not p.name.endswith(("-wal", "-shm")))
        assert shard_files == ["jobs.db.cache-0", "jobs.db.cache-1",
                               "jobs.db.cache-2"]


class TestEngineShimCompat:
    def test_engine_cache_module_reexports(self):
        # the old import path must keep serving the same objects
        from repro.engine import cache as engine_cache
        import repro.resultcache as resultcache
        assert engine_cache.ReportCache is resultcache.ReportCache
        assert engine_cache.cache_key is resultcache.cache_key
        assert engine_cache.CACHE_HITS is resultcache.CACHE_HITS
        assert engine_cache.is_cacheable is resultcache.is_cacheable
