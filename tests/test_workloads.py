"""Tests for the workload generators."""

from itertools import islice

import numpy as np
import pytest

from repro import Instance
from repro.workloads import (adversarial_splittable_instance,
                             data_placement_instance,
                             enumerate_tiny_instances, tight_slots_instance,
                             uniform_instance, video_on_demand_instance,
                             zipf_instance)
from repro.workloads.suites import (large_ratio_suite, ptas_suite,
                                    scaling_suite, small_ratio_suite)


class TestGenerators:
    def test_uniform_shape(self, rng):
        inst = uniform_instance(rng, n=50, C=7, m=4, c=2, p_lo=5, p_hi=10)
        assert inst.num_jobs == 50
        assert inst.num_classes == 7
        assert all(5 <= p <= 10 for p in inst.processing_times)

    def test_all_classes_nonempty(self):
        # stress the class-coverage repair across many seeds
        for seed in range(30):
            rng = np.random.default_rng(seed)
            inst = zipf_instance(rng, n=12, C=10, m=3, c=4, alpha=2.5)
            assert inst.num_classes == 10

    def test_deterministic_given_seed(self):
        a = uniform_instance(np.random.default_rng(5), 20, 4, 3, 2)
        b = uniform_instance(np.random.default_rng(5), 20, 4, 3, 2)
        assert a == b

    def test_rejects_more_classes_than_jobs(self, rng):
        with pytest.raises(ValueError):
            uniform_instance(rng, n=3, C=5, m=2, c=2)

    def test_data_placement_heavy_tail(self, rng):
        inst = data_placement_instance(rng, n_ops=300, n_databases=10, m=5,
                                       disk_slots=2)
        assert inst.pmax > np.median(inst.processing_times)

    def test_vod_durations_clipped(self, rng):
        inst = video_on_demand_instance(rng, 200, 20, 8, 2)
        assert all(30 <= p <= 180 for p in inst.processing_times)

    def test_adversarial_structure(self):
        inst = adversarial_splittable_instance(k=3, m=4)
        assert inst.class_slots == 2
        assert inst.class_load(0) == 3 * 4

    def test_tight_slots_exactly_cm_classes(self, rng):
        inst = tight_slots_instance(rng, m=3, c=2)
        assert inst.num_classes == 6


class TestTinyEnumeration:
    def test_yields_valid_instances(self):
        for inst in islice(enumerate_tiny_instances(), 100):
            assert isinstance(inst, Instance)
            assert inst.num_classes <= inst.class_slots * inst.machines

    def test_covers_multiple_shapes(self):
        shapes = {(i.num_jobs, i.machines, i.class_slots)
                  for i in islice(enumerate_tiny_instances(max_n=2), 200)}
        assert len(shapes) >= 4


class TestSuites:
    def test_small_suite_sizes(self):
        suite = list(small_ratio_suite(seeds=2))
        assert len(suite) == 6
        assert all(inst.num_jobs <= 10 for _, inst in suite)

    def test_large_suite_labels_unique(self):
        labels = [label for label, _ in large_ratio_suite(seeds=2)]
        assert len(labels) == len(set(labels))

    def test_scaling_suite_monotone(self):
        sizes = [n for n, _ in scaling_suite((10, 20, 40))]
        assert sizes == [10, 20, 40]

    def test_ptas_suite(self):
        suite = list(ptas_suite(seeds=2))
        assert all(inst.num_jobs <= 12 for _, inst in suite)
