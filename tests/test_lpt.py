"""Tests for the LPT subroutine."""

import numpy as np
import pytest

from repro.approx.lpt import lpt_makespan, lpt_partition


class TestLPT:
    def test_partition_covers_all_items(self):
        groups = lpt_partition([5, 4, 3, 2, 1], 2)
        assert sorted(i for g in groups for i in g) == [0, 1, 2, 3, 4]

    def test_classic_example(self):
        # LPT on {5,4,3,2,1}, k=2: loads 8 and 7
        assert lpt_makespan([5, 4, 3, 2, 1], 2) == 8

    def test_more_groups_than_items(self):
        groups = lpt_partition([3, 1], 4)
        assert len(groups) == 4
        assert sum(len(g) for g in groups) == 2

    def test_single_group(self):
        assert lpt_makespan([1, 2, 3], 1) == 6

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            lpt_partition([1], 0)

    def test_empty_items(self):
        assert lpt_makespan([], 3) == 0

    @pytest.mark.parametrize("seed", range(10))
    def test_graham_bound(self, seed):
        """LPT is a (4/3 - 1/(3k))-approximation of the balanced optimum;
        we check the weaker area+max bound which is what Theorem 6 needs."""
        rng = np.random.default_rng(seed)
        sizes = [int(x) for x in rng.integers(1, 50, size=20)]
        k = int(rng.integers(1, 6))
        ms = lpt_makespan(sizes, k)
        area = sum(sizes) / k
        assert ms <= area + max(sizes)

    def test_deterministic(self):
        a = lpt_partition([7, 7, 3, 3], 2)
        b = lpt_partition([7, 7, 3, 3], 2)
        assert a == b
