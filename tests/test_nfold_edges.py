"""Edge coverage for the N-fold substrate: degenerate block shapes."""

import numpy as np

from repro.nfold import (NFold, brick_solutions, parameters_of, solve_dp,
                         solve_milp)
from repro.nfold.theory import theorem1_log10_bound


class TestNoLocalConstraints:
    """s = 0: bricks constrained only by bounds and the global rows."""

    def make(self):
        A = np.array([[1, 2]])
        B = np.zeros((0, 2), dtype=int)
        return NFold.uniform(A, B, N=2,
                             b_global=[5],
                             b_local=np.zeros((2, 0), dtype=int),
                             lower=[0, 0], upper=[3, 3], w=[1, 1])

    def test_brick_solutions_full_box(self):
        nf = self.make()
        sols = brick_solutions(nf, 0)
        assert len(sols) == 16  # 4 * 4 box, no local filter

    def test_solvers_agree(self):
        nf = self.make()
        xd, xm = solve_dp(nf), solve_milp(nf)
        assert xd is not None and xm is not None
        assert nf.objective(xd) == nf.objective(xm)
        assert nf.is_feasible(xd)


class TestNoGlobalConstraints:
    """r = 0: the problem decomposes into independent bricks."""

    def make(self):
        A = np.zeros((0, 2), dtype=int)
        B = np.array([[1, 1]])
        return NFold.uniform(A, B, N=3, b_global=[],
                             b_local=[2], lower=[0, 0], upper=[2, 2],
                             w=[3, 1])

    def test_decomposed_optimum(self):
        nf = self.make()
        xd = solve_dp(nf)
        xm = solve_milp(nf)
        # per brick the optimum is (0, 2): cost 2; total 6
        assert nf.objective(xd) == 6
        assert nf.objective(xm) == 6


class TestNonUniformBlocks:
    def test_different_blocks_per_brick(self):
        A1 = np.array([[1, 0]])
        A2 = np.array([[0, 1]])
        B = np.array([[1, 1]])
        nf = NFold([A1, A2], [B, B],
                   b_global=[3],
                   b_local=[np.array([2]), np.array([2])],
                   lower=np.zeros(4, dtype=int),
                   upper=np.full(4, 2, dtype=int),
                   w=np.array([1, 0, 0, 1]))
        xd, xm = solve_dp(nf), solve_milp(nf)
        assert xd is not None
        assert nf.objective(xd) == nf.objective(xm)
        # global: x0 (from brick 1) + x3 (from brick 2) ... = 3 via A1/A2
        x = xd
        assert x[0] + x[3] == 3


class TestTheory:
    def test_describe(self):
        A = np.array([[1, 0]])
        B = np.array([[1, 1]])
        nf = NFold.uniform(A, B, 2, [2], [2], [0, 0], [2, 2], [0, 0])
        p = parameters_of(nf)
        desc = p.describe()
        for token in ("N=2", "r=1", "s=1", "t=2"):
            assert token in desc

    def test_bound_finite_for_tiny(self):
        A = np.array([[1]])
        B = np.array([[1]])
        nf = NFold.uniform(A, B, 1, [1], [1], [0], [1], [0])
        assert theorem1_log10_bound(parameters_of(nf)) < 10
