"""Crash-safe job lifecycle: leases, retries, reclaim, quarantine.

Store-level tests drive the lease protocol directly; queue-level tests
run a real :class:`JobQueue` with injected failures and assert jobs end
in the right terminal state without manual intervention — the invariant
``repro chaos`` checks at scale.
"""

import sqlite3
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro import Instance
from repro.faults import injection
from repro.faults.injection import FaultInjected
from repro.service import JobQueue, JobStore
from repro.service.queue import _DRAINER_RESTARTS, LEASE_RECLAIMS


@pytest.fixture(autouse=True)
def _no_faults():
    injection.reset()
    yield
    injection.reset()


@pytest.fixture
def inst() -> Instance:
    return Instance((5, 3, 8, 6, 2), (0, 0, 1, 2, 2), 2, 2)


@pytest.fixture
def store(tmp_path) -> JobStore:
    s = JobStore(tmp_path / "jobs.db")
    yield s
    s.close()


def _wait_status(store, job_id, statuses, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = store.get_job(job_id)
        if job.status in statuses:
            return job
        time.sleep(0.01)
    raise AssertionError(
        f"job never reached {statuses}; stuck at {store.get_job(job_id)}")


class TestLeaseStore:
    def test_claim_stamps_lease_and_attempt(self, store, inst):
        job = store.create_job(inst, [("lpt", {})])
        assert store.claim_job(job.id, lease_seconds=30.0)
        back = store.get_job(job.id)
        assert back.status == "running"
        assert back.attempts == 1
        assert back.lease_expires_at == pytest.approx(time.time() + 30, abs=5)

    def test_claim_without_lease_never_expires(self, store, inst):
        job = store.create_job(inst, [("lpt", {})])
        assert store.claim_job(job.id)
        assert store.get_job(job.id).lease_expires_at is None
        assert store.reclaim_expired(lambda a: 0.0) == ([], [])

    def test_claim_respects_retry_backoff(self, store, inst):
        job = store.create_job(inst, [("lpt", {})])
        assert store.claim_job(job.id, 30.0)
        assert store.requeue_job(job.id, error="boom", delay=60.0)
        assert not store.claim_job(job.id, 30.0)    # parked until due
        back = store.get_job(job.id)
        assert back.status == "queued" and back.error == "boom"
        assert back.attempts == 1                   # attempt stays counted

    def test_heartbeat_extends_running_only(self, store, inst):
        job = store.create_job(inst, [("lpt", {})])
        assert not store.heartbeat(job.id, 30.0)    # still queued
        store.claim_job(job.id, 0.05)
        assert store.heartbeat(job.id, 30.0)
        assert store.get_job(job.id).lease_expires_at > time.time() + 10

    def test_release_lease_refunds_attempt(self, store, inst):
        job = store.create_job(inst, [("lpt", {})])
        store.claim_job(job.id, 30.0)
        assert store.release_lease(job.id)
        back = store.get_job(job.id)
        assert back.status == "queued"
        assert back.attempts == 0 and back.next_attempt_at is None
        assert store.claim_job(job.id, 30.0)        # immediately claimable

    def test_reclaim_requeues_then_quarantines(self, store, inst):
        job = store.create_job(inst, [("lpt", {})], max_attempts=2)
        store.claim_job(job.id, 0.01)
        time.sleep(0.03)
        requeued, quarantined = store.reclaim_expired(lambda a: 0.0)
        assert [r.id for r in requeued] == [job.id] and not quarantined
        assert "lease expired" in requeued[0].error

        store.claim_job(job.id, 0.01)               # attempt 2 of 2
        time.sleep(0.03)
        requeued, quarantined = store.reclaim_expired(lambda a: 0.0)
        assert not requeued and [q.id for q in quarantined] == [job.id]
        back = store.get_job(job.id)
        assert back.status == "quarantined"
        assert "attempt 2/2" in back.error

    def test_finish_refuses_stale_writer(self, store, inst):
        job = store.create_job(inst, [("lpt", {})])
        store.claim_job(job.id, 0.01)
        time.sleep(0.03)
        store.reclaim_expired(lambda a: 0.0)        # lease taken back
        assert not store.finish_job(job.id, [])     # stale drainer loses
        assert store.get_job(job.id).status == "queued"
        assert store.reports_for(job.id) == []

    def test_finish_hits_store_commit_site(self, store, inst):
        job = store.create_job(inst, [("lpt", {})])
        store.claim_job(job.id, 30.0)
        injection.configure("store_commit:1")
        with pytest.raises(FaultInjected):
            store.finish_job(job.id, [])
        assert store.get_job(job.id).status == "running"    # untouched

    def test_recover_quarantines_spent_jobs(self, store, inst):
        spent = store.create_job(inst, [("lpt", {})], max_attempts=1)
        fresh = store.create_job(inst, [("lpt", {})])
        store.claim_job(spent.id, 30.0)
        store.claim_job(fresh.id, 30.0)
        recovered = store.recover_incomplete()
        assert [j.id for j in recovered] == [fresh.id]
        assert store.get_job(fresh.id).status == "queued"
        back = store.get_job(spent.id)
        assert back.status == "quarantined"
        assert "attempts 1/1" in back.error

    def test_quarantined_listable(self, store, inst):
        job = store.create_job(inst, [("lpt", {})], max_attempts=1)
        store.claim_job(job.id, 30.0)
        store.quarantine_job(job.id, "nope")
        assert [j.id for j in store.list_jobs("quarantined")] == [job.id]
        assert store.counts()["quarantined"] == 1


class TestRetryClassification:
    @pytest.mark.parametrize("exc", [
        BrokenProcessPool("pool died"),
        FaultInjected("shm_attach"),
        OSError("disk"),
        ConnectionError("peer"),
        MemoryError(),
        sqlite3.OperationalError("locked"),
        RuntimeError("cannot schedule new futures after shutdown"),
        RuntimeError("broken pipe to worker"),
    ])
    def test_infrastructure_failures_retry(self, exc):
        assert JobQueue._retryable(exc)

    @pytest.mark.parametrize("exc", [
        ValueError("bad instance"),
        KeyError("algo"),
        RuntimeError("solver produced garbage"),
        TypeError("unhashable"),
    ])
    def test_input_failures_do_not(self, exc):
        assert not JobQueue._retryable(exc)

    def test_backoff_envelope(self, store):
        q = JobQueue(store, drainers=0, retry_backoff_base=0.2,
                     retry_backoff_cap=1.0)
        for attempt in range(1, 10):
            ceiling = min(1.0, 0.2 * 2 ** (attempt - 1))
            for _ in range(20):
                assert 0.0 <= q._backoff(attempt) <= ceiling


def _make_queue(store, **over):
    opts = dict(drainers=1, engine_workers=0, lease_seconds=5.0,
                reclaim_interval=0.02, retry_backoff_base=0.01,
                retry_backoff_cap=0.05)
    opts.update(over)
    return JobQueue(store, **opts)


class TestQueueLifecycle:
    def test_transient_failure_retries_to_done(self, store, inst):
        queue = _make_queue(store)
        real_finish = store.finish_job
        calls = []

        def flaky_finish(job_id, reports, **kw):
            if not calls:
                calls.append(job_id)
                raise FaultInjected("store_commit")
            return real_finish(job_id, reports, **kw)

        store.finish_job = flaky_finish
        queue.start()
        try:
            job = queue.submit(inst, [("lpt", {})])
            back = _wait_status(store, job.id, ("done",))
            assert back.attempts == 2       # one failure, one success
            assert len(store.reports_for(job.id)) == 1
        finally:
            queue.stop(wait=True, grace=5.0)

    def test_exhausted_retries_quarantine(self, store, inst):
        queue = _make_queue(store, max_attempts=2)
        store.finish_job = lambda *a, **k: (_ for _ in ()).throw(
            FaultInjected("store_commit"))
        queue.start()
        try:
            job = queue.submit(inst, [("lpt", {})])
            back = _wait_status(store, job.id, ("quarantined",))
            assert back.attempts == 2
            assert "no attempts left" in back.error
        finally:
            queue.stop(wait=True, grace=5.0)

    def test_non_retryable_fails_first_attempt(self, store, inst):
        queue = _make_queue(store)
        queue._session.solve_batch = lambda req: (_ for _ in ()).throw(
            ValueError("malformed"))
        queue.start()
        try:
            job = queue.submit(inst, [("lpt", {})])
            back = _wait_status(store, job.id, ("failed",))
            assert back.attempts == 1
            assert "ValueError: malformed" in back.error
        finally:
            queue.stop(wait=True, grace=5.0)

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_dead_drainer_reclaimed_and_respawned(self, store, inst):
        # rate-1 drainer_loop: every drainer dies right after claiming.
        # Supervision must reclaim the lease each time and respawn the
        # drainer; with attempts exhausted the job lands in quarantine.
        queue = _make_queue(store, max_attempts=2, lease_seconds=0.1)
        restarts0 = _DRAINER_RESTARTS.value()
        reclaims0 = LEASE_RECLAIMS.value()
        injection.configure("drainer_loop:1")
        queue.start()
        try:
            job = queue.submit(inst, [("lpt", {})])
            back = _wait_status(store, job.id, ("quarantined",), timeout=30.0)
            assert "lease expired" in back.error
            assert LEASE_RECLAIMS.value() - reclaims0 >= 2
            assert _DRAINER_RESTARTS.value() - restarts0 >= 1
        finally:
            injection.reset()
            queue.stop(wait=True, grace=5.0)

    def test_graceful_stop_releases_leases(self, store, inst):
        queue = _make_queue(store)
        queue._session.solve_batch = lambda req: time.sleep(60)
        queue.start()
        try:
            job = queue.submit(inst, [("lpt", {})])
            _wait_status(store, job.id, ("running",))
            released = queue.stop(wait=True, grace=0.2)
            assert released == 1
            back = store.get_job(job.id)
            assert back.status == "queued"
            assert back.attempts == 0       # refunded, not burned
        finally:
            queue.stop(wait=False)

    def test_watchdog_timeout_on_drainer_thread(self, store, inst):
        # engine_workers=0 solves inline on the drainer thread, where
        # SIGALRM cannot arm — the watchdog-thread fallback must produce
        # a timeout report and leave the drainer alive for the next job.
        queue = _make_queue(store)
        injection.configure("solve_delay:1:0.5")
        queue.start()
        try:
            job = queue.submit(inst, [("lpt", {})], timeout=0.05)
            _wait_status(store, job.id, ("done",))
            (rep,) = store.reports_for(job.id)
            assert rep.status == "timeout"
            assert "exceeded" in rep.error

            injection.reset()               # same drainer, clean solve
            job2 = queue.submit(inst, [("lpt", {})], timeout=30.0)
            _wait_status(store, job2.id, ("done",))
            (rep2,) = store.reports_for(job2.id)
            assert rep2.status == "ok"
        finally:
            queue.stop(wait=True, grace=5.0)
