"""Tests for the machine-dependent class-slot extension (Section 5)."""

import numpy as np
import pytest

from repro.core.errors import InvalidInstanceError
from repro.core.validation import validate_splittable
from repro.extensions import (HeterogeneousInstance,
                              opt_nonpreemptive_hetero,
                              solve_nonpreemptive_hetero,
                              solve_splittable_hetero,
                              validate_hetero_nonpreemptive)
from repro.workloads import uniform_instance


def make_hetero(seed: int, slots=(3, 2, 1)) -> HeterogeneousInstance:
    rng = np.random.default_rng(seed)
    base = uniform_instance(rng, n=12, C=4, m=len(slots), c=max(slots),
                            p_hi=20)
    return HeterogeneousInstance.create(base.processing_times,
                                        base.classes, slots)


class TestInstance:
    def test_create(self):
        h = HeterogeneousInstance.create([3, 4], [0, 1], (2, 1))
        assert h.machines == 2
        assert h.total_slots == 3

    def test_rejects_empty_slots(self):
        with pytest.raises(InvalidInstanceError):
            HeterogeneousInstance.create([3], [0], ())

    def test_rejects_zero_slot_machine(self):
        with pytest.raises(InvalidInstanceError):
            HeterogeneousInstance.create([3], [0], (2, 0))


class TestSplittableHetero:
    @pytest.mark.parametrize("seed", range(6))
    def test_feasible_and_bounded(self, seed):
        h = make_hetero(seed)
        sched, T = solve_splittable_hetero(h)
        # per-machine slot check, done manually (core validator checks the
        # homogeneous c; here we enforce the vector)
        for i in range(h.machines):
            assert len(sched.classes_on(i, h.base)) <= h.slot_vector[i]
        # completeness via the homogeneous validator (slots <= max checked
        # above more tightly)
        mk = validate_splittable(h.homogeneous(), sched)
        assert mk <= 2 * T

    def test_uniform_vector_matches_homogeneous_bound(self):
        h = make_hetero(3, slots=(2, 2, 2))
        sched, T = solve_splittable_hetero(h)
        from repro.approx.splittable import solve_splittable
        res = solve_splittable(h.homogeneous())
        # same counting obstruction -> same guess
        assert T == res.guess


class TestNonPreemptiveHetero:
    @pytest.mark.parametrize("seed", range(6))
    def test_feasible(self, seed):
        h = make_hetero(seed)
        sched, T = solve_nonpreemptive_hetero(h)
        mk = validate_hetero_nonpreemptive(h, sched)
        assert mk <= 3 * T  # loose sanity envelope for the extension

    @pytest.mark.parametrize("seed", range(4))
    def test_ratio_vs_exact(self, seed):
        h = make_hetero(100 + seed, slots=(3, 2, 2))
        sched, T = solve_nonpreemptive_hetero(h)
        mk = validate_hetero_nonpreemptive(h, sched)
        opt = opt_nonpreemptive_hetero(h)
        assert mk <= 3 * opt  # empirical: typically < 1.6

    def test_scarce_machine_respected(self):
        # machine 1 has a single slot: it may host only one class
        h = HeterogeneousInstance.create(
            [5, 5, 4, 4, 3, 3], [0, 0, 1, 1, 2, 2], (3, 1))
        sched, _ = solve_nonpreemptive_hetero(h)
        validate_hetero_nonpreemptive(h, sched)
        assert len(sched.classes_on(1, h.base)) <= 1

    def test_infeasible_raises(self):
        h = HeterogeneousInstance.create([1, 1, 1], [0, 1, 2], (1, 1))
        with pytest.raises(InvalidInstanceError):
            solve_nonpreemptive_hetero(h)
