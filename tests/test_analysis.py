"""Tests for the analysis/figure machinery."""


import pytest

from repro import Instance
from repro.analysis import (fit_exponent, format_table, measure_ratios,
                            time_over_grid)
from repro.analysis.figures import (figure1_layout, figure2_repacking,
                                    figure3_exchange, render_preemptive,
                                    render_rows)
from repro.analysis.ratio import RatioObservation, RatioReport
from repro.analysis.scaling import ScalingPoint
from repro.core.validation import validate_preemptive


class TestFigure1:
    def test_matches_paper_numbering(self):
        rows, art = figure1_layout()
        # paper: machine 1 runs classes 1, 5, 9 (1-based)
        assert rows[0] == [0, 1, 2, 3]
        assert rows[1] == [4, 5, 6, 7]
        assert rows[2] == [8, 9]
        assert "m1" in art and "9" in art

    def test_round_one_holds_largest(self):
        rows, _ = figure1_layout(num_classes=6, num_machines=3,
                                 sizes=[12, 10, 8, 6, 4, 2])
        assert rows[0] == [0, 1, 2]


class TestFigure2:
    def test_repacking_is_feasible_and_shifted(self):
        inst, sched, art = figure2_repacking()
        validate_preemptive(inst, sched)
        # some machine must have a piece starting exactly at the guess T
        starts = {p.start for i in sched.used_machines
                  for p in sched.pieces_on(i)}
        assert any(s > 0 for s in starts)
        assert "m0" in art or "m1" in art


class TestFigure3:
    def test_exchange_preserves_loads_and_removes_pair(self):
        out = figure3_exchange(3, 5, 6, 4)
        before, after = out["before"], out["after"]
        # machine totals preserved
        assert (before["i1.u1"] + before["i1.u2"]
                == after["i1.u1"] + after["i1.u2"])
        assert (before["i2.u1"] + before["i2.u2"]
                == after["i2.u1"] + after["i2.u2"])
        # the minimal entry's machine drops that class entirely
        assert min(after.values()) == 0

    def test_total_work_conserved(self):
        out = figure3_exchange(7, 2, 9, 11)
        assert sum(out["before"].values()) == sum(out["after"].values())


class TestRenderers:
    def test_render_rows(self):
        from repro.core.schedule import SplittableSchedule
        inst = Instance((4, 4), (0, 1), 2, 1)
        s = SplittableSchedule(2)
        s.assign(0, 0, 4)
        s.assign(1, 1, 4)
        art = render_rows(s, inst)
        assert art.count("m") >= 2

    def test_render_preemptive(self):
        from repro.core.schedule import PreemptiveSchedule
        inst = Instance((4,), (0,), 1, 1)
        s = PreemptiveSchedule(1)
        s.assign(0, 0, 0, 4)
        assert "[0.0,4.0)j0" in render_preemptive(s, inst)


class TestRatioReport:
    def test_measure_and_summary(self):
        insts = [("a", Instance((2, 2), (0, 1), 2, 1))]
        rep = measure_ratios("alg", 2.0, insts,
                             run=lambda i: 3.0, baseline=lambda i: 2.0)
        assert rep.max_ratio == pytest.approx(1.5)
        assert rep.within_bound()
        assert "alg" in rep.summary()

    def test_violation_detected(self):
        rep = RatioReport("alg", bound=1.1)
        rep.add(RatioObservation("x", makespan=3.0, baseline=2.0))
        assert not rep.within_bound()


class TestScaling:
    def test_fit_recovers_quadratic(self):
        pts = [ScalingPoint(x, 1e-6 * x * x) for x in (10, 20, 40, 80)]
        fit = fit_exponent(pts)
        assert fit.exponent == pytest.approx(2.0, abs=0.01)

    def test_time_over_grid_runs(self):
        pts = time_over_grid([100, 200], make_input=lambda n: n,
                             run=lambda n: sum(range(n)), repeats=2)
        assert len(pts) == 2


class TestTables:
    def test_format_table(self):
        out = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "2.5000" in out
        assert "|" in out

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
