"""The persistent shared process pool: reuse, sizing, clean shutdown."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Session
from repro.engine import run_batch
from repro.engine.pool import (get_pool, pool_id, pool_max_workers,
                               shutdown_pool)
from repro.engine.runner import _balanced_chunks
from repro.workloads import uniform_instance


@pytest.fixture(autouse=True)
def fresh_pool():
    """Each test starts and ends without a live shared pool."""
    shutdown_pool()
    yield
    shutdown_pool()


def _instances(count, n=24):
    return [(f"i{k}", uniform_instance(np.random.default_rng(k), n=n, C=4,
                                       m=3, c=2, p_hi=50))
            for k in range(count)]


def test_pool_reused_across_run_batch_calls():
    insts = _instances(3)
    assert pool_id() is None
    r1 = run_batch(insts, ["splittable", "nonpreemptive"], workers=2)
    first = pool_id()
    assert first is not None
    r2 = run_batch(insts, ["preemptive", "lpt"], workers=2)
    assert pool_id() == first, "second batch must reuse the warm pool"
    assert len(r1) == len(r2) == 6
    assert all(r.status in ("ok", "infeasible") for r in r1 + r2)


def test_shutdown_then_lazy_rebuild():
    insts = _instances(2)
    run_batch(insts, ["splittable", "lpt"], workers=2)
    assert pool_id() is not None
    shutdown_pool()
    assert pool_id() is None and pool_max_workers() == 0
    # shutdown is idempotent
    shutdown_pool()
    reports = run_batch(insts, ["splittable", "lpt"], workers=2)
    assert pool_id() is not None
    assert all(r.status in ("ok", "infeasible") for r in reports)


def test_pool_grows_but_does_not_shrink_by_default():
    a = get_pool(2)
    assert pool_max_workers() == 2
    assert get_pool(1) is a, "smaller ask reuses the bigger pool"
    b = get_pool(4)
    assert b is not a and pool_max_workers() == 4
    assert get_pool(3) is b


def test_get_pool_shrinks_on_request():
    a = get_pool(4)
    assert pool_max_workers() == 4
    b = get_pool(2, shrink=True)
    assert b is not a and pool_max_workers() == 2
    # shrink to the current width is a no-op reuse
    assert get_pool(2, shrink=True) is b
    # and a plain smaller ask still reuses
    assert get_pool(1) is b and pool_max_workers() == 2


def test_fully_deduped_batch_never_touches_the_pool():
    (label, inst), = _instances(1)
    reports = run_batch([(label, inst)] * 6, ["splittable"], workers=4)
    assert len(reports) == 6
    assert sum(not r.cached for r in reports) == 1
    assert pool_id() is None, \
        "one effective cell after dedupe must run inline"


def test_process_spawn_capped_by_post_dedupe_cells(monkeypatch):
    # pin the core count: widths below are what a box with enough CPUs
    # chooses (core-starved boxes merge chunks, covered separately)
    import repro.engine.runner as runner
    monkeypatch.setattr(runner, "_usable_cores", lambda: 8)
    insts = _instances(2)
    # 8 cells collapse to 2 effective cells -> the pool is sized (and its
    # processes forked) for 2 workers, not the 4 requested
    run_batch(insts * 2, ["splittable", ("splittable", {})], workers=4)
    assert pool_max_workers() == 2
    assert len(get_pool(1)._processes) <= 2
    # a later wider batch grows the pool once and stays correct
    reports = run_batch(_instances(4), ["splittable", "nonpreemptive"],
                        workers=4)
    assert pool_max_workers() == 4
    assert all(r.status in ("ok", "infeasible") for r in reports)


def test_inline_workers_zero_unaffected():
    insts = _instances(2)
    reports = run_batch(insts, ["splittable"], workers=0)
    assert all(r.ok for r in reports)
    assert pool_id() is None


def test_session_pool_backend_reuses_pool():
    insts = _instances(3)
    s = Session(workers=2)
    list(s.stream(insts, algorithms=["splittable"]))
    first = pool_id()
    assert first is not None
    list(s.stream(insts, algorithms=["nonpreemptive"]))
    assert pool_id() == first


def test_fastmath_flag_ships_to_pool_workers():
    # workers are forked once and reused warm, so the reference-path
    # switch must ride with each task, not the fork
    from repro.core.fastmath import use_fast_paths
    insts = _instances(3)
    with use_fast_paths(False):
        ref = run_batch(insts, ["splittable", "preemptive"], workers=2)
    fast = run_batch(insts, ["splittable", "preemptive"], workers=2)
    assert [str(r.makespan) for r in ref] == \
        [str(r.makespan) for r in fast]
    assert all(r.ok for r in ref + fast)


def test_get_pool_growth_does_not_cancel_inflight_futures():
    import threading
    insts = _instances(6)
    errors = []

    def batch(workers):
        try:
            run_batch(insts, ["splittable", "nonpreemptive"],
                      workers=workers)
        except BaseException as exc:    # noqa: BLE001 — recorded for assert
            errors.append(exc)

    threads = [threading.Thread(target=batch, args=(w,))
               for w in (2, 4, 3, 4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"concurrent batches failed: {errors!r}"


def test_get_pool_rejects_bad_workers():
    with pytest.raises(ValueError):
        get_pool(0)


def test_balanced_chunks_splits_to_target():
    # one big group splits until the target is reached
    chunks = _balanced_chunks([list(range(8))], 4)
    assert len(chunks) == 4
    assert sorted(i for c in chunks for i in c) == list(range(8))
    # single-cell groups cannot split further
    chunks = _balanced_chunks([[0], [1], [2]], 8)
    assert sorted(map(tuple, chunks)) == [(0,), (1,), (2,)]
    # enough groups already: untouched
    chunks = _balanced_chunks([[0, 1], [2, 3]], 2)
    assert len(chunks) == 2


def test_core_starved_box_merges_chunks(monkeypatch):
    # on a box with fewer usable cores than requested workers, chunks
    # merge down to the real parallelism: extra chunks cannot overlap
    # and would only add IPC round trips. The pool is sized accordingly.
    import repro.engine.runner as runner
    monkeypatch.setattr(runner, "_usable_cores", lambda: 1)
    insts = _instances(4)
    pooled = run_batch(insts, ["splittable", "nonpreemptive"], workers=4)
    assert pool_max_workers() == 1
    inline = run_batch(insts, ["splittable", "nonpreemptive"], workers=0)
    assert [str(r.makespan) for r in pooled] == \
        [str(r.makespan) for r in inline]


def test_packed_chunks_merges_deterministically():
    from repro.engine.runner import _packed_chunks
    chunks = _packed_chunks([[0], [1, 2, 3], [4, 5], [6]], 2)
    assert sorted(i for c in chunks for i in c) == list(range(7))
    assert len(chunks) == 2
    # largest group first into the lightest bin: deterministic layout
    assert _packed_chunks([[0], [1, 2, 3], [4, 5], [6]], 2) == chunks


def test_balanced_chunks_stay_fine_grained_above_target():
    # more groups than workers: never merged up front — run_batch bounds
    # concurrency by windowing submissions, so heterogeneous cells keep
    # the workers dynamically balanced
    chunks = _balanced_chunks([[0], [1], [2], [3], [4], [5]], 2)
    assert len(chunks) == 6
    assert sorted(i for c in chunks for i in c) == list(range(6))


def test_run_batch_explicit_downsize_shrinks_wide_pool(monkeypatch):
    # pool already 4 wide; an explicit workers=2 batch completes fine AND
    # releases the unwanted width — a one-off wide batch must not pin
    # max workers forever
    import repro.engine.runner as runner
    monkeypatch.setattr(runner, "_usable_cores", lambda: 8)
    get_pool(4)
    insts = _instances(6)
    reports = run_batch(insts, ["splittable", "nonpreemptive"], workers=2)
    assert len(reports) == 12
    assert all(r.status in ("ok", "infeasible") for r in reports)
    assert pool_max_workers() == 2      # explicit downsize shrinks


def test_run_batch_default_workers_never_shrinks():
    # with no explicit workers= ask, a wide pool is reused as-is
    from repro.engine.runner import DEFAULT_WORKERS
    wide = max(DEFAULT_WORKERS + 2, 5)
    get_pool(wide)
    reports = run_batch(_instances(6), ["splittable"])
    assert all(r.status in ("ok", "infeasible") for r in reports)
    assert pool_max_workers() == wide   # implicit default: reuse, no shrink


def test_chunked_reports_keep_grid_order_and_labels():
    insts = _instances(4)
    algos = ["splittable", "nonpreemptive"]
    pooled = run_batch(insts, algos, workers=3)
    inline = run_batch(insts, algos, workers=0)
    assert [r.instance_label for r in pooled] == \
        [r.instance_label for r in inline]
    assert [r.algorithm for r in pooled] == [r.algorithm for r in inline]
    assert [str(r.makespan) for r in pooled] == \
        [str(r.makespan) for r in inline]
