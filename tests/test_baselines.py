"""Tests for the folklore baselines."""

import numpy as np
import pytest

from repro import Instance
from repro.baselines import (ffd_binary_search_schedule, ffd_pack,
                             greedy_list_schedule, lpt_class_schedule)
from repro.core.errors import (InfeasibleInstanceError,
                               InfeasibleScheduleError)
from repro.core.validation import validate_nonpreemptive
from repro.workloads import uniform_instance


class TestListScheduling:
    @pytest.mark.parametrize("seed", range(6))
    def test_produces_feasible_schedules(self, seed):
        rng = np.random.default_rng(seed)
        # slack in class slots so greedy does not dead-end
        inst = uniform_instance(rng, n=30, C=4, m=4, c=3)
        for algo in (greedy_list_schedule, lpt_class_schedule):
            sched = algo(inst)
            validate_nonpreemptive(inst, sched)

    def test_lpt_no_worse_than_greedy_often(self):
        """Not a theorem — but on sorted-friendly inputs LPT should win."""
        rng = np.random.default_rng(3)
        inst = uniform_instance(rng, n=50, C=4, m=4, c=4)
        g = greedy_list_schedule(inst).makespan(inst)
        l = lpt_class_schedule(inst).makespan(inst)
        assert l <= g * 1.5

    def test_provably_infeasible_is_uniform(self):
        # 4 classes, 2 machines, c=1: C > c*m — the uniform taxonomy
        # error, identical to every other solver, not a greedy dead-end
        inst = Instance((5, 5, 5, 5), (0, 1, 2, 3), 2, 1)
        with pytest.raises(InfeasibleInstanceError):
            greedy_list_schedule(inst)
        with pytest.raises(InfeasibleInstanceError):
            lpt_class_schedule(inst)
        with pytest.raises(InfeasibleInstanceError):
            ffd_binary_search_schedule(inst)

    def test_dead_end_on_feasible_instance(self):
        # feasible (class 0 on one machine, class 1 on the other) but
        # greedy's least-loaded rule opens class 0 on both machines first
        # — a heuristic failure, so InfeasibleScheduleError, NOT the
        # instance-level taxonomy error
        inst = Instance((1, 1, 5), (0, 0, 1), 2, 1)
        assert inst.is_feasible()
        with pytest.raises(InfeasibleScheduleError):
            greedy_list_schedule(inst)


class TestFFD:
    def test_pack_respects_capacity_and_slots(self):
        rng = np.random.default_rng(4)
        inst = uniform_instance(rng, n=30, C=5, m=5, c=2)
        T = 300
        bins = ffd_pack(inst, T)
        assert bins is not None
        for b in bins:
            assert sum(inst.processing_times[j] for j in b) <= T
            assert len({inst.classes[j] for j in b}) <= inst.class_slots

    def test_pack_none_when_job_too_big(self):
        inst = Instance((10,), (0,), 1, 1)
        assert ffd_pack(inst, 5) is None

    @pytest.mark.parametrize("seed", range(6))
    def test_binary_search_schedule_feasible(self, seed):
        rng = np.random.default_rng(seed)
        inst = uniform_instance(rng, n=30, C=5, m=5, c=2)
        sched = ffd_binary_search_schedule(inst)
        validate_nonpreemptive(inst, sched)

    def test_ffd_vs_paper_algorithm(self):
        """On slot-scarce workloads the paper's 7/3 algorithm must be
        competitive with FFD (who-wins shape check, B1)."""
        from repro.approx.nonpreemptive import solve_nonpreemptive
        rng = np.random.default_rng(10)
        inst = uniform_instance(rng, n=60, C=10, m=5, c=2)
        ours = solve_nonpreemptive(inst).makespan
        ffd = ffd_binary_search_schedule(inst).makespan(inst)
        assert ours <= 2 * ffd  # sanity: same order of magnitude
