"""Tests for the compact (huge-m) splittable schedule representation."""

from fractions import Fraction

import pytest

from repro import Instance
from repro.approx.compact import CompactSplittableSchedule
from repro.approx.splittable import solve_splittable
from repro.core.errors import InvalidInstanceError
from repro.core.validation import validate, validate_splittable


def build(inst: Instance, T) -> CompactSplittableSchedule:
    return CompactSplittableSchedule.build(inst, Fraction(T))


class TestLayout:
    def test_single_row_when_items_fit(self):
        inst = Instance((6, 6, 6), (0, 0, 0), 10, 1)
        sched = build(inst, 6)  # 3 full pieces, no remainder
        assert sched.full_pieces == 3
        assert sched.small_pieces == 0
        assert sched.items_on(0) == [0]
        assert sched.items_on(3) == []
        assert sched.makespan() == 6

    def test_two_rows_pairing(self):
        # 4 fulls + 2 smalls over 5 machines: machine 0 gets a second item
        inst = Instance((8, 8, 8, 8, 3, 2), (0, 0, 0, 0, 1, 2), 5, 2)
        sched = build(inst, 8)
        assert sched.full_pieces == 4
        assert sched.small_pieces == 2
        assert sched.items_on(0) == [0, 5]
        assert sched.load(0) == 8 + 2  # full + the *smaller* remainder
        assert sched.makespan() == 10

    def test_remainder_sorted_desc(self):
        inst = Instance((5, 9), (0, 1), 4, 1)
        sched = build(inst, 10)
        # no fulls; smalls 9 then 5
        assert sched.load(0) == 9
        assert sched.load(1) == 5

    def test_makespan_matches_bruteforce_loads(self):
        inst = Instance((8, 8, 8, 8, 3, 2), (0, 0, 0, 0, 1, 2), 5, 2)
        sched = build(inst, 8)
        brute = max(sched.load(i) for i in range(5))
        assert sched.makespan() == brute


class TestMaterialisation:
    def test_pieces_of_full_item_cover_interval(self):
        inst = Instance((5, 5, 5), (0, 0, 0), 8, 1)
        sched = build(inst, 6)  # class load 15: fulls [0,6),[6,12), rem 3
        p0 = sched.pieces_of_item(0)
        assert sum((p.amount for p in p0), Fraction(0)) == 6
        # first piece is all of job 0 (p=5) plus 1 unit of job 1
        assert [(p.job, p.amount) for p in p0] == [(0, Fraction(5)),
                                                   (1, Fraction(1))]

    def test_to_explicit_roundtrip(self):
        inst = Instance((7, 7, 4, 3), (0, 0, 1, 1), 6, 2)
        compact = build(inst, 7)
        explicit = compact.to_explicit()
        assert validate_splittable(inst, explicit) == compact.makespan()

    def test_to_explicit_refuses_huge(self):
        inst = Instance(tuple([10**6] * 4), (0, 0, 0, 0), 2**40, 1)
        compact = build(inst, Fraction(4 * 10**6, 2**22))
        with pytest.raises(InvalidInstanceError):
            compact.to_explicit(item_limit=100)


class TestValidation:
    def test_validate_against_accepts(self):
        inst = Instance((8, 8, 8, 8, 3, 2), (0, 0, 0, 0, 1, 2), 5, 2)
        sched = build(inst, 8)
        assert sched.validate_against(inst) == sched.makespan()

    def test_validate_rejects_machine_mismatch(self):
        inst = Instance((8, 8), (0, 0), 4, 1)
        sched = build(inst, 8)
        with pytest.raises(Exception):
            sched.validate_against(inst.with_machines(3))

    def test_dispatch_through_validate(self):
        inst = Instance((8, 8, 8, 8), (0, 0, 0, 0), 4, 1)
        sched = build(inst, 8)
        assert validate(inst, sched) == 8


class TestEndToEnd:
    def test_solver_compact_consistency_with_explicit(self):
        """Force compact mode on a small instance and compare with the
        explicit solver output machine by machine."""
        inst = Instance(tuple([100] * 4), (0, 0, 0, 0), 16, 1)
        explicit = solve_splittable(inst)
        compact = solve_splittable(inst, piece_cap=1)
        # piece_cap=1 still goes explicit unless n_sub > 2n; check both run
        assert explicit.makespan <= 2 * explicit.guess
        assert compact.makespan <= 2 * compact.guess
