"""Tests for the core instance model."""

from fractions import Fraction

import pytest

from repro import Instance, InvalidInstanceError
from repro.core.instance import class_loads, encoding_length


class TestConstruction:
    def test_basic_properties(self, small_instance):
        assert small_instance.num_jobs == 5
        assert small_instance.num_classes == 3
        assert small_instance.total_load == 24
        assert small_instance.pmax == 8

    def test_create_maps_labels(self):
        inst = Instance.create([1, 2, 3], ["db-a", "db-b", "db-a"], 2, 1)
        assert inst.classes == (0, 1, 0)
        assert inst.class_labels == ("db-a", "db-b")

    def test_create_coerces_numpy_ints(self):
        import numpy as np
        inst = Instance.create(np.array([3, 4]), np.array([0, 1]), 2, 1)
        assert inst.processing_times == (3, 4)
        assert all(isinstance(p, int) for p in inst.processing_times)

    def test_rejects_empty(self):
        with pytest.raises(InvalidInstanceError):
            Instance((), (), 1, 1)

    def test_rejects_zero_processing_time(self):
        with pytest.raises(InvalidInstanceError):
            Instance((0,), (0,), 1, 1)

    def test_rejects_negative_processing_time(self):
        with pytest.raises(InvalidInstanceError):
            Instance((-3,), (0,), 1, 1)

    def test_rejects_non_integer_processing_time(self):
        with pytest.raises(InvalidInstanceError):
            Instance((1.5,), (0,), 1, 1)

    def test_rejects_boolean_processing_time(self):
        with pytest.raises(InvalidInstanceError):
            Instance((True,), (0,), 1, 1)

    def test_rejects_non_contiguous_classes(self):
        with pytest.raises(InvalidInstanceError):
            Instance((1, 2), (0, 2), 1, 1)

    def test_rejects_zero_machines(self):
        with pytest.raises(InvalidInstanceError):
            Instance((1,), (0,), 0, 1)

    def test_rejects_zero_class_slots(self):
        with pytest.raises(InvalidInstanceError):
            Instance((1,), (0,), 1, 0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            Instance((1, 2), (0,), 1, 1)


class TestClassQueries:
    def test_jobs_of_class(self, small_instance):
        assert small_instance.jobs_of_class(0) == [0, 1]
        assert small_instance.jobs_of_class(2) == [3, 4]

    def test_class_load(self, small_instance):
        assert small_instance.class_load(0) == 8
        assert small_instance.class_load(1) == 8
        assert small_instance.class_load(2) == 8

    def test_class_loads_matches_per_class(self, small_instance):
        loads = small_instance.class_loads()
        assert loads == [small_instance.class_load(u) for u in range(3)]

    def test_class_loads_helper(self):
        assert class_loads([3, 4, 5], [0, 1, 0]) == {0: 8, 1: 4}


class TestNormalisation:
    def test_clamps_class_slots(self):
        inst = Instance((1, 2), (0, 1), 3, 10)
        norm = inst.normalized()
        assert norm.class_slots == 2

    def test_identity_when_already_normal(self, small_instance):
        assert small_instance.normalized() is small_instance

    def test_trivially_unconstrained(self):
        inst = Instance((1, 2), (0, 1), 2, 2)
        assert inst.is_trivially_unconstrained()
        inst2 = Instance((1, 2), (0, 1), 2, 1)
        assert not inst2.is_trivially_unconstrained()


class TestMisc:
    def test_with_machines(self, small_instance):
        inst = small_instance.with_machines(7)
        assert inst.machines == 7
        assert inst.processing_times == small_instance.processing_times

    def test_perfectly_balanced_makespan(self, small_instance):
        assert small_instance.perfectly_balanced_makespan() == Fraction(24, 2)

    def test_encoding_length_grows_with_numbers(self):
        small = Instance((1, 1), (0, 1), 1, 2)
        big = Instance((10**9, 10**9), (0, 1), 1, 2)
        assert encoding_length(big) > encoding_length(small)

    def test_encoding_length_logarithmic_in_machines(self):
        a = Instance((1,), (0,), 2, 1)
        b = Instance((1,), (0,), 2**40, 1)
        assert encoding_length(b) - encoding_length(a) < 50


class TestFeasibility:
    def test_is_feasible_boundary(self):
        assert Instance((1, 1), (0, 1), 1, 2).is_feasible()      # C == c*m
        assert not Instance((1, 1, 1), (0, 1, 2), 1, 2).is_feasible()

    def test_slot_budget_uses_normalized_slots(self):
        # c=10 clamps to min(c, C, n)=2, but the budget stays feasible
        inst = Instance((1, 1), (0, 1), 3, 10)
        assert inst.slot_budget() == 6
        assert inst.is_feasible()

    def test_require_feasible_raises_uniform_error(self):
        from repro.core.errors import InfeasibleInstanceError
        inst = Instance((1, 1, 1, 1), (0, 1, 2, 3), 1, 2)
        with pytest.raises(InfeasibleInstanceError) as err:
            inst.require_feasible()
        assert err.value.num_classes == 4
        assert err.value.slot_budget == 2
        assert "C=4" in str(err.value) and "c*m=2" in str(err.value)
        Instance((1, 1), (0, 1), 2, 1).require_feasible()   # no raise
