"""Tests for sub-class splitting (Algorithm 1's cutting step)."""

from fractions import Fraction

import numpy as np
import pytest

from repro import Instance
from repro.approx.borders import split_count
from repro.approx.splitting import split_classes
from repro.workloads import uniform_instance


class TestSplitClasses:
    def test_uncut_class_is_whole(self):
        inst = Instance((3, 2), (0, 0), 2, 1)
        subs = split_classes(inst, Fraction(10))
        assert len(subs) == 1
        assert subs[0].load == 5
        assert not subs[0].is_full

    def test_exact_multiple_yields_full_pieces_only(self):
        inst = Instance((4, 4, 4), (0, 0, 0), 3, 1)
        subs = split_classes(inst, Fraction(4))
        assert len(subs) == 3
        assert all(s.is_full and s.load == 4 for s in subs)

    def test_job_cut_at_boundary(self):
        inst = Instance((10,), (0,), 2, 1)
        subs = split_classes(inst, Fraction(6))
        assert [s.load for s in subs] == [6, 4]
        # the single job appears in both pieces with the right amounts
        assert subs[0].pieces == ((0, Fraction(6)),)
        assert subs[1].pieces == ((0, Fraction(4)),)

    def test_cut_job_tail_is_last_head_is_first(self):
        """The invariant Algorithm 2's repacking relies on."""
        inst = Instance((3, 5, 4), (0, 0, 0), 2, 1)
        subs = split_classes(inst, Fraction(6))
        # piece boundaries: 6 cuts job 1 (spanning [3, 8))
        assert subs[0].pieces[-1][0] == 1          # tail of job 1 ends piece 0
        assert subs[1].pieces[0][0] == 1           # head of job 1 starts piece 1

    def test_count_matches_split_count(self):
        rng = np.random.default_rng(7)
        inst = uniform_instance(rng, n=30, C=5, m=4, c=2)
        for T in (Fraction(37), Fraction(101, 3), Fraction(250)):
            subs = split_classes(inst, T)
            assert len(subs) == split_count(inst.class_loads(), T)

    def test_amounts_conserved(self):
        rng = np.random.default_rng(8)
        inst = uniform_instance(rng, n=25, C=4, m=3, c=2)
        subs = split_classes(inst, Fraction(50))
        per_job: dict[int, Fraction] = {}
        for s in subs:
            for j, a in s.pieces:
                per_job[j] = per_job.get(j, Fraction(0)) + a
        assert per_job == {j: Fraction(p)
                           for j, p in enumerate(inst.processing_times)}

    def test_fractional_T(self):
        inst = Instance((5,), (0,), 2, 1)
        subs = split_classes(inst, Fraction(5, 2))
        assert [s.load for s in subs] == [Fraction(5, 2), Fraction(5, 2)]
        assert all(s.is_full for s in subs)

    def test_rejects_nonpositive_T(self):
        inst = Instance((5,), (0,), 2, 1)
        with pytest.raises(ValueError):
            split_classes(inst, Fraction(0))
