"""Tests for the schedule data structures."""

from fractions import Fraction

import pytest

from repro import (InvalidInstanceError, NonPreemptiveSchedule,
                   PreemptiveSchedule, SplittableSchedule)
from repro.core.schedule import Piece, TimedPiece


class TestPiece:
    def test_amount_coerced_to_fraction(self):
        p = Piece(0, 3)
        assert p.amount == Fraction(3)
        assert isinstance(p.amount, Fraction)

    def test_rejects_nonpositive(self):
        with pytest.raises(InvalidInstanceError):
            Piece(0, 0)
        with pytest.raises(InvalidInstanceError):
            TimedPiece(0, 0, -1)

    def test_timed_piece_end(self):
        tp = TimedPiece(1, Fraction(1, 2), Fraction(3, 2))
        assert tp.end == 2

    def test_timed_piece_rejects_negative_start(self):
        with pytest.raises(InvalidInstanceError):
            TimedPiece(0, -1, 1)


class TestSplittableSchedule:
    def test_loads_and_makespan(self):
        s = SplittableSchedule(3)
        s.assign(0, 0, 5)
        s.assign(0, 1, Fraction(1, 2))
        s.assign(2, 2, 4)
        assert s.load(0) == Fraction(11, 2)
        assert s.load(1) == 0
        assert s.makespan() == Fraction(11, 2)
        assert s.used_machines == [0, 2]

    def test_job_amounts_aggregate_across_machines(self):
        s = SplittableSchedule(2)
        s.assign(0, 7, 2)
        s.assign(1, 7, 3)
        assert s.job_amounts() == {7: Fraction(5)}

    def test_machine_bounds_checked(self):
        s = SplittableSchedule(2)
        with pytest.raises(InvalidInstanceError):
            s.assign(2, 0, 1)
        with pytest.raises(InvalidInstanceError):
            s.assign(-1, 0, 1)

    def test_huge_machine_count_sparse(self):
        s = SplittableSchedule(2**60)
        s.assign(2**59, 0, 1)
        assert s.load(2**59) == 1
        assert s.num_pieces() == 1

    def test_iter_pieces_sorted_by_machine(self):
        s = SplittableSchedule(3)
        s.assign(2, 0, 1)
        s.assign(0, 1, 1)
        machines = [i for i, _ in s.iter_pieces()]
        assert machines == [0, 2]


class TestPreemptiveSchedule:
    def test_makespan_is_latest_end(self):
        s = PreemptiveSchedule(2)
        s.assign(0, 0, 0, 4)
        s.assign(1, 1, 10, 2)
        assert s.makespan() == 12

    def test_job_intervals_sorted(self):
        s = PreemptiveSchedule(2)
        s.assign(0, 0, 5, 1)
        s.assign(1, 0, 0, 2)
        assert s.job_intervals(0) == [(Fraction(0), Fraction(2)),
                                      (Fraction(5), Fraction(6))]

    def test_pieces_on_sorted_by_time(self):
        s = PreemptiveSchedule(1)
        s.assign(0, 0, 5, 1)
        s.assign(0, 1, 0, 2)
        starts = [p.start for p in s.pieces_on(0)]
        assert starts == sorted(starts)


class TestNonPreemptiveSchedule:
    def test_roundtrip(self, small_instance):
        s = NonPreemptiveSchedule(5, 2)
        for j in range(5):
            s.assign(j, j % 2)
        assert s.jobs_on(0) == [0, 2, 4]
        assert s.machine_of(3) == 1
        assert s.makespan(small_instance) == max(
            s.load(0, small_instance), s.load(1, small_instance))

    def test_from_assignment(self, small_instance):
        s = NonPreemptiveSchedule.from_assignment([0, 0, 1, 1, 0], 2)
        assert s.load(0, small_instance) == 5 + 3 + 2
        assert s.load(1, small_instance) == 8 + 6

    def test_classes_per_machine(self, small_instance):
        s = NonPreemptiveSchedule.from_assignment([0, 0, 1, 1, 1], 2)
        cls = s.classes_per_machine(small_instance)
        assert cls[0] == {0}
        assert cls[1] == {1, 2}

    def test_bounds_checked(self):
        s = NonPreemptiveSchedule(2, 2)
        with pytest.raises(InvalidInstanceError):
            s.assign(0, 5)
        with pytest.raises(InvalidInstanceError):
            s.assign(5, 0)
