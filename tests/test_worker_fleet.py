"""Multi-node worker tests: several WorkerNodes (in-process and real
subprocesses) sharing one store must run every job exactly once, survive
a killed peer via lease reclaim, and produce byte-identical reports in
every topology."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import Instance
from repro.faults.chaos import CHAOS_ALGOS, campaign_instances, canonical_report
from repro.service import JobStore, MemoryStore, WorkerNode


@pytest.fixture
def inst() -> Instance:
    return Instance((5, 3, 8, 6, 2), (0, 0, 1, 2, 2), 2, 2)


def _wait_done(store, n, deadline=60.0, statuses=("done",)):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if sum(store.count_jobs(s) for s in statuses) >= n:
            return
        time.sleep(0.05)
    counts = {s: store.count_jobs(s) for s in
              ("queued", "running", "done", "failed", "quarantined")}
    pytest.fail(f"jobs never finished: {counts}")


def _node(store, name, **over):
    opts = dict(workers=2, name=name, lease_seconds=30.0,
                reclaim_interval=0.05, retry_backoff_base=0.01,
                retry_backoff_cap=0.05, poll_interval=0.02)
    opts.update(over)
    return WorkerNode(store, **opts)


class TestMultiNode:
    def test_two_nodes_fifty_jobs_exactly_once(self, tmp_path):
        # two store connections on one file model two processes; the
        # atomic claim must hand each job to exactly one node
        path = tmp_path / "jobs.db"
        a, b = JobStore(path), JobStore(path)
        jobs = [a.create_job(inst, [("lpt", {})], label=label)
                for label, inst in campaign_instances(11, 50)]
        nodes = [_node(a, "fleet-a"), _node(b, "fleet-b")]
        for n in nodes:
            n.start()
        try:
            _wait_done(a, 50)
        finally:
            for n in nodes:
                n.stop()
        assert a.count_jobs("done") == 50
        assert a.count_jobs("running") == 0
        records = [a.get_job(j.id) for j in jobs]
        assert all(r.attempts == 1 for r in records), \
            [(r.label, r.attempts) for r in records if r.attempts != 1]
        claims = a.claims_by_worker()
        assert set(claims) <= {"fleet-a", "fleet-b"}
        assert sum(claims.values()) == 50
        a.close()
        b.close()

    def test_dead_worker_leases_reclaimed(self, tmp_path, inst):
        # a "worker" claims four jobs and dies without executing them;
        # a live node's supervisor must reclaim the expired leases and
        # drive everything terminal
        store = JobStore(tmp_path / "jobs.db")
        jobs = [store.create_job(inst, [("lpt", {})]) for _ in range(10)]
        ghost = [store.claim_next(lease_seconds=0.05, worker="ghost")
                 for _ in range(4)]
        assert all(ghost)
        node = _node(store, "survivor", workers=1, lease_seconds=0.5)
        node.start()
        try:
            _wait_done(store, 10)
        finally:
            node.stop()
        assert store.count_jobs("done") == 10
        assert store.count_jobs("running") == 0
        reclaimed = [store.get_job(g.id) for g in ghost]
        assert all(r.attempts == 2 for r in reclaimed)   # ghost try + real
        untouched = [store.get_job(j.id) for j in jobs
                     if j.id not in {g.id for g in ghost}]
        assert all(r.attempts == 1 for r in untouched)
        store.close()


def _spawn_worker(store_url, name, *, lease_seconds=1.0):
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--store", store_url,
         "--workers", "1", "--name", name, "--poll-interval", "0.05",
         "--lease-seconds", str(lease_seconds), "--quiet"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


class TestSubprocessWorkers:
    def test_sigterm_drains_cleanly(self, tmp_path, inst):
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        for _ in range(5):
            store.create_job(inst, [("lpt", {})])
        proc = _spawn_worker(f"sqlite:///{path}", "sub-a",
                             lease_seconds=30.0)
        try:
            _wait_done(store, 5, deadline=60.0)
        finally:
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
        assert code == 0
        assert store.count_jobs("done") == 5
        assert store.count_jobs("running") == 0
        assert store.claims_by_worker() == {"sub-a": 5}
        store.close()

    def test_sigkill_mid_batch_ends_all_jobs_terminal(self, tmp_path):
        # a worker is hard-killed while holding leases; the remaining
        # (in-process) node must reclaim them and finish the whole batch
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        first = campaign_instances(23, 20)
        for label, inst in first:
            store.create_job(inst, list((a, {}) for a in CHAOS_ALGOS),
                             label=label)
        proc = _spawn_worker(f"sqlite:///{path}", "victim",
                             lease_seconds=1.0)
        try:
            # let the victim get properly mid-batch before killing it
            _wait_done(store, 3, deadline=60.0)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        # more work arrives after the kill — only the survivor can run it
        for label, inst in campaign_instances(24, 10):
            store.create_job(inst, list((a, {}) for a in CHAOS_ALGOS),
                             label=label)
        node = _node(store, "survivor", lease_seconds=1.0)
        node.start()
        try:
            _wait_done(store, 30, deadline=120.0)
        finally:
            node.stop()
        assert store.count_jobs("done") == 30
        assert store.count_jobs("running") == 0
        assert store.count_jobs("queued") == 0
        store.close()


class TestTopologyEquivalence:
    """The same seeded batch must yield byte-identical canonical reports
    whether it runs on an in-memory store, one node on SQLite, or a
    two-node SQLite fleet."""

    BATCH = 6
    SEED = 7

    def _run(self, store, extra_stores=()):
        jobs = [store.create_job(inst, [(a, {}) for a in CHAOS_ALGOS],
                                 label=label)
                for label, inst in campaign_instances(self.SEED, self.BATCH)]
        nodes = [_node(store, "topo-0")] + [
            _node(s, f"topo-{i + 1}") for i, s in enumerate(extra_stores)]
        for n in nodes:
            n.start()
        try:
            _wait_done(store, self.BATCH)
        finally:
            for n in nodes:
                n.stop()
        out = {}
        for job in jobs:
            reports = store.reports_for(job.id)
            out[job.label] = json.dumps(
                [canonical_report(r) for r in reports], sort_keys=True)
        return out

    def test_all_topologies_agree(self, tmp_path):
        mem = MemoryStore()
        baseline = self._run(mem)
        mem.close()

        solo = JobStore(tmp_path / "solo.db")
        single = self._run(solo)
        solo.close()

        shared = tmp_path / "fleet.db"
        a, b = JobStore(shared), JobStore(shared)
        fleet = self._run(a, extra_stores=[b])
        a.close()
        b.close()

        assert baseline == single
        assert baseline == fleet
