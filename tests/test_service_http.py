"""End-to-end tests for the scheduling service: HTTP API + queue + client.

Every test runs a real :class:`SchedulingService` on an ephemeral port
and talks to it over actual HTTP through :class:`ServiceClient`.
"""

import json
import threading
import urllib.request
from fractions import Fraction

import numpy as np
import pytest

from repro import Instance
from repro.engine import SolveReport, execute
from repro.service import SchedulingService, ServiceClient, ServiceError
from repro.workloads import uniform_instance


@pytest.fixture
def service(tmp_path):
    svc = SchedulingService(tmp_path / "svc.db", port=0, drainers=2).start()
    yield svc
    svc.shutdown()


@pytest.fixture
def client(service) -> ServiceClient:
    return ServiceClient(service.url)


@pytest.fixture
def inst() -> Instance:
    return Instance((5, 3, 8, 6, 2), (0, 0, 1, 2, 2), 2, 2)


class TestHTTPBasics:
    def test_submit_wait_reports(self, client, inst):
        job = client.submit(inst, ["splittable", "nonpreemptive"],
                            label="basic")
        assert job["status"] == "queued" and job["label"] == "basic"
        reports = client.wait(job["id"])
        assert [r.algorithm for r in reports] == ["splittable",
                                                  "nonpreemptive"]
        assert all(r.ok and r.validated for r in reports)
        done = client.job(job["id"])
        assert done["status"] == "done" and done["finished_at"] is not None

    def test_reports_match_direct_execute(self, client, inst):
        job = client.submit(inst, ["splittable"])
        (via_http,) = client.wait(job["id"])
        direct = execute(inst, "splittable")
        assert via_http.makespan == direct.makespan
        assert via_http.instance_digest == direct.instance_digest

    def test_solvers_endpoint_renders_registry(self, client):
        solvers = client.solvers()
        names = {s["name"] for s in solvers}
        assert {"splittable", "nonpreemptive", "ptas-splittable",
                "mcnaughton"} <= names
        (ptas,) = [s for s in solvers if s["name"] == "ptas-splittable"]
        assert ptas["needs_milp"] and "delta" in ptas["accepts"]
        assert ptas["ratio"] == "1+eps"

    def test_healthz_counts_and_cache_stats(self, client, inst):
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"] == {"queued": 0, "running": 0, "done": 0,
                                  "failed": 0, "quarantined": 0}
        client.wait(client.submit(inst, ["splittable"])["id"])
        client.wait(client.submit(inst, ["splittable"])["id"])
        health = client.health()
        assert health["jobs"]["done"] == 2
        assert health["cache"]["hits"] >= 1        # second job hit the cache
        assert 0.0 < health["cache"]["hit_rate"] <= 1.0

    def test_jobs_listing(self, client, inst):
        ids = [client.submit(inst, ["lpt"], label=f"j{k}")["id"]
               for k in range(3)]
        for jid in ids:
            client.wait(jid)
        listed = client.jobs(status="done")
        assert {j["id"] for j in listed} >= set(ids)

    def test_ndjson_streaming(self, service, client, inst):
        job = client.submit(inst, ["splittable", "lpt"])
        client.wait(job["id"])
        with urllib.request.urlopen(
                f"{service.url}/jobs/{job['id']}/reports?format=ndjson"
        ) as resp:
            assert resp.headers["Content-Type"] == "application/x-ndjson"
            lines = [ln for ln in resp.read().decode().splitlines() if ln]
        reports = [SolveReport.from_dict(json.loads(ln)) for ln in lines]
        assert [r.algorithm for r in reports] == ["splittable", "lpt"]


class TestHTTPErrors:
    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.job("doesnotexist")
        assert err.value.status == 404

    def test_unknown_solver_rejected_at_submit(self, client, inst):
        with pytest.raises(ServiceError) as err:
            client.submit(inst, ["definitely-not-a-solver"])
        assert err.value.status == 400
        assert "unknown solver" in err.value.message

    def test_bad_kwargs_rejected_at_submit(self, client, inst):
        with pytest.raises(ServiceError) as err:
            client.submit(inst, [("lpt", {"delta": 2})])
        assert err.value.status == 400

    def test_invalid_instance_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"processing_times": [0], "classes": [0],
                           "machines": 1, "class_slots": 1}, ["lpt"])
        assert err.value.status == 400
        assert "invalid instance" in err.value.message

    def test_reports_before_done_409(self, tmp_path, inst):
        svc = SchedulingService(tmp_path / "paused.db", port=0,
                                drainers=0).start()     # accept-only
        try:
            client = ServiceClient(svc.url)
            job = client.submit(inst, ["splittable"])
            with pytest.raises(ServiceError) as err:
                client.reports(job["id"])
            assert err.value.status == 409
        finally:
            svc.shutdown()

    def test_unroutable_path_404(self, service):
        req = urllib.request.Request(f"{service.url}/nope")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 404


class TestRestartSurvival:
    def test_queued_jobs_survive_restart(self, tmp_path, inst):
        db = tmp_path / "svc.db"
        # phase 1: accept-only server — jobs persist but never run
        svc1 = SchedulingService(db, port=0, drainers=0).start()
        c1 = ServiceClient(svc1.url)
        ids = [c1.submit(inst, ["splittable"], label=f"queued-{k}")["id"]
               for k in range(5)]
        assert c1.health()["jobs"]["queued"] == 5
        svc1.shutdown()

        # phase 2: a fresh process picks the same db up and drains it
        svc2 = SchedulingService(db, port=0, drainers=2).start()
        assert svc2.recovered == 5
        c2 = ServiceClient(svc2.url)
        for jid in ids:
            (rep,) = c2.wait(jid)
            assert rep.ok and rep.makespan is not None
        assert c2.health()["jobs"] == {"queued": 0, "running": 0, "done": 5,
                                       "failed": 0, "quarantined": 0}
        svc2.shutdown()


class TestConcurrentLoad:
    def test_50_concurrent_jobs_roundtrip_and_cache(self, service, client):
        """The acceptance-criteria workload: >= 50 jobs submitted
        concurrently via the client; every report comes back with exact
        fraction round-trip, and repeated digests produce cache hits."""
        rng = np.random.default_rng(42)
        unique = [uniform_instance(np.random.default_rng(1000 + k),
                                   10, 3, 3, 2) for k in range(25)]
        # 50 jobs = 25 unique instances x 2 submissions each
        workload = [(f"job-{k}", unique[k % 25]) for k in range(50)]
        rng.shuffle(workload)

        results: dict[str, list[SolveReport]] = {}
        errors: list[Exception] = []

        def _one(label: str, instance: Instance) -> None:
            try:
                job = client.submit(instance, ["splittable"], label=label)
                results[label] = (instance,
                                  client.wait(job["id"], timeout=120))
            except Exception as exc:    # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=_one, args=(lbl, i))
                   for lbl, i in workload]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        assert len(results) == 50
        for label, (instance, reports) in results.items():
            (rep,) = reports
            assert rep.ok, f"{label}: {rep.error}"
            assert rep.instance_digest == instance.digest()
            # exact fraction round-trip: recompute ground truth locally
            # (the wire encoding canonicalises integral fractions to
            # ints — equality as Fraction is the exactness guarantee)
            direct = execute(instance, "splittable")
            assert Fraction(rep.makespan) == Fraction(direct.makespan)
            assert Fraction(rep.guess) == Fraction(direct.guess)

        health = client.health()
        assert health["jobs"]["done"] == 50 and not health["queue_depth"]
        # 25 duplicate submissions -> the digest-keyed store must have
        # served a substantial share from cache (a duplicate only misses
        # if both copies were claimed before either finished)
        assert health["cache"]["entries"] == 25
        assert health["cache"]["hits"] >= 10
        # and the cross-client digest view serves every unique instance
        for instance in unique:
            cached = client.results_for_digest(instance.digest())
            assert len(cached) == 1 and cached[0].ok

        # the metrics registry absorbed the same workload consistently —
        # 50 client threads, the handler pool and both drainers all
        # raced into it (counters are process-cumulative, hence >=)
        from repro.obs.metrics import parse_exposition
        raw = urllib.request.urlopen(f"{service.url}/v1/metrics").read()
        _, samples = parse_exposition(raw.decode())

        def total(name: str, **match: str) -> float:
            want = set(match.items())
            return sum(v for (n, labels), v in samples.items()
                       if n == name and want <= set(labels))

        assert total("repro_jobs_submitted_total") >= 50
        assert total("repro_jobs_completed_total", status="done") >= 50
        assert total("repro_job_drain_seconds_count") >= 50
        assert total("repro_http_requests_total", route="/jobs",
                     method="POST", status="201") >= 50
        assert total("repro_cache_hits_total", cache="service") >= 10
        assert samples[("repro_jobs_active", frozenset())] == 0

    def test_priority_orders_draining(self, tmp_path, inst):
        """Jobs submitted while the queue is paused drain high-priority
        first once a single drainer starts."""
        db = tmp_path / "prio.db"
        svc1 = SchedulingService(db, port=0, drainers=0).start()
        c1 = ServiceClient(svc1.url)
        low = c1.submit(inst, ["lpt"], priority=0)["id"]
        high = c1.submit(inst, ["lpt"], priority=10)["id"]
        mid = c1.submit(inst, ["lpt"], priority=5)["id"]
        svc1.shutdown()

        svc2 = SchedulingService(db, port=0, drainers=1).start()
        try:
            c2 = ServiceClient(svc2.url)
            for jid in (low, mid, high):
                c2.wait(jid)
            started = {jid: c2.job(jid)["started_at"]
                       for jid in (low, mid, high)}
            assert started[high] <= started[mid] <= started[low]
        finally:
            svc2.shutdown()
