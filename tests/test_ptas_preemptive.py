"""Tests for the preemptive PTAS (Theorem 19)."""

import networkx as nx
import numpy as np
import pytest

from repro import Instance, validate
from repro.core.errors import CapacityExceededError
from repro.exact import opt_preemptive
from repro.ptas.preemptive import build_lemma16_network, ptas_preemptive
from repro.workloads import uniform_instance


class TestGuarantee:
    @pytest.mark.parametrize("seed", range(4))
    def test_validates_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        inst = uniform_instance(rng, n=9, C=3, m=3, c=2, p_hi=15)
        res = ptas_preemptive(inst, delta=2)
        mk = validate(inst, res.schedule)  # checks self-parallelism too
        assert mk == res.makespan
        opt = opt_preemptive(inst)
        envelope = (1 + 3 / 2) * (1 + 1 / 4)  # T-bar factor at q=2
        # +envelope covers the ceil() when the true optimum is fractional
        assert float(mk) <= envelope * (opt + 1) + 1e-6

    def test_guess_at_most_ceil_opt(self):
        # The preemptive optimum may be fractional (the paper's integrality
        # remark is only true up to rounding); the integral search then
        # accepts at ceil(OPT) at the latest.
        rng = np.random.default_rng(21)
        inst = uniform_instance(rng, n=8, C=3, m=2, c=2, p_hi=12)
        res = ptas_preemptive(inst, delta=2)
        assert float(res.guess) <= opt_preemptive(inst) + 1 + 1e-6

    def test_never_parallel_with_itself(self):
        # heavy jobs that must be layered across machines
        inst = Instance((12, 12, 12, 5), (0, 0, 0, 1), 3, 2)
        res = ptas_preemptive(inst, delta=2)
        validate(inst, res.schedule)  # raises on self-parallelism


class TestManyMachines:
    def test_m_ge_n_optimal(self):
        inst = Instance((9, 4), (0, 1), 5, 1)
        res = ptas_preemptive(inst, delta=2)
        assert validate(inst, res.schedule) == 9

    def test_machine_cap(self):
        inst = Instance(tuple([3] * 40), tuple([i % 4 for i in range(40)]),
                        30, 2)
        with pytest.raises(CapacityExceededError):
            ptas_preemptive(inst, delta=2, machine_cap=8)


class TestLemma16Network:
    def test_flow_value_attained(self):
        """The max flow equals the total piece count when eligibility and
        capacities come from a feasible schedule shape (Lemma 16)."""
        inst = Instance((10, 10, 6), (0, 0, 1), 2, 2)
        T, q = 14, 2
        # both classes allowed everywhere, machine loads = half the work
        class_on = {(i, u): True for i in range(2) for u in range(2)}
        from fractions import Fraction
        loads = {0: Fraction(13), 1: Fraction(13)}
        G, total = build_lemma16_network(inst, T, q, class_on, loads)
        value, _ = nx.maximum_flow(G, "alpha", "omega")
        assert value == total

    def test_flow_blocked_without_eligibility(self):
        inst = Instance((10, 10, 6), (0, 0, 1), 2, 2)
        G, total = build_lemma16_network(inst, 14, 2, {}, {})
        value, _ = nx.maximum_flow(G, "alpha", "omega")
        assert value == 0
