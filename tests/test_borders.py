"""Tests for the advanced border binary search (Lemma 2)."""

from fractions import Fraction

import numpy as np
import pytest

from repro.approx.borders import (advanced_binary_search, candidate_borders,
                                  smallest_feasible_border, split_count)


class TestSplitCount:
    def test_exact_divisions(self):
        assert split_count([12], Fraction(4)) == 3
        assert split_count([12], Fraction(5)) == 3
        assert split_count([12], Fraction(6)) == 2

    def test_sum_over_classes(self):
        assert split_count([10, 4], Fraction(5)) == 2 + 1

    def test_fractional_T(self):
        assert split_count([10], Fraction(10, 3)) == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_count([1], Fraction(0))


class TestCandidateBorders:
    def test_small_case_exhaustive(self):
        # P=6, m=4: borders 6/1, 6/2, 6/3, 6/4
        got = candidate_borders([6], 4)
        assert got == sorted({Fraction(6, k) for k in range(1, 5)})

    def test_m_caps_k(self):
        got = candidate_borders([6], 2)
        assert Fraction(6, 3) not in got
        assert Fraction(6, 2) in got

    def test_matches_brute_force(self):
        P, m = 100, 60
        brute = sorted({Fraction(P, k) for k in range(1, min(P, m) + 1)})
        assert candidate_borders([P], m) == brute

    def test_cap_guards_huge_sets(self):
        with pytest.raises(ValueError):
            candidate_borders([10**9], 2**50, cap=1000)

    def test_huge_m_feasible_border_fast(self):
        import time
        t0 = time.perf_counter()
        b = smallest_feasible_border([10**9] * 5, 2**50, budget=10**6)
        assert b is not None and b > 0
        assert time.perf_counter() - t0 < 1.0


class TestSmallestFeasibleBorder:
    def test_monotone_threshold(self):
        # loads 12 and 6, budget 4: count(T) = ceil(12/T)+ceil(6/T)
        # T=6: 2+1=3 <= 4; T=4: 3+2=5 > 4; threshold between
        loads = [12, 6]
        border = smallest_feasible_border(loads, 10, 4)
        assert split_count(loads, border) <= 4
        # anything strictly below the border must be infeasible
        below = border - Fraction(1, 100)
        assert split_count(loads, below) > 4

    def test_infeasible_returns_none(self):
        assert smallest_feasible_border([1, 1, 1], 1, 2) is None

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_scan(self, seed):
        rng = np.random.default_rng(seed)
        loads = [int(x) for x in rng.integers(1, 60, size=4)]
        m, budget = 3, 6
        border = smallest_feasible_border(loads, m, budget)
        cands = candidate_borders(loads, m)
        feasible = [T for T in cands if split_count(loads, T) <= budget]
        assert border == min(feasible)


class TestAdvancedBinarySearch:
    def test_lower_bound_dominates(self):
        # border would be small, but LB forces the guess up
        got = advanced_binary_search([4], 4, 100, Fraction(10))
        assert got == Fraction(10)

    def test_border_dominates(self):
        got = advanced_binary_search([100], 2, 2, Fraction(1))
        assert got == Fraction(50)

    def test_infeasible(self):
        assert advanced_binary_search([1, 1, 1], 1, 2, Fraction(1)) is None
